#!/usr/bin/env python
"""Protocol comparison: AODV vs DSR under identical load and attacks.

Reproduces the paper's §4.2 protocol-level findings at example scale:

* both protocols deliver comparably under normal mobility;
* a black hole collapses delivery for both, but by different mechanisms
  (forged max-sequence routes for AODV, forged short source routes for
  DSR), and AODV never self-heals (the poisoned sequence numbers are
  permanent) while DSR's cache eventually ages the poison out;
* anomaly detection is easier on AODV than DSR.

Traces are simulated through a `Session` (parallel over `$REPRO_JOBS`,
cached on disk), so a second run of this example skips simulation.

Run:  python examples/aodv_vs_dsr.py        (~3-4 minutes cold)
"""

from repro import CrossFeatureDetector, Session, extract_features
from repro.attacks import BlackholeAttack
from repro.eval.metrics import area_above_diagonal, optimal_point, precision_recall_curve
from repro.features.extraction import FeatureDataset
from repro.simulation.scenario import ScenarioConfig

import numpy as np

DURATION = 600.0
N_NODES = 16

SESSION = Session()


def config(protocol: str, seed: int) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=protocol, transport="udp", n_nodes=N_NODES, duration=DURATION,
        max_connections=60, seed=seed, traffic_seed=5,
    )


def main() -> None:
    for protocol in ("aodv", "dsr"):
        print("=" * 60)
        print(f"{protocol.upper()}")
        print("=" * 60)

        normal = SESSION.trace(config(protocol, seed=21))
        print(f"normal delivery ratio:      {normal.delivery_ratio():.2f}")

        attack = BlackholeAttack(attacker=N_NODES - 1,
                                 sessions=[(150.0, DURATION)])
        attacked = SESSION.trace(config(protocol, seed=21), attacks=(attack,))
        lost = attacked.data_originated - attacked.data_delivered
        print(f"under black hole:           {attacked.delivery_ratio():.2f} "
              f"({lost} packets undelivered)")

        # Train a detector and measure separability for this protocol.
        def features(seed, attacks=()):
            trace = SESSION.trace(config(protocol, seed), attacks=tuple(attacks))
            return extract_features(trace, monitor=0, warmup=100.0,
                                    label_policy="post_attack")

        train = FeatureDataset.concat([features(11), features(12)])
        calib = features(13)
        det = CrossFeatureDetector(method="calibrated_probability")
        det.fit(train.X, calibration_X=calib.X)

        eval_normal = features(22)
        eval_attack = features(
            31,
            [BlackholeAttack(attacker=N_NODES - 1, sessions=[(150.0, 200.0),
                                                             (300.0, 350.0),
                                                             (450.0, 500.0)])],
        )
        scores = np.concatenate([det.score(eval_normal.X), det.score(eval_attack.X)])
        labels = np.concatenate([eval_normal.labels, eval_attack.labels])
        curve = precision_recall_curve(scores, labels)
        r, p, _ = optimal_point(curve)
        print(f"detection AUC (above diagonal): {area_above_diagonal(curve):.3f}")
        print(f"optimal operating point:        recall {r:.2f}, precision {p:.2f}")
        print()

    print("Expected shape (paper §4.2): results from AODV are significantly "
          "better than those from DSR.")
    print(f"runtime: {SESSION.metrics.summary()}")


if __name__ == "__main__":
    main()
