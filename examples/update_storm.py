#!/usr/bin/env python
"""Detecting an attack the detector never saw: the update storm.

The paper's central claim for anomaly detection is that it "can be
effective against new attacks because it does not assume prior knowledge
of attack patterns".  This example trains the detector on normal traffic
only — as always — and then evaluates it against the §2.3 *update storm*
attack (meaningless route-discovery flooding), an attack class entirely
different from the black hole and packet-dropping attacks the paper's
other experiments use.

Run:  python examples/update_storm.py        (~2 minutes cold; traces are
cached by the runtime layer, so re-runs skip simulation)
"""

import numpy as np

from repro import CrossFeatureDetector, Session, extract_features
from repro.attacks import UpdateStormAttack, periodic_sessions
from repro.features.extraction import FeatureDataset
from repro.simulation.scenario import ScenarioConfig

DURATION = 600.0
N_NODES = 16

SESSION = Session()


def features(seed, attacks=()):
    cfg = ScenarioConfig(protocol="aodv", transport="udp", n_nodes=N_NODES,
                         duration=DURATION, max_connections=60, seed=seed,
                         traffic_seed=5)
    trace = SESSION.trace(cfg, attacks=tuple(attacks))
    return extract_features(trace, monitor=0, warmup=100.0,
                            label_policy="session")


def main() -> None:
    print("Training on normal traffic only ...")
    train = FeatureDataset.concat([features(11), features(12)])
    calib = features(13)
    detector = CrossFeatureDetector(method="calibrated_probability",
                                    false_alarm_rate=0.02)
    detector.fit(train.X, feature_names=train.feature_names,
                 calibration_X=calib.X)

    print("Injecting an update storm (never seen during training) ...")
    storm = UpdateStormAttack(
        attacker=N_NODES - 1,
        sessions=periodic_sessions(start=200.0, duration=50.0, until=DURATION),
        rate=30.0,
    )
    abnormal = features(31, [storm])
    print(f"  {len(storm.sessions)} storm sessions at {storm.rate:.0f} "
          f"forged route requests/s")

    alarms = detector.predict(abnormal.X)
    in_session = abnormal.labels
    recall = (alarms & in_session).sum() / in_session.sum()
    fa = (alarms & ~in_session).sum() / (~in_session).sum()
    print(f"\nstorm-session windows flagged: {recall:.1%}")
    print(f"out-of-session windows flagged: {fa:.1%}")

    normal_eval = features(22)
    print(f"windows flagged on a fresh normal trace: "
          f"{detector.predict(normal_eval.X).mean():.1%}")


if __name__ == "__main__":
    main()
