#!/usr/bin/env python
"""Quickstart: the paper's §3 two-node illustrative example.

Reproduces Tables 1-3 — the complete normal-event set, the three
sub-models and the average match count / average probability of all eight
possible events — then shows the same framework on generated data with
the real C4.5-backed pipeline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CrossFeatureDetector, TwoNodeExample


def fmt(b: bool) -> str:
    return "True " if b else "False"


def main() -> None:
    example = TwoNodeExample()

    print("=" * 66)
    print("Table 1: complete set of normal events (2-node network)")
    print("=" * 66)
    print("Reachable?  Delivered?  Cached?")
    for event in example.normal_events():
        print("   ".join(f"{fmt(v):>8s}" for v in event))

    print()
    print("=" * 66)
    print("Table 2: sub-models (other features -> labelled feature)")
    print("=" * 66)
    for target, name in enumerate(["Reachable?", "Delivered?", "Cached?"]):
        print(f"-- sub-model with respect to {name!r}")
        for rule in example.sub_model_rules(target):
            others = ", ".join(fmt(v) for v in rule.others)
            print(f"   ({others}) -> {fmt(rule.predicted)}  p={rule.probability}")

    print()
    print("=" * 66)
    print("Table 3: both algorithms over all eight possible events")
    print("=" * 66)
    print(f"{'Event':28s} {'Class':9s} {'AvgMatch':>8s} {'AvgProb':>8s}")
    for score in example.all_event_scores():
        event = ", ".join(fmt(v) for v in score.event)
        cls = "Normal" if score.is_normal else "Abnormal"
        print(f"({event})  {cls:9s} {score.avg_match_count:8.2f} {score.avg_probability:8.2f}")

    errors = example.classify_all(threshold=0.5)
    print()
    print(f"At threshold 0.5: Algorithm 2 (match count) false alarms: "
          f"{errors['alg2_false_alarms']}, misses: {errors['alg2_misses']}")
    print(f"                  Algorithm 3 (probability)  false alarms: "
          f"{errors['alg3_false_alarms']}, misses: {errors['alg3_misses']}")
    print("(matches the paper: Algorithm 3 is perfect; Algorithm 2 raises one "
          "false alarm on {False, False, False})")

    # ------------------------------------------------------------------
    print()
    print("=" * 66)
    print("The same idea with the real pipeline (C4.5 sub-models)")
    print("=" * 66)
    rng = np.random.default_rng(0)
    activity = rng.uniform(0, 10, size=500)
    X_normal = np.column_stack([
        activity + rng.normal(0, 0.3, 500),
        2 * activity + rng.normal(0, 0.5, 500),
        activity ** 1.5 + rng.normal(0, 0.5, 500),
    ])
    detector = CrossFeatureDetector(method="calibrated_probability",
                                    false_alarm_rate=0.05)
    detector.fit(X_normal)

    fresh = np.column_stack([
        rng.uniform(0, 10, 100),
        rng.uniform(0, 20, 100),
        rng.uniform(0, 32, 100),
    ])  # individually plausible, jointly inconsistent
    held_out_activity = rng.uniform(0, 10, 100)
    held_out = np.column_stack([
        held_out_activity + rng.normal(0, 0.3, 100),
        2 * held_out_activity + rng.normal(0, 0.5, 100),
        held_out_activity ** 1.5 + rng.normal(0, 0.5, 100),
    ])
    print(f"alarms on held-out normal data:       {detector.predict(held_out).mean():6.1%}")
    print(f"alarms on correlation-breaking data:  {detector.predict(fresh).mean():6.1%}")


if __name__ == "__main__":
    main()
