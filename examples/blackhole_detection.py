#!/usr/bin/env python
"""End-to-end MANET intrusion detection: black hole attack on AODV.

The paper's core experiment at example scale: simulate normal MANET
traffic, train a cross-feature detector on the normal traces, then inject
a black hole attack (forged maximum-sequence-number route advertisements
plus silent data absorption) and watch the detector flag the intrusion
windows.

Simulation runs through a `Session`, so traces fan out over `$REPRO_JOBS`
processes and land in the persistent artifact cache — re-running this
example is near-instant.

Run:  python examples/blackhole_detection.py        (~2-3 minutes cold)
"""

import numpy as np

from repro import CrossFeatureDetector, CLASSIFIERS, Session, extract_features
from repro.attacks import BlackholeAttack, periodic_sessions
from repro.features.extraction import FeatureDataset
from repro.simulation.scenario import ScenarioConfig

N_NODES = 16
DURATION = 600.0
ATTACKER = N_NODES - 1
MONITOR = 0
WARMUP = 100.0

SESSION = Session()


def simulate(seed: int, attacks=()) -> FeatureDataset:
    config = ScenarioConfig(
        protocol="aodv",
        transport="udp",
        n_nodes=N_NODES,
        duration=DURATION,
        max_connections=60,
        seed=seed,
        traffic_seed=5,  # one connection pattern across all traces
    )
    trace = SESSION.trace(config, attacks=tuple(attacks), label=f"seed{seed}")
    print(f"  seed {seed}: {trace.data_originated} data packets originated, "
          f"delivery ratio {trace.delivery_ratio():.2f}")
    return extract_features(trace, monitor=MONITOR, warmup=WARMUP,
                            label_policy="post_attack")


def main() -> None:
    print("Simulating two normal training traces + one calibration trace ...")
    train = FeatureDataset.concat([simulate(11), simulate(12)])
    calibration = simulate(13)

    print("Training C4.5 sub-models (one per feature, Algorithm 1) ...")
    detector = CrossFeatureDetector(
        classifier_factory=CLASSIFIERS["c45"],
        method="calibrated_probability",
        false_alarm_rate=0.02,
    )
    detector.fit(train.X, feature_names=train.feature_names,
                 calibration_X=calibration.X)
    print(f"  {detector.model.n_models} sub-models trained, "
          f"decision threshold {detector.threshold_:.3f}")

    print("Simulating an attack trace: black hole sessions from t=150 s ...")
    attack = BlackholeAttack(
        attacker=ATTACKER,
        sessions=periodic_sessions(start=150.0, duration=40.0, until=DURATION),
    )
    abnormal = simulate(31, attacks=[attack])
    print(f"  {len(attack.sessions)} intrusion sessions scheduled "
          f"(note the delivery-ratio collapse above)")

    print("\nScoring the attack trace window by window:")
    scores = detector.score(abnormal.X)
    alarms = detector.predict(abnormal.X)
    for block_start in np.arange(WARMUP, DURATION, 50.0):
        mask = (abnormal.times > block_start) & (abnormal.times <= block_start + 50.0)
        if not mask.any():
            continue
        bar = "#" * int(40 * scores[mask].mean())
        flag = f"{alarms[mask].mean():5.0%} alarms"
        attacked = "ATTACK ACTIVE" if abnormal.labels[mask].any() else ""
        print(f"  t={block_start:5.0f}-{block_start + 50:5.0f}s "
              f"score={scores[mask].mean():.3f} {flag:12s} {bar:40s} {attacked}")

    intrusion = abnormal.labels
    recall = (alarms & intrusion).sum() / max(intrusion.sum(), 1)
    precision = (alarms & intrusion).sum() / max(alarms.sum(), 1)
    print(f"\nDetection at the calibrated threshold: "
          f"recall {recall:.2f}, precision {precision:.2f}")

    # The paper's §6: the model "can be examined by human experts".
    worst = int(np.argmin(scores))
    print(f"\nWhy was the window at t={abnormal.times[worst]:.0f}s flagged?")
    for entry in detector.explain(abnormal.X[worst], top_k=5):
        print(f"  {entry['feature']:40s} p(true value)={entry['p_true']:.3f} "
              f"(normally {entry['baseline']:.2f})")

    print(f"\nruntime: {SESSION.metrics.summary()}")


if __name__ == "__main__":
    main()
