#!/usr/bin/env python
"""Online intrusion detection: score each window the moment it closes.

The batch examples score a finished trace after the fact; this one runs
the detector the way the paper frames its deployment — an IDS agent
riding a live monitor node.  A `StreamingExtractor` tap subscribes to the
monitor's event recorder inside a running scenario, closes one feature
window per 5 s sampling tick, and an `OnlineDetector` scores it
immediately, printing alarms *while the simulation is still running*.

The streamed feature rows and scores are bit-identical to the offline
`extract_features` -> `detector.score` pipeline over the same trace
(asserted at the end), so everything learned from the batch experiments
transfers unchanged to the online deployment.

Run:  python examples/streaming_detection.py        (~1-2 minutes cold)
"""

import numpy as np

from repro import ExperimentPlan, Session, extract_features
from repro.simulation.scenario import run_scenario
from repro.stream import OnlineDetector, extractor_for_config

PLAN = ExperimentPlan(
    protocol="aodv",
    transport="udp",
    n_nodes=16,
    duration=600.0,
    max_connections=60,
    train_seeds=(11, 12),
    calibration_seed=13,
    normal_seeds=(21,),
    attack_seeds=(31,),
    warmup=100.0,
)

SESSION = Session()


def main() -> None:
    print("Training the detector on cached normal traces ...")
    detector = SESSION.fitted_detector(PLAN, classifier="c45")
    print(f"  {detector.model.n_models} sub-models, "
          f"threshold {detector.threshold_:.3f}")

    print("\nStreaming a live attack scenario "
          "(black hole + packet dropping at the plan's session times):")
    online = OnlineDetector.from_detector(
        detector,
        monitor=PLAN.monitor,
        on_alarm=lambda a: print(
            f"  [ALARM] t={a.time:5.0f}s  score {a.score:.3f} < "
            f"{a.threshold:.3f}  ({a.latency_s * 1e3:.1f} ms to score)"
        ),
    )
    config = PLAN.scenario_config(PLAN.attack_seeds[0])
    tap = extractor_for_config(
        config,
        monitor=PLAN.monitor,
        periods=PLAN.periods,
        warmup=PLAN.warmup,
        on_row=online.consume,
        keep_rows=False,
    )
    trace = run_scenario(config, attacks=PLAN.build_attacks(), taps=[tap])
    result = online.result(
        labels=np.asarray(trace.window_labels(PLAN.label_policy), dtype=bool)[
            np.asarray(trace.tick_times) >= PLAN.warmup
        ],
    )
    recall, precision = result.recall_precision()
    print(f"\n{result.windows} windows scored online, "
          f"{len(result.alarms)} alarms")
    print(f"against ground truth: recall {recall:.2f}, precision {precision:.2f}")

    print("\nVerifying the streaming contract against the batch pipeline ...")
    batch = extract_features(
        trace,
        monitor=PLAN.monitor,
        periods=PLAN.periods,
        warmup=PLAN.warmup,
        label_policy=PLAN.label_policy,
    )
    batch_scores = detector.score(batch.X)
    assert np.array_equal(result.scores, batch_scores), "scores must be bit-identical"
    assert np.array_equal(result.times, batch.times)
    print("  streamed scores are bit-identical to the batch path "
          f"({result.windows} windows checked)")

    print(f"\nruntime: {SESSION.metrics.summary()}")


if __name__ == "__main__":
    main()
