#!/usr/bin/env python
"""Cross-feature analysis beyond MANET: credit-card fraud detection.

The paper's §6: "we believe that it is a *general* anomaly detection
approach ... Initial experiments using credit card fraud detection have
revealed promising results."  The original data is proprietary, so this
example uses a synthetic transaction stream in which normal spending has
strong inter-feature correlation and fraud breaks the joint pattern while
every individual value stays plausible — exactly the regime the framework
targets.

Run:  python examples/credit_card_fraud.py        (a few seconds)
"""

import numpy as np

from repro import CLASSIFIERS, CrossFeatureDetector
from repro.datasets import generate_fraud_dataset
from repro.eval.metrics import area_above_diagonal, optimal_point, precision_recall_curve


def main() -> None:
    data = generate_fraud_dataset(n_normal=3000, n_fraud=300, seed=1)
    normal = data.normal_only()
    train, calib, held_out = normal[:1800], normal[1800:2400], normal[2400:]
    fraud = data.fraud_only()
    print(f"{len(data)} transactions: {len(normal)} legitimate, {len(fraud)} fraudulent")
    print(f"features: {', '.join(data.feature_names)}\n")

    print(f"{'classifier':10s} {'AUC':>6s} {'recall':>7s} {'precision':>9s} "
          f"{'FA on held-out normal':>22s}")
    for name in ("c45", "ripper", "nbc"):
        detector = CrossFeatureDetector(
            classifier_factory=CLASSIFIERS[name],
            method="calibrated_probability",
            false_alarm_rate=0.03,
        )
        detector.fit(train, feature_names=data.feature_names, calibration_X=calib)

        scores = np.concatenate([detector.score(held_out), detector.score(fraud)])
        labels = np.concatenate([np.zeros(len(held_out), bool), np.ones(len(fraud), bool)])
        curve = precision_recall_curve(scores, labels)
        r, p, _ = optimal_point(curve)
        false_alarms = detector.predict(held_out).mean()
        print(f"{name:10s} {area_above_diagonal(curve):6.3f} {r:7.2f} {p:9.2f} "
              f"{false_alarms:22.1%}")

    print("\nPer-transaction view (C4.5): ten most anomalous transactions")
    detector = CrossFeatureDetector(method="calibrated_probability")
    detector.fit(train, feature_names=data.feature_names, calibration_X=calib)
    all_scores = detector.score(data.X)
    worst = np.argsort(all_scores)[:10]
    hits = data.labels[worst].sum()
    print(f"  {hits}/10 of the lowest-scoring transactions are actual fraud")


if __name__ == "__main__":
    main()
