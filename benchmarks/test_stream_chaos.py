"""Stream-layer chaos benchmark: kill-anywhere resume and fleet survival.

Exercises the durable-streams contract at benchmark scale, on the same
recorded workload as test_stream_throughput:

* **kill-anywhere resume** — a durable single-stream run is killed at a
  spread of tick positions across the whole trace; each interrupted run
  is restored from its checkpoint and replayed to the end, and every
  resumed run must produce scores and alarms **bit identical** to the
  uninterrupted baseline.
* **fleet chaos** — a fleet run with an injected lane crash, a corrupted
  row, a duplicated row and a dropped row completes without raising,
  quarantines exactly the damaged rows, seals exactly the crashed lane,
  and leaves the untouched lane's scores bit identical to a fault-free
  fleet over the same traces.

Counters and equality (not clocks) carry the assertions; wall-clock and
the survival summary are printed for the record.  The quick CI variant
of the same contract lives in ``repro.runtime.bench.run_stream_chaos_bench``
(``python -m repro bench --suite stream-chaos``).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.runtime import RuntimeMetrics, Session
from repro.stream import OnlineDetector, extractor_for_config
from repro.stream.durability import run_durable_stream

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

#: Same scaled-down streaming condition as test_stream_throughput: the
#: contract is per-window, so the setup (simulate + fit, outside the
#: timed region) stays CI-friendly.
PLAN = replace(
    BENCH_PLAN,
    protocol="aodv",
    transport="udp",
    n_nodes=10,
    duration=200.0,
    max_connections=10,
    periods=(5.0, 60.0),
    warmup=0.0,
)

#: Injected fleet damage: one lane crashes mid-run, one row arrives
#: corrupted (NaN features), one is duplicated, one never arrives.
CHAOS = ("crash-lane:s0/n1:6,corrupt-row:s0/n2:4,"
         "dup-row:s0/n2:9,drop-row:s0/n3:3")


def _streamed_trace():
    return RUNTIME.raw_traces(PLAN).abnormal_evals[0]


def test_kill_anywhere_resume_bit_identical(tmp_path):
    trace = _streamed_trace()
    detector = RUNTIME.fitted_detector(PLAN, classifier="c45")

    def run(ckpt=None, every=1, resume=None, stop=None):
        online = OnlineDetector.from_detector(detector, monitor=PLAN.monitor)
        tap = extractor_for_config(
            trace.config, periods=PLAN.periods,
            on_row=online.consume, keep_rows=False,
        )
        _, finished = run_durable_stream(
            trace, tap, online,
            checkpoint=ckpt, checkpoint_every=every,
            resume_from=resume, stop_after_ticks=stop,
        )
        return online, finished

    clean, _ = run()
    n = clean.windows
    assert n == len(trace.tick_times)

    # Kill positions spread across the run, first tick through last-1.
    kills = sorted({1, n // 4, n // 2, (3 * n) // 4, n - 1})
    t0 = time.perf_counter()
    for kill in kills:
        ckpt = tmp_path / f"kill{kill}.ckpt"
        _, finished = run(ckpt=ckpt, stop=kill)
        assert not finished
        resumed, finished = run(resume=ckpt)
        assert finished
        # The headline: the numbers never move, wherever the kill lands.
        assert np.array_equal(resumed.scores, clean.scores)
        assert np.array_equal(resumed.times, clean.times)
        assert ([(a.index, a.time) for a in resumed.alarms]
                == [(a.index, a.time) for a in clean.alarms])
    elapsed = time.perf_counter() - t0

    ckpt_bytes = max((tmp_path / f"kill{k}.ckpt").stat().st_size for k in kills)
    print_header("Durable stream: kill-anywhere resume")
    print(f"  {n} windows; killed at ticks {kills}; "
          f"{len(kills)} interrupt/resume cycles in {elapsed:.2f}s")
    print(f"  every resumed run bit-identical "
          f"({len(clean.alarms)} alarms; checkpoint <= {ckpt_bytes:,} bytes)")


def test_fleet_survives_chaos_with_quarantine_accounting():
    sampling = PLAN.scenario_config(PLAN.attack_seeds[0]).sampling_period
    chaos = Session(metrics=RuntimeMetrics())
    t0 = time.perf_counter()
    result = chaos.fleet_detect(
        PLAN, monitors=(0, 1, 2, 3),
        row_policy="quarantine",
        stall_timeout=4 * sampling,
        stream_faults=CHAOS,
    )
    chaos_seconds = time.perf_counter() - t0
    m = chaos.metrics

    clean = Session().fleet_detect(PLAN, monitors=(0, 1, 2, 3))

    print_header("Durable fleet: injected crash + corrupt/dup/drop rows")
    print(f"  chaos fleet: {chaos_seconds:6.2f}s  ({m.summary()})")
    print(f"  quarantined: "
          f"{[(f.stream, f.kind, f.index) for f in result.fault_records]}")
    print(f"  sealed lanes: {result.sealed}")

    # The run survived every injected fault without raising...
    assert result.n_streams == 4
    # ...the damaged rows were quarantined with typed verdicts...
    kinds = sorted(f.kind for f in result.fault_records)
    assert kinds == ["duplicate", "nan"]
    # ...the crashed lane was sealed with a reason, the rest were not...
    assert result.sealed.get("s0/n1") in ("stalled", "crashed")
    assert set(result.sealed) == {"s0/n1"}
    # ...and the damage is accounted in the runtime metrics.
    assert m.stream_faults == 2
    assert m.lanes_sealed == 1

    # The untouched lane never notices its siblings' failures.
    assert np.array_equal(result.streams["s0/n0"].scores,
                          clean.streams["s0/n0"].scores)
    # The dropped row costs lane n3 exactly one window.
    assert clean.streams["s0/n3"].windows - result.streams["s0/n3"].windows == 1
