"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures.  The
simulation/fitting pipeline routes through one shared
:class:`repro.Session` (``RUNTIME``), which

* fans the independent traces of each condition out across worker
  processes (``$REPRO_JOBS`` overrides the default of one worker per
  core, capped at 8; results are seed-deterministic at any job count),
* persists every simulated trace in the on-disk artifact cache
  (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so a *second* benchmark
  session starts warm and performs zero simulations, and
* memoises bundles/results in memory, so benchmarks that share a test
  condition — Figures 1-4 all use the same four scenarios — only pay for
  it once per session.

Scale note: the paper's traces are 10 000 s with ~50-node topologies on a
testbed of one; the benchmark plan below is scaled down (16 nodes, 600 s)
so the full suite finishes on one laptop CPU.  The reproduction targets
the *shapes* — who wins, what separates, where the orderings fall — not
the paper's absolute digits; `EXPERIMENTS.md` records both.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.experiments import ExperimentPlan, four_scenarios
from repro.runtime import Session


def _bench_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, min(8, os.cpu_count() or 1))


#: The one runtime session every benchmark shares: parallel trace
#: fan-out + the persistent artifact cache + in-memory memoisation.
RUNTIME = Session(jobs=_bench_jobs())

#: The scaled-down default test condition used by all figure benchmarks.
#: 1000 s / 20 nodes / 100 connections is the smallest scale at which the
#: paper's qualitative shapes reproduce robustly (shorter traces starve
#: the 900 s-window features that carry the persistent-damage signal).
BENCH_PLAN = ExperimentPlan(
    n_nodes=20,
    duration=1000.0,
    max_connections=100,
    train_seeds=(11, 12),
    calibration_seed=13,
    normal_seeds=(21, 22),
    attack_seeds=(31, 32),
    warmup=100.0,
)

#: The four paper scenarios (AODV/DSR x TCP/UDP) at benchmark scale.
SCENARIOS = four_scenarios(BENCH_PLAN)

CLASSIFIER_ORDER = ("c45", "ripper", "nbc")


@pytest.fixture(scope="session")
def bench_plan() -> ExperimentPlan:
    return BENCH_PLAN


@pytest.fixture(scope="session")
def runtime() -> Session:
    return RUNTIME


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
