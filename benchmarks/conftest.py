"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures.  The
underlying simulation/fitting pipeline is memoised (``cached_bundle`` /
``cached_result``), so benchmarks that share a test condition — Figures
1-4 all use the same four scenarios — only pay for it once per session.

Scale note: the paper's traces are 10 000 s with ~50-node topologies on a
testbed of one; the benchmark plan below is scaled down (16 nodes, 600 s)
so the full suite finishes on one laptop CPU.  The reproduction targets
the *shapes* — who wins, what separates, where the orderings fall — not
the paper's absolute digits; `EXPERIMENTS.md` records both.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentPlan, four_scenarios

#: The scaled-down default test condition used by all figure benchmarks.
#: 1000 s / 20 nodes / 100 connections is the smallest scale at which the
#: paper's qualitative shapes reproduce robustly (shorter traces starve
#: the 900 s-window features that carry the persistent-damage signal).
BENCH_PLAN = ExperimentPlan(
    n_nodes=20,
    duration=1000.0,
    max_connections=100,
    train_seeds=(11, 12),
    calibration_seed=13,
    normal_seeds=(21, 22),
    attack_seeds=(31, 32),
    warmup=100.0,
)

#: The four paper scenarios (AODV/DSR x TCP/UDP) at benchmark scale.
SCENARIOS = four_scenarios(BENCH_PLAN)

CLASSIFIER_ORDER = ("c45", "ripper", "nbc")


@pytest.fixture(scope="session")
def bench_plan() -> ExperimentPlan:
    return BENCH_PLAN


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
