"""The paper's §4.2 footnote experiment: other monitor nodes agree.

"Note that all results discussed in the paper are collected on one node
only, for brevity.  Similar results and performance have been verified on
other nodes of the simulated network throughout our experiments."

This benchmark repeats the AODV/UDP detection experiment from three
different monitor nodes over the *same* simulated traces and checks that
every vantage point detects the intrusions well.
"""

from dataclasses import replace

import pytest

from repro.eval.experiments import per_monitor_results

from benchmarks.conftest import BENCH_PLAN, print_header

PLAN = replace(BENCH_PLAN, protocol="aodv", transport="udp")
MONITORS = (0, 5, 11)


def test_other_monitor_nodes_verify_the_result(benchmark):
    results = benchmark.pedantic(
        lambda: per_monitor_results(PLAN, MONITORS, classifier="c45"),
        rounds=1, iterations=1,
    )

    print_header("Multi-monitor verification (AODV/UDP, C4.5)")
    aucs = []
    for monitor, res in results.items():
        r, p, _ = res.optimal
        aucs.append(res.auc)
        print(f"  monitor node {monitor:2d}: auc={res.auc:.3f} "
              f"optimal=({r:.2f}, {p:.2f})")

    # Every vantage point beats random ...
    assert all(a > 0.1 for a in aucs), aucs
    # ... and they agree with each other (similar results).
    assert max(aucs) - min(aucs) < 0.4
