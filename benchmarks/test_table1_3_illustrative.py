"""Tables 1-3: the §3 two-node illustrative example, regenerated exactly.

This is the one experiment where the paper's *absolute numbers* must be
matched digit for digit — the example is fully deterministic.
"""

import pytest

from repro.core.illustrative import TwoNodeExample

from benchmarks.conftest import print_header

PAPER_TABLE_3 = {
    (True, True, True): ("Normal", 1.00, 1.00),
    (True, False, False): ("Normal", 1.00, 0.83),
    (False, False, True): ("Normal", 1.00, 0.83),
    (False, False, False): ("Normal", 0.33, 0.67),
    (True, True, False): ("Abnormal", 0.33, 0.17),
    (True, False, True): ("Abnormal", 0.00, 0.00),
    (False, True, True): ("Abnormal", 0.33, 0.17),
    (False, True, False): ("Abnormal", 0.00, 0.33),
}


def build_and_score():
    example = TwoNodeExample()
    return example, example.all_event_scores()


def test_tables_1_to_3(benchmark):
    example, scores = benchmark(build_and_score)

    print_header("Table 1: complete set of normal events")
    for event in example.normal_events():
        print(f"  {event}")
    assert len(example.normal_events()) == 4

    print_header("Table 3: all eight events (paper values in parentheses)")
    print(f"  {'event':30s} {'class':9s} {'match':>12s} {'probability':>16s}")
    for score in scores:
        cls, mc, ap = PAPER_TABLE_3[score.event]
        print(
            f"  {str(score.event):30s} {cls:9s} "
            f"{score.avg_match_count:5.2f} ({mc:4.2f}) "
            f"{score.avg_probability:8.2f} ({ap:4.2f})"
        )
        assert score.is_normal == (cls == "Normal")
        assert score.avg_match_count == pytest.approx(mc, abs=0.005)
        assert score.avg_probability == pytest.approx(ap, abs=0.005)

    errors = example.classify_all(threshold=0.5)
    print_header("Headline: Algorithm 3 perfect, Algorithm 2 one false alarm")
    print(f"  {errors}")
    assert errors["alg3_false_alarms"] == 0 and errors["alg3_misses"] == 0
    assert errors["alg2_false_alarms"] == 1 and errors["alg2_misses"] == 0
