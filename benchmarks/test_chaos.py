"""Chaos benchmark: a full fault gauntlet against the supervised runtime.

Runs one detection experiment while a deterministic :class:`FaultPlan`
throws every failure mode the supervisor handles — a worker crash, a hung
task, a transient in-task error and a burst of cache write faults — and
asserts the headline robustness property: the run *completes*, recovers
each fault with only the affected task re-run, and produces **bit
identical** detection numbers to a fault-free serial run.

Counters (not clocks) carry the assertions, so the bench is robust on
any machine; wall-clock and the recovery summary are printed for the
record.  CI runs this file alongside the tier-1 suite in the
robustness matrix leg (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.runtime import FaultPlan, FaultSpec, Session

from benchmarks.conftest import BENCH_PLAN, print_header

#: Runtime-layer scale (matches test_runtime_speedup): the traces only
#: need to cost enough for supervision events to be observable.
CHAOS_PLAN = replace(
    BENCH_PLAN,
    n_nodes=10,
    duration=200.0,
    max_connections=10,
    periods=(5.0, 60.0),
    warmup=50.0,
)
N_TRACES = (len(CHAOS_PLAN.train_seeds) + 1
            + len(CHAOS_PLAN.normal_seeds) + len(CHAOS_PLAN.attack_seeds))

#: The gauntlet: one of each simulation fault kind on distinct tasks,
#: plus cache write faults on the first two flushes.  `hang` sleeps far
#: past the task timeout so the deadline supervisor must fire.  The hang
#: and error faults match submissions (1, 2): the crash breaks the whole
#: pool, so sibling tasks' first submissions may be requeued unexecuted —
#: matching the second submission too guarantees each fault actually
#: fires while staying inside the default retry budget.
GAUNTLET = FaultPlan((
    FaultSpec("crash", 0, (1,)),
    FaultSpec("hang", 2, (1, 2), seconds=300.0),
    FaultSpec("error", 4, (1, 2)),
    FaultSpec("cache-enospc", 0),
    FaultSpec("cache-corrupt", 1),
))


def test_chaos_gauntlet_recovers_bit_identically(tmp_path):
    clean = Session(cache_dir=tmp_path / "clean", jobs=1)
    t0 = time.perf_counter()
    clean_result = clean.detect(CHAOS_PLAN, classifier="nbc")
    clean_seconds = time.perf_counter() - t0

    chaos = Session(
        cache_dir=tmp_path / "chaos",
        jobs=2,
        task_timeout=10.0,
        faults=GAUNTLET,
    )
    t0 = time.perf_counter()
    chaos_result = chaos.detect(CHAOS_PLAN, classifier="nbc")
    chaos_seconds = time.perf_counter() - t0
    m = chaos.metrics

    print_header("Chaos: crash + hang + error + disk faults, jobs=2")
    print(f"  clean serial : {clean_seconds:6.2f}s  ({clean.metrics.summary()})")
    print(f"  fault gauntlet: {chaos_seconds:6.2f}s  ({m.summary()})")
    print(f"  recovery: {m.retries} retries, {m.timeouts} timeouts, "
          f"{m.requeues} requeues, {m.respawns} pool respawns, "
          f"{m.cache_write_failures} cache write failures")

    # The run survived every injected fault with zero task failures...
    assert m.task_failures == 0
    # ...each fault was actually thrown and recovered...
    assert m.timeouts >= 1                    # the hung task
    assert m.retries >= 2                     # hang requeue + transient error
    assert m.respawns >= 1                    # the crashed / hung workers
    assert m.cache_write_failures >= 1        # ENOSPC burst, then recovery
    # ...only affected tasks re-ran: every trace simulated exactly once
    # per *successful* attempt, never double-counted.
    labels = [label for label, _ in m.trace_seconds]
    assert sorted(labels) == sorted(set(labels))
    assert m.simulations == N_TRACES

    # The headline: the numbers never move.
    assert chaos_result.scores.tobytes() == clean_result.scores.tobytes()
    assert chaos_result.auc == clean_result.auc
    assert chaos_result.threshold == clean_result.threshold

    # The corrupt cache entry heals on the next read: a fresh session
    # over the chaos cache re-simulates only the torn artifact.
    reader = Session(cache_dir=tmp_path / "chaos", jobs=1)
    reread = reader.detect(CHAOS_PLAN, classifier="nbc")
    assert reread.scores.tobytes() == clean_result.scores.tobytes()
    assert reader.metrics.simulations <= 2    # torn entry + ENOSPC victim
    print(f"  re-read over chaos cache: {reader.metrics.summary()}")
