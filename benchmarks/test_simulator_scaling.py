"""Benchmark: kernel and model fast paths across scenario scales.

Runs the :mod:`repro.runtime.bench` suites — neighbor-path and
end-to-end scenario timings at 30/100(/200) nodes, model fit/score
timings — asserting both correctness (the harness itself fails on any
result divergence between the optimized and reference paths) and a
conservative speedup floor at the scales the optimization targets.

Defaults to the quick (CI-scale) workloads; set ``REPRO_BENCH_FULL=1``
for the full workloads behind the committed ``BENCH_*.json`` baselines,
and ``REPRO_BENCH_WRITE=1`` to (re)write those files at the repo root.
``python -m repro bench`` is the command-line equivalent.
"""

import os
from pathlib import Path

from repro.runtime.bench import run_model_bench, run_simulator_bench, write_bench

QUICK = os.environ.get("REPRO_BENCH_FULL", "0") in ("0", "false", "")
REPO_ROOT = Path(__file__).resolve().parent.parent


def _maybe_write(payload: dict, name: str) -> None:
    if os.environ.get("REPRO_BENCH_WRITE", "0") not in ("0", "false", ""):
        write_bench(payload, REPO_ROOT / f"BENCH_{name}.json")


def test_simulator_scaling():
    payload = run_simulator_bench(quick=QUICK)
    by_name = {e["name"]: e for e in payload["entries"]}

    # The grid index must clearly win the neighbor path at 100+ nodes.
    # The committed full-workload baseline shows >= 3x; the floor here is
    # deliberately lower so CI timing noise cannot flake the suite.
    assert by_name["neighbors/100nodes"]["speedup"] >= 1.5, by_name

    # The 500-node rows must exist for both protocols: they cover the
    # regime the batched kernel and the routing fast path target (the
    # harness asserted their fingerprints already).
    assert "scenario/aodv/500nodes" in by_name, sorted(by_name)
    assert "scenario/dsr/500nodes" in by_name, sorted(by_name)

    # Full-workload floor at the headline scale (aodv, 200 nodes, 60 s):
    # the committed baseline shows ~3x with all three switches on (the
    # harness converges the ratio from above with interleaved best-of
    # retries); losing any one optimization layer trips this floor.
    if not QUICK:
        assert by_name["scenario/aodv/200nodes"]["speedup"] >= 3.0, by_name

    # At every scale the harness has already asserted trace-fingerprint
    # equality between the two modes; spot-check the records are
    # well-formed, and require the fast-pathed stack to never lose to
    # the reference stack end to end — at any node count or protocol.
    for entry in payload["entries"]:
        assert entry["baseline_seconds"] > 0
        assert entry["optimized_seconds"] > 0
        if entry["kind"] == "end_to_end":
            assert entry["speedup"] >= 1.0, entry
            assert entry["trace_fingerprint"], entry

    _maybe_write(payload, "simulator")


def test_model_scaling():
    payload = run_model_bench(quick=QUICK)
    by_kind = {e["kind"]: e for e in payload["entries"]}

    # Batched tree scoring vs the rowwise reference walk; the committed
    # baseline shows >= 2x, the CI floor is again conservative.
    assert by_kind["scoring"]["speedup"] >= 1.3, by_kind

    # Threaded fit cannot be faster on a single-CPU runner; just require
    # it not to be pathologically slower.
    assert by_kind["training"]["speedup"] >= 0.5, by_kind

    _maybe_write(payload, "model")
