"""Streaming-detection throughput: windows per second, extract and score.

Measures the online path on a fixed replayed workload (no simulation in
the timed region):

* **extract-only** — the :class:`StreamingExtractor` consuming a full
  recorded event stream window by window;
* **extract + score** — the same stream with an
  :class:`OnlineDetector` scoring every window as it closes.

Both must sustain far more than the real-time rate (one window per 5 s of
simulated time = 0.2 windows/s), or the detector could not keep up with
the node it watches.  Wall-clock floors are deliberately conservative so
slow CI runners don't flake; the measured rates are printed for the
record.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.stream import OnlineDetector, extractor_for_config, replay_trace

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

#: Streaming is per-window work; a smaller condition keeps the *setup*
#: (simulate + fit, both outside the timed region) CI-friendly.
PLAN = replace(
    BENCH_PLAN,
    protocol="aodv",
    transport="udp",
    n_nodes=10,
    duration=200.0,
    max_connections=10,
    periods=(5.0, 60.0),
    warmup=0.0,
)

#: Sanity floor: >= 50x real time for scoring, >= 500x for extraction.
MIN_SCORED_WINDOWS_PER_S = 10.0
MIN_EXTRACTED_WINDOWS_PER_S = 100.0


def _streamed_trace():
    return RUNTIME.raw_traces(PLAN).abnormal_evals[0]


def test_extractor_throughput():
    trace = _streamed_trace()
    windows = 0

    def count(row):
        nonlocal windows
        windows += 1

    tap = extractor_for_config(
        trace.config, periods=PLAN.periods, on_row=count, keep_rows=False
    )
    t0 = time.perf_counter()
    replay_trace(trace, tap)
    elapsed = time.perf_counter() - t0
    rate = windows / elapsed

    print_header("Streaming throughput: extraction only")
    print(f"  {windows} windows in {elapsed:.3f}s -> {rate:,.0f} windows/s "
          f"({rate * trace.config.sampling_period:,.0f}x real time)")
    assert windows == len(trace.tick_times)
    assert rate > MIN_EXTRACTED_WINDOWS_PER_S


def test_end_to_end_scoring_throughput():
    trace = _streamed_trace()
    detector = RUNTIME.fitted_detector(PLAN, classifier="c45")
    online = OnlineDetector.from_detector(detector, monitor=PLAN.monitor)
    tap = extractor_for_config(
        trace.config, periods=PLAN.periods, on_row=online.consume, keep_rows=False
    )
    t0 = time.perf_counter()
    replay_trace(trace, tap)
    elapsed = time.perf_counter() - t0
    result = online.result(elapsed_s=elapsed)

    print_header("Streaming throughput: extraction + online scoring")
    print(f"  {result.summary()}")
    print(f"  ({result.windows_per_second * trace.config.sampling_period:,.0f}x "
          f"real time at a {trace.config.sampling_period:.0f}s window)")
    assert result.windows == len(trace.tick_times)
    assert result.windows_per_second > MIN_SCORED_WINDOWS_PER_S
    # Latency accounting is per window and strictly positive.
    assert 0.0 < result.mean_latency_s <= result.max_latency_s
