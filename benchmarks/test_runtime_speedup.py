"""Runtime-layer smoke benchmark: warm-start cache + parallel fan-out.

Asserts the runtime subsystem's two headline properties at a small,
CI-friendly scale:

* a **warm cache run performs zero simulations** — verified through the
  hit/miss counters in :class:`repro.RuntimeMetrics`, not wall-clock, so
  the assertion is robust on any machine;
* the parallel executor produces **identical detection numbers** to the
  serial path;
* wall-clock assertions (warm < cold, parallel < serial) are *printed*
  always but only asserted when the machine can meaningfully show them
  (multi-core, cold run slow enough to measure), so single-core CI
  runners skip the timing checks rather than flake.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import pytest

from repro.runtime import Session

from benchmarks.conftest import BENCH_PLAN, print_header

#: Much smaller than BENCH_PLAN: this file measures the runtime layer,
#: not the detector, so the traces only need to cost enough to observe.
SMOKE_PLAN = replace(
    BENCH_PLAN,
    n_nodes=10,
    duration=200.0,
    max_connections=10,
    periods=(5.0, 60.0),
    warmup=50.0,
)
N_TRACES = len(SMOKE_PLAN.train_seeds) + 1 + len(SMOKE_PLAN.normal_seeds) + len(SMOKE_PLAN.attack_seeds)


def test_warm_cache_skips_all_simulation(tmp_path):
    cold = Session(cache_dir=tmp_path, jobs=1)
    t0 = time.perf_counter()
    cold_result = cold.detect(SMOKE_PLAN, classifier="nbc")
    cold_seconds = time.perf_counter() - t0
    assert cold.metrics.simulations == N_TRACES
    assert cold.metrics.cache_misses == N_TRACES

    warm = Session(cache_dir=tmp_path, jobs=1)
    t0 = time.perf_counter()
    warm_result = warm.detect(SMOKE_PLAN, classifier="nbc")
    warm_seconds = time.perf_counter() - t0

    print_header("Runtime smoke: warm-start artifact cache")
    print(f"  cold: {cold_seconds:6.2f}s  ({cold.metrics.summary()})")
    print(f"  warm: {warm_seconds:6.2f}s  ({warm.metrics.summary()})")

    # The load-bearing assertions: counters, not clocks.
    assert warm.metrics.simulations == 0, "warm run must not simulate"
    assert warm.metrics.cache_hits == N_TRACES
    assert warm.metrics.cache_misses == 0
    assert warm_result.auc == cold_result.auc
    assert warm_result.threshold == cold_result.threshold
    assert warm_result.scores.tobytes() == cold_result.scores.tobytes()

    # Stage timing coverage: detection must account for its training and
    # scoring time in the stage ledger (the fit stage is where the
    # shared-pass ensemble optimisation lands).
    for session in (cold, warm):
        assert session.metrics.stage_seconds.get("fit", 0.0) > 0.0
        assert session.metrics.stage_seconds.get("score", 0.0) > 0.0

    # Timing is advisory: only asserted when the cold run was slow enough
    # for the comparison to be meaningful.
    if cold_seconds < 1.0:
        pytest.skip("cold run too fast to assert a timing win")
    assert warm_seconds < cold_seconds


def test_parallel_fanout_matches_serial(tmp_path):
    serial = Session(cache_dir=tmp_path / "serial", jobs=1)
    t0 = time.perf_counter()
    serial_result = serial.detect(SMOKE_PLAN, classifier="nbc")
    serial_seconds = time.perf_counter() - t0

    jobs = min(4, os.cpu_count() or 1)
    parallel = Session(cache_dir=tmp_path / "parallel", jobs=jobs)
    t0 = time.perf_counter()
    parallel_result = parallel.detect(SMOKE_PLAN, classifier="nbc")
    parallel_seconds = time.perf_counter() - t0

    print_header(f"Runtime smoke: parallel fan-out (jobs={jobs})")
    print(f"  serial:   {serial_seconds:6.2f}s")
    print(f"  parallel: {parallel_seconds:6.2f}s "
          f"({serial_seconds / max(parallel_seconds, 1e-9):.2f}x)")

    # Determinism is unconditional.
    assert parallel_result.auc == serial_result.auc
    assert parallel_result.scores.tobytes() == serial_result.scores.tobytes()
    assert parallel.metrics.simulations == N_TRACES

    # Timing asserted only where a speedup is physically possible.
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core runner: no parallel speedup to assert")
    if parallel.metrics.fallbacks:
        pytest.skip("process pool unavailable: executor fell back to serial")
    if serial_seconds < 2.0:
        pytest.skip("workload too small to assert a timing win")
    # Generous bound: pool startup + pickling overhead must still leave a
    # clear win on the ~7-way fan-out.
    assert parallel_seconds < serial_seconds * 0.9
