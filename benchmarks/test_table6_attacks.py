"""Table 6: the simulated MANET intrusions and their script parameters.

Regenerates the table's rows by actually running each attack script
against a baseline scenario and reporting its measured effect — the
modern equivalent of the paper's "attack description" column:

* **Black hole** (parameter: duration) — bogus shortest routes to all
  nodes absorb nearby traffic; delivery collapses during sessions.
* **Selective packet dropping** (parameters: duration, destination) —
  packets to the selected destination are silently dropped at the
  compromised host.
"""

from dataclasses import replace

import pytest

from repro.attacks import BlackholeAttack, DropMode, PacketDroppingAttack, periodic_sessions
from repro.simulation.scenario import ScenarioConfig, run_scenario

from benchmarks.conftest import print_header

CONFIG = ScenarioConfig(
    protocol="aodv", transport="udp", n_nodes=16, duration=400.0,
    max_connections=60, seed=7, traffic_seed=5,
)
ATTACKER = CONFIG.n_nodes - 1


def run_table6():
    baseline = run_scenario(CONFIG)
    blackhole = BlackholeAttack(
        attacker=ATTACKER,
        sessions=periodic_sessions(100.0, 50.0, CONFIG.duration),
    )
    bh_trace = run_scenario(CONFIG, attacks=[blackhole])
    dropping = PacketDroppingAttack(
        attacker=ATTACKER,
        sessions=periodic_sessions(100.0, 50.0, CONFIG.duration),
        mode=DropMode.SELECTIVE,
        destination=0,
    )
    drop_trace = run_scenario(CONFIG, attacks=[dropping])
    return baseline, (blackhole, bh_trace), (dropping, drop_trace)


def test_table6_attack_scripts(benchmark):
    baseline, (blackhole, bh_trace), (dropping, drop_trace) = benchmark.pedantic(
        run_table6, rounds=1, iterations=1
    )

    print_header("Table 6: simulated MANET intrusions")
    print(f"  baseline delivery ratio: {baseline.delivery_ratio():.2f}")
    print(f"  Black hole        (duration={50.0}s sessions): "
          f"delivery {bh_trace.delivery_ratio():.2f}, "
          f"{blackhole.absorbed} packets absorbed, "
          f"{blackhole.adverts_sent} forged adverts")
    print(f"  Selective dropping (duration={50.0}s, destination=0): "
          f"delivery {drop_trace.delivery_ratio():.2f}, "
          f"{dropping.dropped} packets dropped")

    # Black hole: absorbs traffic network-wide and damages delivery badly.
    assert blackhole.absorbed > 20
    assert bh_trace.delivery_ratio() < baseline.delivery_ratio() - 0.1

    # Selective dropping: silent, targeted; only transit packets to the
    # selected destination are affected, so the global delivery ratio
    # moves much less than under the black hole.
    assert drop_trace.delivery_ratio() >= bh_trace.delivery_ratio()

    # The on-off session model: attacks active exactly in their windows.
    assert blackhole.sessions == [(100.0, 150.0), (200.0, 250.0), (300.0, 350.0)]
