"""Figure 4: score density distributions, normal vs abnormal, C4.5.

Paper shape (§4.2): the normal and abnormal densities form distinct
modes; with the decision threshold drawn as a vertical line, the normal
mass left of it (false alarms) and the abnormal mass right of it (missed
anomalies) are both small — and the DSR panels leak more abnormal mass
past the threshold than the AODV panels, "further confirming" that AODV
detection is more accurate.
"""

import numpy as np
import pytest

from repro.eval.density import score_density, separation_summary

from benchmarks.conftest import RUNTIME, SCENARIOS, print_header


@pytest.fixture(scope="module")
def densities():
    out = {}
    for name, plan in SCENARIOS.items():
        result = RUNTIME.detect(plan, classifier="c45")
        normal_scores = np.concatenate(
            [s for (n, t, s, l) in result.series if n.startswith("normal")]
        )
        abnormal_scores = np.concatenate(
            [s[l] for (n, t, s, l) in result.series if n.startswith("abnormal")]
        )
        out[name] = {
            "normal": score_density(normal_scores),
            "abnormal": score_density(abnormal_scores),
            "threshold": result.threshold,
        }
    return out


def test_figure4_densities(benchmark, densities):
    benchmark.pedantic(
        lambda: {
            n: separation_summary(d["normal"], d["abnormal"], d["threshold"])
            for n, d in densities.items()
        },
        rounds=1, iterations=1,
    )

    print_header("Figure 4: density separation at the calibrated threshold (C4.5)")
    print(f"  {'scenario':10s} {'threshold':>9s} {'normal mass < thr':>18s} "
          f"{'abnormal mass > thr':>20s}")
    leak = {}
    for name, d in densities.items():
        summary = separation_summary(d["normal"], d["abnormal"], d["threshold"])
        leak[name] = summary["missed_anomaly_mass"]
        print(f"  {name:10s} {d['threshold']:9.3f} "
              f"{summary['false_alarm_mass']:18.2%} "
              f"{summary['missed_anomaly_mass']:20.2%}")

    # Distinct modes: abnormal mean strictly below normal mean everywhere
    # the paper's panels show it (AODV scenarios at minimum).
    for name in ("aodv/udp", "aodv/tcp"):
        d = densities[name]
        normal_mean = float((d["normal"].bin_centers * d["normal"].density).sum()
                            / d["normal"].density.sum())
        abnormal_mean = float((d["abnormal"].bin_centers * d["abnormal"].density).sum()
                              / d["abnormal"].density.sum())
        assert abnormal_mean < normal_mean, name

    # The paper's DSR-vs-AODV observation: DSR's abnormal curves leak more
    # mass to the right of the threshold.
    assert (leak["dsr/udp"] + leak["dsr/tcp"]) >= (leak["aodv/udp"] + leak["aodv/tcp"]) - 0.05

    _print_textual_histogram(densities)


def _print_textual_histogram(densities):
    d = densities["aodv/udp"]
    print_header("Figure 4(a) AODV/UDP density (n = normal, a = abnormal)")
    for lo, n_dens, a_dens in zip(d["normal"].bin_edges[:-1],
                                  d["normal"].density, d["abnormal"].density):
        marker = " <- threshold" if lo <= d["threshold"] < lo + 0.05 else ""
        print(f"  [{lo:4.2f}] n:{'#' * int(n_dens * 4):30s} "
              f"a:{'#' * int(a_dens * 4):30s}{marker}")
