"""Figure 6: density distributions for the single-intrusion scenarios.

Paper shape (§4.2): for both the black-hole-only and the dropping-only
compositions, the normal and abnormal densities are distinct; the normal
mass left of the threshold (false alarms) and the intrusive mass right of
it (missed anomalies) "are both very small", though each intrusion type
shows a different distribution.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.eval.density import score_density, separation_summary

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

AODV_UDP = replace(BENCH_PLAN, protocol="aodv", transport="udp")


@pytest.fixture(scope="module")
def single_densities():
    out = {}
    for kind in ("blackhole", "dropping"):
        result = RUNTIME.detect(replace(AODV_UDP, attack_kind=kind), classifier="c45")
        normal = np.concatenate(
            [s for (n, t, s, l) in result.series if n.startswith("normal")]
        )
        abnormal = np.concatenate(
            [s[l] for (n, t, s, l) in result.series if n.startswith("abnormal")]
        )
        out[kind] = {
            "normal": score_density(normal),
            "abnormal": score_density(abnormal),
            "threshold": result.threshold,
        }
    return out


def test_figure6_densities(benchmark, single_densities):
    benchmark.pedantic(
        lambda: {
            k: separation_summary(d["normal"], d["abnormal"], d["threshold"])
            for k, d in single_densities.items()
        },
        rounds=1, iterations=1,
    )

    print_header("Figure 6: single-intrusion density separation (AODV/UDP/C4.5)")
    means = {}
    for kind, d in single_densities.items():
        summary = separation_summary(d["normal"], d["abnormal"], d["threshold"])
        n_mean = float((d["normal"].bin_centers * d["normal"].density).sum()
                       / d["normal"].density.sum())
        a_mean = float((d["abnormal"].bin_centers * d["abnormal"].density).sum()
                       / d["abnormal"].density.sum())
        means[kind] = (n_mean, a_mean)
        print(f"  {kind:10s} thr={d['threshold']:.3f} "
              f"normal-mean={n_mean:.3f} abnormal-mean={a_mean:.3f} "
              f"false-alarm-mass={summary['false_alarm_mass']:.2%} "
              f"missed-mass={summary['missed_anomaly_mass']:.2%}")

        # The plots between normal and abnormal traces are distinct.
        assert a_mean < n_mean, kind
        # The normal mass left of the threshold is small by construction
        # (the threshold was calibrated at a 2% false-alarm budget).
        assert summary["false_alarm_mass"] < 0.25, kind

    # Different intrusion scenarios show different distributions.
    assert means["blackhole"] != means["dropping"]
