"""Fleet-multiplexing throughput: one batched pipeline vs N detectors.

Times the :class:`FleetDetector` tick-bucket pipeline against N
sequential :class:`OnlineDetector` runs over identical pre-extracted
window rows (extraction happens once, outside every timed region, so the
comparison isolates the scoring multiplexer).  At N = 1024 streams the
fleet must clear a 3x windows/s margin — the win the vectorized
``(N, L)`` scoring call buys over N ``(1, L)`` calls.

The speed claim is only meaningful if the numbers agree, so before any
rate is asserted the harness checks the fleet's per-lane scores
bit-identical (``np.array_equal``, no tolerance) to both the one-shot
batch score matrix and the sequential baseline's scores.

The sequential baseline is intensive — per-window cost does not depend
on N — so at large N it is measured on a capped number of windows and
extrapolated to the full workload (reported as such).
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.stream import FleetDetector, OnlineDetector, extractor_for_config, replay_trace

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

#: Same condition as test_stream_throughput: the simulate + fit setup is
#: shared through the session cache and stays outside every timed region.
PLAN = replace(
    BENCH_PLAN,
    protocol="aodv",
    transport="udp",
    n_nodes=10,
    duration=200.0,
    max_connections=10,
    periods=(5.0, 60.0),
    warmup=0.0,
)

STREAM_COUNTS = (1, 64, 1024)

#: Hard acceptance floor at the largest fleet (the ISSUE's 3x criterion).
MIN_SPEEDUP_AT_1024 = 3.0

#: Cap on baseline windows actually consumed before extrapolating.
BASELINE_CAP = 512


def _source_rows():
    """The replayed workload's window rows, extracted once."""
    trace = RUNTIME.raw_traces(PLAN).abnormal_evals[0]
    tap = extractor_for_config(trace.config, periods=PLAN.periods, keep_rows=True)
    replay_trace(trace, tap)
    return tap.rows


def _fleet_run(detector, rows, n_streams):
    """Feed N externally-fed lanes tick by tick; return (fleet, seconds).

    Every lane replays the same closed windows (stream s's row at tick k
    is the recorded row k), so the workload scales exactly linearly in N
    while staying real extracted data.
    """
    fleet = FleetDetector.from_detector(detector)
    for s in range(n_streams):
        fleet.attach(f"n{s}")
    t0 = time.perf_counter()
    for row in rows:
        for s in range(n_streams):
            fleet.ingest(f"n{s}", row)
        fleet.seal_all(row.time)
    fleet.finish()
    return fleet, time.perf_counter() - t0


def _sequential_baseline(detector, rows, n_streams):
    """N independent consume loops, capped + extrapolated (intensive)."""
    total = n_streams * len(rows)
    n_measure = min(total, BASELINE_CAP)
    online = OnlineDetector.from_detector(detector)
    consumed = 0
    t0 = time.perf_counter()
    while consumed < n_measure:
        online.consume(rows[consumed % len(rows)])
        consumed += 1
    measured_s = time.perf_counter() - t0
    rate = consumed / measured_s
    return online, total / rate, consumed < total


def _assert_fleet_identical(detector, fleet, rows, n_streams):
    """Every lane's scores must equal the one-shot batch matrix's bits."""
    X = np.vstack([row.features for row in rows])
    expected = detector.model.normality_score(X, detector.method)
    for s in range(n_streams):
        lane = np.asarray(fleet._lanes[f"n{s}"].scores)
        assert np.array_equal(lane, expected), f"lane {s} diverged"


def test_fleet_throughput_scales_past_sequential():
    rows = _source_rows()
    detector = RUNTIME.fitted_detector(PLAN, classifier="c45")

    print_header("Fleet multiplexing: batched pipeline vs N sequential detectors")
    speedups = {}
    for n_streams in STREAM_COUNTS:
        fleet, fleet_s = _fleet_run(detector, rows, n_streams)
        _assert_fleet_identical(detector, fleet, rows, n_streams)
        online, baseline_s, extrapolated = _sequential_baseline(
            detector, rows, n_streams
        )
        # The baseline walks the same rows in the same order, so its
        # measured prefix must also match the fleet's first lane exactly.
        probe = np.asarray(online.scores)
        lane0 = np.asarray(fleet._lanes["n0"].scores)
        n = min(len(probe), len(lane0))
        assert np.array_equal(probe[:n], lane0[:n])

        total = n_streams * len(rows)
        speedups[n_streams] = baseline_s / fleet_s
        note = " (extrapolated)" if extrapolated else ""
        print(f"  N={n_streams:5d}: {total:6d} windows  "
              f"sequential {baseline_s:8.3f}s{note}  fleet {fleet_s:7.3f}s  "
              f"-> {speedups[n_streams]:6.2f}x  "
              f"({total / fleet_s:,.0f} windows/s, "
              f"mean batch {fleet.result().mean_batch_size:.0f})")

    assert speedups[1024] >= MIN_SPEEDUP_AT_1024


def test_single_stream_fleet_matches_online_detector():
    """N=1 sanity: the multiplexer adds no numeric or alarm drift."""
    rows = _source_rows()
    detector = RUNTIME.fitted_detector(PLAN, classifier="c45")

    online = OnlineDetector.from_detector(detector, monitor=PLAN.monitor)
    for row in rows:
        online.consume(row)

    fleet, _ = _fleet_run(detector, rows, 1)
    lane = fleet.result().streams["n0"]
    assert np.array_equal(lane.scores, np.asarray(online.scores))
    assert np.array_equal(lane.times, np.asarray(online.times))
    assert [(a.index, a.time, a.score, a.threshold) for a in lane.alarms] == \
           [(a.index, a.time, a.score, a.threshold) for a in online.alarms]

    print_header("Fleet multiplexing: single-stream equivalence")
    print(f"  {lane.windows} windows, {len(lane.alarms)} alarms — "
          f"bit-identical to the solo OnlineDetector")
