"""Figure 5: single-intrusion time series, AODV/UDP with C4.5.

Paper setup (§4.2): traces composed of *only* black hole attacks
(Figure 5(a)) or *only* packet dropping attacks (Figure 5(b)), three
sessions at 2500/5000/7500 s of a 10 000 s trace (25%/50%/75% here),
each lasting 100 s (scaled by the same factor).

Paper shape: each intrusion type shows its own pattern but both separate
from normal traces at the threshold; and the network "may not recover
from the implemented intrusions very well" — anomalies persist after the
sessions end (the black hole's maximum sequence numbers are never
rectified).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.eval.timeseries import averaged_score_series

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

AODV_UDP = replace(BENCH_PLAN, protocol="aodv", transport="udp")
SINGLE_PLANS = {
    "blackhole": replace(AODV_UDP, attack_kind="blackhole"),
    "dropping": replace(AODV_UDP, attack_kind="dropping"),
}
SESSION_STARTS = tuple(f * BENCH_PLAN.duration for f in (0.25, 0.5, 0.75))
SESSION_LEN = BENCH_PLAN.session_frac * BENCH_PLAN.duration


@pytest.fixture(scope="module")
def single_results():
    return {kind: RUNTIME.detect(plan, classifier="c45")
            for kind, plan in SINGLE_PLANS.items()}


def _series(result, kind):
    runs = [s for (n, t, s, l) in result.series if n.startswith(kind)]
    times = next(t for (n, t, s, l) in result.series if n.startswith(kind))
    return averaged_score_series(times, runs)


def test_figure5_single_intrusion_series(benchmark, single_results):
    benchmark.pedantic(
        lambda: {k: _series(r, "abnormal") for k, r in single_results.items()},
        rounds=1, iterations=1,
    )

    print_header("Figure 5: AODV/UDP/C4.5 — single-intrusion score series")
    for kind, result in single_results.items():
        normal = _series(result, "normal")
        abnormal = _series(result, "abnormal")
        pre = abnormal.mean_in(0, SESSION_STARTS[0])
        in_sessions = np.mean([
            abnormal.mean_in(s, s + SESSION_LEN) for s in SESSION_STARTS
        ])
        after_last = abnormal.mean_in(
            SESSION_STARTS[-1] + SESSION_LEN, BENCH_PLAN.duration
        )
        normal_level = normal.mean_in(SESSION_STARTS[0], BENCH_PLAN.duration)
        print(f"  {kind:10s} pre={pre:.3f} in-session={in_sessions:.3f} "
              f"after-last={after_last:.3f} (normal level {normal_level:.3f})")

        # Both intrusion types separate from normal once attacks start.
        assert in_sessions < pre, kind

    # The black hole's damage persists after its sessions end (the paper's
    # non-self-healing observation).
    bh = _series(single_results["blackhole"], "abnormal")
    bh_normal = _series(single_results["blackhole"], "normal")
    after = bh.mean_in(SESSION_STARTS[-1] + SESSION_LEN, BENCH_PLAN.duration)
    normal_after = bh_normal.mean_in(SESSION_STARTS[-1] + SESSION_LEN, BENCH_PLAN.duration)
    print(f"  persistence: blackhole after-last={after:.3f} vs normal={normal_after:.3f}")
    assert after < normal_after

    # Detectability per composition: the black hole separates cleanly;
    # dropping is the paper's "more confusing" attack — at benchmark
    # scale its brief sessions leave only a weak in-session dip, so the
    # assertion is directional only.
    for kind, result in single_results.items():
        r, p, _ = result.optimal
        print(f"  {kind}: auc={result.auc:.3f} optimal=({r:.2f}, {p:.2f})")
    assert single_results["blackhole"].auc > 0.2
    assert single_results["dropping"].auc > -0.1
