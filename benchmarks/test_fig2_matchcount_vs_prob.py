"""Figure 2: average match count vs average probability with RIPPER.

Paper shape (§4.2): "RIPPER improves performance dramatically when we use
average probability instead of average match count", while for C4.5 and
NBC the improvement "does not appear to be very obvious".

This benchmark uses the paper's *verbatim* scoring rules (Algorithms 2
and 3, uncalibrated) so the comparison is exactly the paper's.
"""

import pytest


from benchmarks.conftest import RUNTIME, SCENARIOS, print_header

#: The scenarios Figure 2 panels show (all four in the paper).
PANELS = ("aodv/udp", "aodv/tcp", "dsr/udp", "dsr/tcp")


@pytest.fixture(scope="module")
def ripper_results():
    out = {}
    for name in PANELS:
        plan = SCENARIOS[name]
        out[name] = {
            "match_count": RUNTIME.detect(plan, classifier="ripper", method="match_count"),
            "avg_probability": RUNTIME.detect(plan, classifier="ripper", method="avg_probability"),
        }
    return out


def test_figure2_ripper_probability_beats_match_count(benchmark, ripper_results):
    plan = SCENARIOS["aodv/udp"]

    def score_both():
        from repro.eval.experiments import run_detection_experiment
        bundle = RUNTIME.bundle(plan)
        return (
            run_detection_experiment(bundle, classifier="ripper", method="match_count"),
            run_detection_experiment(bundle, classifier="ripper", method="avg_probability"),
        )

    benchmark.pedantic(score_both, rounds=1, iterations=1)

    print_header("Figure 2: RIPPER — Algorithm 2 (match count) vs Algorithm 3 (probability)")
    print(f"  {'scenario':10s} {'match-count AUC':>16s} {'probability AUC':>16s}")
    improvements = []
    for name, res in ripper_results.items():
        mc, ap = res["match_count"].auc, res["avg_probability"].auc
        improvements.append(ap - mc)
        print(f"  {name:10s} {mc:16.3f} {ap:16.3f}")

    # The paper's claim is about the aggregate behaviour: probability
    # scoring helps RIPPER overall.
    mean_improvement = sum(improvements) / len(improvements)
    print(f"  mean improvement: {mean_improvement:+.3f}")
    assert mean_improvement > -0.02

    # For C4.5 the paper sees no dramatic gap between the two scorings.
    plan = SCENARIOS["aodv/udp"]
    c45_mc = RUNTIME.detect(plan, classifier="c45", method="match_count")
    c45_ap = RUNTIME.detect(plan, classifier="c45", method="avg_probability")
    print(f"  C4.5 aodv/udp: match={c45_mc.auc:.3f} prob={c45_ap.auc:.3f}")
    assert abs(c45_ap.auc - c45_mc.auc) < 0.35
