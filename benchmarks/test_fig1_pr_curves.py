"""Figure 1: recall-precision curves per classifier across four scenarios.

Paper shape to reproduce (§4.2):

* C4.5 is the best sub-model engine ("almost perfect", curves near the
  top-right), RIPPER second, NBC worst;
* results from AODV are significantly better than those from DSR (the
  paper quotes C4.5 optimal points of ~(0.99, 0.97) for AODV/TCP vs
  ~(0.86, 0.93) for DSR/TCP).

The reproduction asserts the *orderings*; absolute values at this scale
are recorded in EXPERIMENTS.md.
"""

import pytest


from benchmarks.conftest import CLASSIFIER_ORDER, RUNTIME, SCENARIOS, print_header


@pytest.fixture(scope="module")
def all_results():
    return {
        name: {clf: RUNTIME.detect(plan, classifier=clf) for clf in CLASSIFIER_ORDER}
        for name, plan in SCENARIOS.items()
    }


def test_figure1_recall_precision_curves(benchmark, all_results):
    # The timed section is scoring one scenario's evaluation traces with
    # the already-trained C4.5 detector (the simulation/training pipeline
    # is shared session state).
    plan = SCENARIOS["aodv/udp"]
    bundle = RUNTIME.bundle(plan)

    def score_only():
        from repro.eval.experiments import run_detection_experiment
        return run_detection_experiment(bundle, classifier="c45")

    benchmark.pedantic(score_only, rounds=1, iterations=1)

    print_header("Figure 1: AUC above diagonal / optimal point per curve")
    print(f"  {'scenario':10s} {'classifier':10s} {'AUC':>7s} {'optimal (r, p)':>16s}")
    for name, per_clf in all_results.items():
        for clf in CLASSIFIER_ORDER:
            res = per_clf[clf]
            r, p, _ = res.optimal
            print(f"  {name:10s} {clf:10s} {res.auc:7.3f}   ({r:.2f}, {p:.2f})")

    # Shape assertions ------------------------------------------------
    for name, per_clf in all_results.items():
        protocol = name.split("/")[0]
        if protocol == "aodv":
            # C4.5 leads on the AODV scenarios, where the paper's signal
            # is strongest.
            assert per_clf["c45"].auc >= per_clf["nbc"].auc, name
            assert per_clf["c45"].auc >= per_clf["ripper"].auc - 0.05, name

    # AODV significantly better than DSR for the best classifier.
    for transport in ("tcp", "udp"):
        aodv = all_results[f"aodv/{transport}"]["c45"].auc
        dsr = all_results[f"dsr/{transport}"]["c45"].auc
        print(f"  AODV vs DSR ({transport}): {aodv:.3f} vs {dsr:.3f}")
        assert aodv > dsr, f"AODV should beat DSR on {transport}"

    # C4.5 on AODV reaches a usable operating point (paper: near-perfect).
    for transport in ("tcp", "udp"):
        r, p, _ = all_results[f"aodv/{transport}"]["c45"].optimal
        assert r >= 0.6 and p >= 0.6, (transport, r, p)
