"""Extension bench: detecting the rest of the §2.3 attack taxonomy.

The paper's evaluation uses black hole and packet dropping; its §2.3
taxonomy also names the *update storm* and *identity impersonation*
attacks.  The anomaly-detection premise — "effective against new attacks
because it does not assume prior knowledge of attack patterns" — says a
detector trained on normal data alone should flag these too.  This bench
measures exactly that (an extension experiment, not a paper figure).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.attacks import ImpersonationAttack, UpdateStormAttack, periodic_sessions
from repro.core.model import CrossFeatureDetector
from repro.eval.metrics import area_above_diagonal, precision_recall_curve
from repro.features.extraction import extract_features
from repro.ml import CLASSIFIERS
from repro.simulation.scenario import run_scenario

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

PLAN = replace(BENCH_PLAN, protocol="aodv", transport="udp")


def attack_dataset(attack):
    trace = run_scenario(PLAN.scenario_config(41), attacks=[attack])
    return extract_features(trace, monitor=PLAN.monitor, periods=PLAN.periods,
                            warmup=PLAN.warmup, label_policy="session")


def test_unseen_taxonomy_attacks_detected(benchmark):
    bundle = RUNTIME.bundle(PLAN)
    detector = CrossFeatureDetector(
        classifier_factory=CLASSIFIERS["c45"],
        method="calibrated_probability",
        false_alarm_rate=0.02,
    )
    detector.fit(bundle.train.X, calibration_X=bundle.calibration.X)
    normal_scores = np.concatenate(
        [detector.score(ds.X) for ds in bundle.normal_evals]
    )
    normal_labels = np.zeros(len(normal_scores), dtype=bool)

    sessions = periodic_sessions(0.25 * PLAN.duration, 0.05 * PLAN.duration,
                                 PLAN.duration)
    attacks = {
        "update storm": UpdateStormAttack(attacker=PLAN.attacker,
                                          sessions=sessions, rate=25.0),
        "impersonation": ImpersonationAttack(attacker=PLAN.attacker, victim=1,
                                             sessions=sessions, rate=4.0),
    }

    def run_all():
        out = {}
        for name, attack in attacks.items():
            ds = attack_dataset(attack)
            scores = np.concatenate([normal_scores, detector.score(ds.X)])
            labels = np.concatenate([normal_labels, ds.labels])
            out[name] = area_above_diagonal(precision_recall_curve(scores, labels))
        return out

    aucs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_header("Taxonomy extension: unseen attack classes (AODV/UDP, C4.5)")
    for name, auc in aucs.items():
        print(f"  {name:14s} auc={auc:7.3f}")

    # The detector never saw any attack; the flooding attack must register
    # clearly, the (far subtler) impersonation at least not look *more*
    # normal than real normal traffic.
    assert aucs["update storm"] > 0.1
    assert aucs["impersonation"] > -0.1
