"""Extension bench: cross-feature analysis on a *proactive* protocol.

The paper's §2 names OLSR as the other family of MANET routing protocols
but evaluates only the on-demand ones.  Proactive traffic statistics are
completely different — periodic HELLO/TC floods instead of on-demand
request/reply bursts — so running the unchanged detection pipeline over
OLSR probes the framework's protocol-independence claim.

Also shown: the OLSR black hole *self-heals* (forged topology expires
with its hold time), unlike AODV's permanent maximum-sequence poisoning —
a qualitative protocol contrast the paper's §4.2 discussion invites.
"""

from dataclasses import replace

import pytest

from repro.eval.timeseries import averaged_score_series

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

OLSR_PLAN = replace(BENCH_PLAN, protocol="olsr", transport="udp",
                    attack_kind="blackhole")
SESSION_STARTS = tuple(f * BENCH_PLAN.duration for f in (0.25, 0.5, 0.75))
SESSION_LEN = BENCH_PLAN.session_frac * BENCH_PLAN.duration


def test_olsr_detection(benchmark):
    result = benchmark.pedantic(
        lambda: RUNTIME.detect(OLSR_PLAN, classifier="c45"),
        rounds=1, iterations=1,
    )

    print_header("OLSR extension: black-hole detection on a proactive protocol")
    r, p, _ = result.optimal
    print(f"  auc={result.auc:.3f} optimal=({r:.2f}, {p:.2f})")

    # The unchanged pipeline generalises: better than random.
    assert result.auc > 0.0

    # Self-healing contrast: scores between/after sessions recover more
    # than AODV's (absolute check: the post-last-session average sits
    # closer to the in-session normal level than to the attack floor).
    runs = [s for (n, t, s, l) in result.series if n.startswith("abnormal")]
    times = next(t for (n, t, s, l) in result.series if n.startswith("abnormal"))
    abnormal = averaged_score_series(times, runs)
    in_session = min(
        abnormal.mean_in(s, s + SESSION_LEN) for s in SESSION_STARTS
    )
    after = abnormal.mean_in(SESSION_STARTS[-1] + SESSION_LEN + 60.0,
                             BENCH_PLAN.duration)
    print(f"  worst in-session score={in_session:.3f}, "
          f"after-last-session score={after:.3f} (healing)")
    assert after >= in_session - 0.05
