"""Tables 4-5: the feature sets, verified structurally and benchmarked.

Table 4 defines the nine topology/route features (one of which, time, is
carried out-of-band); Table 5 defines the traffic feature grid whose size
the paper computes as (6 x 4 - 2) x 3 x 2 = 132.  The benchmark times the
full feature extraction over a real simulated trace.
"""

import numpy as np

from repro.features.extraction import extract_features
from repro.features.topology import TOPOLOGY_FEATURE_NAMES
from repro.features.traffic import DEFAULT_SAMPLING_PERIODS, traffic_feature_grid
from repro.simulation.scenario import ScenarioConfig, run_scenario

from benchmarks.conftest import print_header


def test_table4_topology_features(benchmark):
    trace = run_scenario(ScenarioConfig(n_nodes=12, duration=300.0,
                                        max_connections=30, seed=3))
    ds = benchmark(extract_features, trace, 0)

    print_header("Table 4: Feature Set I (topology and route related)")
    for name in TOPOLOGY_FEATURE_NAMES:
        col = ds.X[:, ds.feature_names.index(name)]
        print(f"  {name:24s} mean={col.mean():10.3f} max={col.max():10.3f}")
    assert ds.feature_names[: len(TOPOLOGY_FEATURE_NAMES)] == TOPOLOGY_FEATURE_NAMES
    # 'time' is carried out of band, as the paper's Table 4 notes.
    assert len(ds.times) == len(ds)


def test_table5_traffic_feature_grid(benchmark):
    specs = benchmark(traffic_feature_grid)

    print_header("Table 5: Feature Set II dimensions")
    print(f"  packet types x directions (minus exclusions): "
          f"{len({(s.packet_type, s.direction) for s in specs})}")
    print(f"  sampling periods: {DEFAULT_SAMPLING_PERIODS}")
    print(f"  measures: count, iat_std")
    print(f"  total features: {len(specs)}  (paper: (6x4-2)x3x2 = 132)")
    assert len(specs) == 132

    example = [s for s in specs if s.name == "rreq_received_5s_iat_std"][0]
    print(f"  paper encoding check: {example.name} -> <{','.join(map(str, example.encode()))}>")
    assert example.encode() == (2, 0, 0, 1)
