"""§6 future-work bench: model reduction via correlation / factor analysis.

"We are developing technologies to reduce computational cost, where fewer
number of models are involved ... based on both correlation analysis and
factor analysis."  This bench quantifies how far the 140-model ensemble
can shrink before detection quality degrades.
"""

import time
from dataclasses import replace

import pytest

from repro.core.reduction import correlation_reduce, factor_reduce
from repro.eval.experiments import run_detection_experiment
from repro.ml import CLASSIFIERS
from repro.core.model import CrossFeatureDetector
from repro.eval.metrics import area_above_diagonal, precision_recall_curve

import numpy as np

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

PLAN = replace(BENCH_PLAN, protocol="aodv", transport="udp")


def evaluate_subset(bundle, subset):
    detector = CrossFeatureDetector(
        classifier_factory=CLASSIFIERS["c45"],
        method="calibrated_probability",
        feature_subset=subset,
    )
    t0 = time.perf_counter()
    detector.fit(bundle.train.X, calibration_X=bundle.calibration.X)
    train_time = time.perf_counter() - t0
    scores, labels = bundle.eval_scores_labels(detector.score)
    curve = precision_recall_curve(scores, labels)
    return area_above_diagonal(curve), train_time


def test_model_reduction(benchmark):
    bundle = RUNTIME.bundle(PLAN)

    def run_reductions():
        out = {}
        out["full (140)"] = evaluate_subset(bundle, None)
        corr_subset = correlation_reduce(bundle.train.X, threshold=0.98)
        out[f"correlation ({len(corr_subset)})"] = evaluate_subset(bundle, corr_subset)
        factor_subset = factor_reduce(bundle.train.X, n_features=40)
        out["factor (40)"] = evaluate_subset(bundle, factor_subset)
        return out

    results = benchmark.pedantic(run_reductions, rounds=1, iterations=1)

    print_header("§6 model reduction: AUC and training cost vs ensemble size")
    for name, (auc, train_time) in results.items():
        print(f"  {name:18s} auc={auc:7.3f} train={train_time:6.1f}s")

    full_auc, full_time = results["full (140)"]
    for name, (auc, train_time) in results.items():
        if name == "full (140)":
            continue
        # Reduced ensembles keep most of the detection quality ...
        assert auc > full_auc - 0.25, (name, auc, full_auc)
        # ... at lower training cost.
        assert train_time <= full_time * 1.1, (name, train_time, full_time)
