"""Typed-alarm regression gate over the committed attribution baseline.

``BENCH_attribution.json`` is produced by the *full*
``python -m repro bench --suite attribution`` run (all four attack
kinds × AODV/DSR at the 20-node/1000 s scale) with the bit-identity
contract asserted in-harness.  This module re-asserts the committed
numbers — no simulation, so it is cheap enough to gate every push:

* the macro cell-majority classification accuracy meets the floor the
  harness enforces (every committed baseline must keep meeting it);
* each attack kind is recognised as itself by majority vote in at
  least one protocol (no class silently degenerated to ``unknown``);
* every entry carries the identity note proving scores/alarms were
  compared with attribution off, on, and killed.

The live quick-scale identity run happens in CI right next to this
test (``python -m repro bench --quick --suite attribution``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.attribution import ANOMALY_TYPES
from repro.runtime import ATTRIBUTION_ACCURACY_FLOOR

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_attribution.json"

ATTACK_KINDS = ("flooding", "blackhole", "dropping", "impersonation")


@pytest.fixture(scope="module")
def payload():
    if not BASELINE.exists():
        pytest.fail(
            "BENCH_attribution.json is missing — regenerate it with "
            "'python -m repro bench --suite attribution --out-dir .'"
        )
    return json.loads(BASELINE.read_text())


def test_baseline_is_the_full_suite(payload):
    assert payload["suite"] == "attribution"
    assert payload["quick"] is False, (
        "the committed baseline must come from the full run — quick mode "
        "skips the accuracy floor"
    )
    names = {e["name"] for e in payload["entries"]}
    assert names == {
        f"attribution/{protocol}/{kind}"
        for protocol in ("aodv", "dsr") for kind in ATTACK_KINDS
    }


def test_macro_accuracy_meets_floor(payload):
    classification = payload["classification"]
    assert classification["accuracy_floor"] == ATTRIBUTION_ACCURACY_FLOOR
    assert classification["macro_cell_accuracy"] >= ATTRIBUTION_ACCURACY_FLOOR


def test_every_attack_kind_is_recognised(payload):
    per_class = payload["classification"]["per_class_cell_accuracy"]
    for kind in ATTACK_KINDS:
        assert kind in ANOMALY_TYPES, f"{kind} fell out of the registry"
        assert per_class[kind] is not None and per_class[kind] > 0.0, (
            f"majority verdict never named {kind} in any protocol"
        )


def test_confusion_matrix_is_diagonal_heavy(payload):
    confusion = payload["classification"]["confusion"]
    for kind in ATTACK_KINDS:
        row = confusion[kind]
        assert row, f"no attack-window alarms recorded for {kind}"
        diagonal = row.get(kind, 0)
        assert diagonal == max(row.values()), (
            f"{kind} windows were most often called "
            f"{max(row, key=row.get)}, not {kind}"
        )


def test_entries_assert_identity_and_annotate_alarms(payload):
    for entry in payload["entries"]:
        assert "REPRO_ATTRIBUTION=0" in entry["identity"]
        assert entry["alarms"] >= entry["attack_window_alarms"]
        # The overhead ratio is real data, not a placeholder.
        assert entry["baseline_seconds"] > 0.0
        assert entry["optimized_seconds"] > 0.0
