"""Ablations over the design choices DESIGN.md calls out.

Not a paper figure — these benches quantify the knobs the reproduction
(and the paper's §6 future work) expose:

* scoring rule: Algorithm 2 vs Algorithm 3 vs the calibrated variant;
* number of sub-models (paper future work: "fewer number of models");
* discretization bucket count (paper fixes 5);
* sampling-period subsets (5 s only vs the full 5/60/900 s grid);
* threshold false-alarm budget sweep.

All run on the AODV/UDP condition, where the signal is strongest.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.eval.metrics import recall_precision_at

from benchmarks.conftest import BENCH_PLAN, RUNTIME, print_header

PLAN = replace(BENCH_PLAN, protocol="aodv", transport="udp")


def test_ablation_scoring_rules(benchmark):
    results = benchmark.pedantic(
        lambda: {
            method: RUNTIME.detect(PLAN, classifier="c45", method=method)
            for method in ("match_count", "avg_probability", "calibrated_probability")
        },
        rounds=1, iterations=1,
    )
    print_header("Ablation: scoring rule (C4.5, AODV/UDP)")
    for method, res in results.items():
        r, p, _ = res.optimal
        print(f"  {method:24s} auc={res.auc:7.3f} optimal=({r:.2f}, {p:.2f})")
    # Algorithm 3 never loses to Algorithm 2 by much (paper §3: match
    # count is the 0/1 special case of probability scoring).
    assert results["avg_probability"].auc >= results["match_count"].auc - 0.1
    # The calibrated variant is the reproduction's default because it
    # dominates at this trace scale.
    assert results["calibrated_probability"].auc >= results["avg_probability"].auc - 0.05


def test_ablation_number_of_submodels(benchmark):
    results = benchmark.pedantic(
        lambda: {
            k: RUNTIME.detect(PLAN, classifier="c45", max_models=k)
            for k in (10, 35, 70, None)
        },
        rounds=1, iterations=1,
    )
    print_header("Ablation: number of sub-models (paper §6 future work)")
    for k, res in results.items():
        label = "all (140)" if k is None else str(k)
        print(f"  max_models={label:9s} auc={res.auc:7.3f}")
    # A moderate random subset retains most of the signal; the full
    # ensemble is the reference.
    assert results[None].auc > 0.1
    assert results[70].auc > results[None].auc - 0.25


def test_ablation_bucket_count(benchmark):
    results = benchmark.pedantic(
        lambda: {
            b: RUNTIME.detect(PLAN, classifier="c45", n_buckets=b)
            for b in (3, 5, 10)
        },
        rounds=1, iterations=1,
    )
    print_header("Ablation: discretization buckets (paper fixes 5)")
    for b, res in results.items():
        print(f"  n_buckets={b:2d} auc={res.auc:7.3f}")
    assert all(res.auc > 0.0 for res in results.values())


def test_ablation_sampling_periods(benchmark):
    plans = {
        "5s only": replace(PLAN, periods=(5.0,)),
        "5s+60s": replace(PLAN, periods=(5.0, 60.0)),
        "5/60/900s": PLAN,
    }
    results = benchmark.pedantic(
        lambda: {name: RUNTIME.detect(p, classifier="c45") for name, p in plans.items()},
        rounds=1, iterations=1,
    )
    print_header("Ablation: sampling-period grid (Table 5 dimension)")
    for name, res in results.items():
        print(f"  {name:10s} auc={res.auc:7.3f}")
    # The long-period features carry the persistent-damage signal: the
    # full grid should not lose to the 5s-only variant.
    assert results["5/60/900s"].auc >= results["5s only"].auc - 0.1


def test_ablation_false_alarm_budget(benchmark):
    res = RUNTIME.detect(PLAN, classifier="c45")

    def sweep():
        out = {}
        for rate in (0.01, 0.02, 0.05, 0.10):
            # Recompute the operating point the budget would select from
            # the calibration distribution.
            thr = np.quantile(
                res.scores[~res.labels], rate
            )  # proxy: quantile of eval-normal scores
            out[rate] = recall_precision_at(res.scores, res.labels, thr)
        return out

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Ablation: false-alarm budget -> operating point")
    last_recall = -1.0
    for rate, (r, p) in points.items():
        print(f"  budget={rate:4.0%} recall={r:.2f} precision={p:.2f}")
        assert r >= last_recall - 1e-9  # bigger budget -> more recall
        last_recall = r
