"""Figure 3: average probability over time, normal vs abnormal, C4.5.

Paper shape (§4.2): identical curves before the first intrusion at
2500 s (25% of the trace here); afterwards the normal traces stay
"almost flat" while abnormal traces oscillate and stay depressed —
including between/after sessions, because the network does not self-heal
from the black hole's maximum sequence numbers.
"""

import numpy as np
import pytest

from repro.eval.timeseries import averaged_score_series

from benchmarks.conftest import BENCH_PLAN, RUNTIME, SCENARIOS, print_header

ATTACK_START = BENCH_PLAN.blackhole_start_frac * BENCH_PLAN.duration


def series_for(result, kind):
    runs = [s for (name, t, s, l) in result.series if name.startswith(kind)]
    times = next(t for (name, t, s, l) in result.series if name.startswith(kind))
    return averaged_score_series(times, runs)


@pytest.fixture(scope="module")
def c45_results():
    return {name: RUNTIME.detect(plan, classifier="c45")
            for name, plan in SCENARIOS.items()}


def test_figure3_score_time_series(benchmark, c45_results):
    benchmark.pedantic(
        lambda: {n: (series_for(r, "normal"), series_for(r, "abnormal"))
                 for n, r in c45_results.items()},
        rounds=1, iterations=1,
    )

    print_header("Figure 3: averaged score over time (C4.5), per scenario")
    for name, result in c45_results.items():
        normal = series_for(result, "normal")
        abnormal = series_for(result, "abnormal")
        pre_n = normal.mean_in(0, ATTACK_START)
        post_n = normal.mean_in(ATTACK_START, BENCH_PLAN.duration)
        pre_a = abnormal.mean_in(0, ATTACK_START)
        post_a = abnormal.mean_in(ATTACK_START, BENCH_PLAN.duration)
        print(f"  {name:10s} normal pre/post = {pre_n:.3f}/{post_n:.3f}   "
              f"abnormal pre/post = {pre_a:.3f}/{post_a:.3f}")

        # Before the intrusion starts the abnormal trace is just another
        # normal trace: curves comparable.
        assert abs(pre_a - pre_n) < 0.25, name
        # Normal curves stay flat across the attack boundary.
        assert abs(post_n - pre_n) < 0.2, name

    # The depression is the detection signal; it must appear clearly on
    # the AODV scenarios (the paper's strongest panels).
    for name in ("aodv/udp", "aodv/tcp"):
        result = c45_results[name]
        normal = series_for(result, "normal")
        abnormal = series_for(result, "abnormal")
        post_n = normal.mean_in(ATTACK_START, BENCH_PLAN.duration)
        post_a = abnormal.mean_in(ATTACK_START, BENCH_PLAN.duration)
        assert post_a < post_n - 0.05, name

    _print_textual_curves(c45_results)


def _print_textual_curves(c45_results):
    """Render the AODV/UDP panel as text (the paper's Figure 3(a))."""
    result = c45_results["aodv/udp"]
    normal = series_for(result, "normal")
    abnormal = series_for(result, "abnormal")
    print_header("Figure 3(a) AODV/UDP: + normal, x abnormal")
    step = max(len(normal.times) // 24, 1)
    for k in range(0, len(normal.times), step):
        t = normal.times[k]
        n_pos = int(50 * np.clip(normal.scores[k], 0, 1))
        a_pos = int(50 * np.clip(abnormal.scores[k], 0, 1))
        line = [" "] * 51
        line[n_pos] = "+"
        line[a_pos] = "x" if line[a_pos] == " " else "*"
        marker = "<- attack on" if t > ATTACK_START else ""
        print(f"  {t:6.0f}s |{''.join(line)}| {marker}")
