"""End-to-end equivalence of the shared-pass ensemble training.

``REPRO_FAST_FIT=0`` forces the reference per-sub-model training loop
(full ``np.delete`` copies, per-attribute histogram passes); the default
shared-pass path must produce ``np.array_equal`` detection scores on the
same simulated traces — for both routing protocols, sharing one trace
cache so only the training path differs.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.eval.experiments import ExperimentPlan
from repro.runtime import Session

PLAN = ExperimentPlan(
    n_nodes=6,
    duration=120.0,
    max_connections=5,
    train_seeds=(1,),
    calibration_seed=2,
    normal_seeds=(3,),
    attack_seeds=(4,),
    warmup=20.0,
    periods=(5.0, 30.0),
)


@pytest.mark.parametrize("protocol", ["aodv", "dsr"])
@pytest.mark.parametrize("classifier", ["c45", "nbc"])
def test_detect_scores_identical_with_and_without_fast_fit(
    tmp_path, monkeypatch, protocol, classifier
):
    plan = replace(PLAN, protocol=protocol)

    monkeypatch.setenv("REPRO_FAST_FIT", "0")
    reference = Session(cache_dir=tmp_path).detect(plan, classifier=classifier)

    monkeypatch.setenv("REPRO_FAST_FIT", "1")
    shared = Session(cache_dir=tmp_path).detect(plan, classifier=classifier)

    assert np.array_equal(reference.scores, shared.scores)
    assert reference.auc == shared.auc
    assert reference.threshold == shared.threshold


def test_fit_stage_is_recorded(tmp_path):
    session = Session(cache_dir=tmp_path)
    session.detect(PLAN, classifier="nbc")
    assert session.metrics.stage_seconds.get("fit", 0.0) > 0.0
