"""Failure injection and stress: the substrate under hostile conditions.

These tests assert the simulator and protocols degrade gracefully —
deliver less, never crash, keep their trace logs consistent — under
lossy channels, congestion, high mobility and dense load.
"""

import pytest

from repro.simulation.packet import Direction, PacketType
from repro.simulation.scenario import ScenarioConfig, run_scenario

from tests.conftest import small_config


@pytest.mark.parametrize("protocol", ["aodv", "dsr"])
class TestLossyChannel:
    def test_moderate_loss_degrades_but_functions(self, protocol):
        clean = run_scenario(small_config(protocol=protocol, seed=8))
        lossy = run_scenario(small_config(protocol=protocol, seed=8, loss_rate=0.15))
        assert lossy.data_delivered > 0
        assert lossy.delivery_ratio() <= clean.delivery_ratio() + 0.05

    def test_heavy_loss_still_no_crash(self, protocol):
        trace = run_scenario(
            small_config(protocol=protocol, seed=8, duration=100.0, loss_rate=0.5)
        )
        assert trace.recorder.total_packets() > 0


@pytest.mark.parametrize("protocol", ["aodv", "dsr"])
class TestMobilityStress:
    def test_extreme_mobility(self, protocol):
        trace = run_scenario(
            small_config(protocol=protocol, seed=9, duration=150.0, max_speed=40.0,
                         pause_time=0.5)
        )
        # Constant link churn: repairs/removals must be happening.
        removals = sum(
            s.route_event_count(kind=1) for s in trace.recorder.nodes  # REMOVAL
        )
        assert removals > 0
        assert trace.data_delivered > 0

    def test_static_network_has_less_route_churn(self, protocol):
        """A near-static network (possibly partitioned — sparse random
        placement often is) repairs far fewer routes than a fast one."""
        static = run_scenario(
            small_config(protocol=protocol, seed=9, duration=150.0, max_speed=0.5,
                         pause_time=1000.0)
        )
        mobile = run_scenario(
            small_config(protocol=protocol, seed=9, duration=150.0, max_speed=40.0,
                         pause_time=0.5)
        )
        churn = lambda tr: sum(
            s.route_event_count(kind=1) for s in tr.recorder.nodes  # REMOVAL
        )
        assert static.data_delivered > 0
        assert churn(static) <= churn(mobile)


class TestDenseLoad:
    def test_many_connections_congest_but_complete(self):
        trace = run_scenario(
            ScenarioConfig(n_nodes=10, duration=150.0, max_connections=90,
                           seed=10, traffic_seed=2)
        )
        assert trace.data_originated > 200
        assert trace.data_delivered > 0

    def test_trace_log_consistency_under_load(self):
        trace = run_scenario(
            ScenarioConfig(n_nodes=10, duration=150.0, max_connections=60,
                           seed=11, traffic_seed=2)
        )
        total_sent = sum(
            s.packet_count(PacketType.DATA, Direction.SENT)
            for s in trace.recorder.nodes
        )
        total_recv = sum(
            s.packet_count(PacketType.DATA, Direction.RECEIVED)
            for s in trace.recorder.nodes
        )
        # Counter cross-checks: the recorder agrees with the node counters,
        # and nothing is received that was never sent.
        assert total_sent == trace.data_originated
        assert total_recv == trace.data_delivered
        assert total_recv <= total_sent

    def test_all_packet_streams_time_ordered(self):
        trace = run_scenario(small_config(seed=12, duration=100.0))
        for stats in trace.recorder.nodes:
            for times in stats.packet_times.values():
                assert all(a <= b for a, b in zip(times, times[1:]))
            for times in stats.route_times.values():
                assert all(a <= b for a, b in zip(times, times[1:]))
