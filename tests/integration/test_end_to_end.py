"""End-to-end integration: simulate -> extract -> train -> detect.

Small-scale versions of the paper's pipeline, asserting the *direction*
of every effect (scores drop under attack, attacks damage delivery,
detectors beat chance) rather than absolute magnitudes, which need the
benchmark-scale runs.
"""

import numpy as np
import pytest

from repro import CLASSIFIERS, CrossFeatureDetector, extract_features, run_scenario
from repro.attacks import BlackholeAttack, PacketDroppingAttack, UpdateStormAttack
from repro.attacks.dropping import DropMode
from repro.features.extraction import FeatureDataset
from repro.simulation.scenario import ScenarioConfig

N_NODES = 12
DURATION = 400.0
ATTACKER = N_NODES - 1


def config(protocol, seed):
    return ScenarioConfig(
        protocol=protocol, transport="udp", n_nodes=N_NODES, duration=DURATION,
        max_connections=40, seed=seed, traffic_seed=5,
    )


def features(protocol, seed, attacks=()):
    trace = run_scenario(config(protocol, seed), attacks=list(attacks))
    return extract_features(trace, monitor=0, warmup=50.0,
                            label_policy="post_attack")


@pytest.fixture(scope="module", params=["aodv", "dsr", "olsr"])
def protocol(request):
    return request.param


@pytest.fixture(scope="module")
def detector(protocol):
    train = FeatureDataset.concat([features(protocol, 11), features(protocol, 12)])
    calib = features(protocol, 13)
    det = CrossFeatureDetector(
        classifier_factory=CLASSIFIERS["c45"],
        method="calibrated_probability",
        false_alarm_rate=0.05,
    )
    det.fit(train.X, feature_names=train.feature_names, calibration_X=calib.X)
    return det


class TestBlackholeEndToEnd:
    @pytest.fixture(scope="class")
    def attacked(self, protocol):
        attack = BlackholeAttack(attacker=ATTACKER, sessions=[(100.0, DURATION)])
        ds = features(protocol, 31, [attack])
        return ds, attack

    def test_attack_did_damage(self, attacked):
        _, attack = attacked
        assert attack.absorbed > 10
        assert attack.adverts_sent > 10

    def test_scores_drop_after_attack(self, detector, attacked):
        ds, _ = attacked
        scores = detector.score(ds.X)
        pre = scores[ds.times <= 100.0]
        post = scores[ds.times > 150.0]
        assert post.mean() < pre.mean()

    def test_alarm_rate_rises_under_attack(self, detector, attacked, protocol):
        ds, _ = attacked
        alarms = detector.predict(ds.X)
        normal_ds = features(protocol, 22)
        base_rate = detector.predict(normal_ds.X).mean()
        attack_rate = alarms[ds.times > 150.0].mean()
        assert attack_rate > base_rate


class TestDetectorGeneralisesAcrossAttacks:
    """Trained on normal data only, the detector flags attack types it
    has never seen (the anomaly-detection premise of the paper)."""

    @pytest.mark.parametrize("make_attack", [
        lambda: BlackholeAttack(attacker=ATTACKER, sessions=[(100.0, DURATION)]),
        lambda: PacketDroppingAttack(attacker=ATTACKER, sessions=[(100.0, DURATION)],
                                     mode=DropMode.CONSTANT),
        lambda: UpdateStormAttack(attacker=ATTACKER, sessions=[(100.0, DURATION)],
                                  rate=25.0),
    ], ids=["blackhole", "dropping", "storm"])
    def test_attack_windows_score_below_normal(self, detector, protocol, make_attack):
        ds = features(protocol, 33, [make_attack()])
        scores = detector.score(ds.X)
        normal_ds = features(protocol, 22)
        normal_scores = detector.score(normal_ds.X)
        post = scores[ds.times > 150.0]
        # Direction only: attacked windows average below fresh normal ones.
        assert post.mean() < normal_scores.mean() + 0.05


class TestRegressionVariantEndToEnd:
    def test_regression_model_on_manet_features(self, protocol):
        from repro.core.regression import RegressionCrossFeatureModel
        from repro.core.threshold import select_threshold

        train = FeatureDataset.concat([features(protocol, 11), features(protocol, 12)])
        model = RegressionCrossFeatureModel().fit(train.X)
        calib_scores = model.normality_score(features(protocol, 13).X)
        thr = select_threshold(calib_scores, 0.05)

        attack = BlackholeAttack(attacker=ATTACKER, sessions=[(100.0, DURATION)])
        abnormal = features(protocol, 31, [attack])
        post = model.normality_score(abnormal.X)[abnormal.times > 150.0]
        fresh_normal = model.normality_score(features(protocol, 22).X)
        # Direction: attacked windows deviate at least as much as fresh
        # normal windows do (scores are negated mean log distances).
        assert post.mean() <= fresh_normal.mean() + 0.05
        assert (post < thr).mean() >= (fresh_normal < thr).mean() - 0.1
