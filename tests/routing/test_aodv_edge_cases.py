"""AODV edge cases: buffering, TTL, discovery retries, RREQ dedup."""

import pytest

from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.stats import RouteEventKind

from tests.routing.helpers import Net, line, received_count, sent_count


class TestBuffering:
    def test_packets_buffered_during_discovery_all_delivered(self):
        net = line(3)
        for _ in range(5):
            net.send(0, 2)  # all sent before any route exists
        net.run(10.0)
        assert net.delivered(2) == 5

    def test_buffer_overflow_drops_oldest(self):
        net = Net([(0, 0), (200, 0), (10_000, 0)])  # dest unreachable
        proto = net.protocols[0]
        for _ in range(proto._buffer.max_per_dest + 10):
            net.send(0, 2)
        net.run(20.0)
        drops = net.stats(0).packet_count(PacketType.DATA, Direction.DROPPED)
        assert drops == proto._buffer.max_per_dest + 10


class TestDiscoveryRetries:
    def test_retries_then_gives_up(self):
        net = Net([(0, 0), (10_000, 0)])
        net.send(0, 1)
        net.run(30.0)
        # Initial attempt + rreq_retries retries.
        expected = 1 + net.protocols[0].rreq_retries
        assert sent_count(net, 0, PacketType.RREQ) == expected

    def test_failed_discovery_announces_unreachable(self):
        net = Net([(0, 0), (200, 0), (10_000, 0)])
        net.send(0, 2)
        net.run(30.0)
        assert sent_count(net, 0, PacketType.RERR) >= 1

    def test_no_duplicate_discovery_for_same_dest(self):
        net = line(3)
        net.send(0, 2)
        net.send(0, 2)  # while the first discovery is pending
        net.run(0.1)
        assert sent_count(net, 0, PacketType.RREQ) == 1


class TestDedupAndTtl:
    def test_rreq_processed_once_per_id(self):
        net = line(3)
        net.send(0, 2)
        net.run(10.0)
        # Node 1 hears node 0's RREQ and possibly echoes of its own
        # rebroadcast, but forwards each discovery only once.
        assert net.stats(1).packet_count(PacketType.RREQ, Direction.FORWARDED) <= \
            sent_count(net, 0, PacketType.RREQ)

    def test_data_ttl_expiry_dropped(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)  # routes established
        packet = Packet(ptype=PacketType.DATA, origin=0, dest=2, ttl=1)
        # Inject at node 1 with ttl about to expire.
        net.protocols[1].handle_packet(packet, from_id=0)
        net.run(1.0)
        assert net.stats(1).packet_count(PacketType.DATA, Direction.DROPPED) >= 1

    @pytest.mark.parametrize("routing_fast", [False, True])
    def test_seen_rreq_cache_pruned(self, routing_fast):
        """Both seen stores forget ancient entries once >512 accumulate."""
        net = line(2, routing_fast=routing_fast)
        proto = net.protocols[0]
        for i in range(600):
            proto._seen_mark(99, i, -1.0)  # strictly older than any purge horizon
        assert proto._seen_size() == 600
        assert proto._seen_has(99, 0)
        # Outlast the 30 s forget horizon, then guarantee one more
        # purge tick fires past it.
        net.run(31.0 + proto.purge_interval)
        assert proto._seen_size() < 600
        assert not proto._seen_has(99, 0)


class TestRouteRefresh:
    def test_active_route_stays_alive_under_traffic(self):
        net = line(3)
        for k in range(20):
            net.send(0, 2)
            net.run(5.0)
        # Steady traffic: the route is refreshed, not rediscovered.
        assert sent_count(net, 0, PacketType.RREQ) <= 2
        assert net.delivered(2) == 20

    def test_idle_route_expires(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        proto = net.protocols[0]
        assert proto._valid_route(2) is not None
        net.run(3 * proto.active_route_timeout)
        assert proto._valid_route(2) is None
