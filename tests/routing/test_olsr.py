"""OLSR protocol tests on deterministic static topologies."""

import pytest

from repro.routing.olsr import OlsrProtocol
from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import RouteEventKind

from tests.routing.helpers import Net, line, received_count, sent_count


def olsr_line(n, **kwargs):
    return line(n, protocol="olsr", **kwargs)


def line_net(positions, **kwargs):
    return Net(positions, protocol="olsr", **kwargs)


# The Net helper only knows aodv/dsr; extend it inline.
def make(positions_or_n, **kwargs):
    if isinstance(positions_or_n, int):
        positions = [(i * 200.0, 0.0) for i in range(positions_or_n)]
    else:
        positions = positions_or_n
    net = Net.__new__(Net)
    from repro.simulation.engine import Simulator
    from repro.simulation.medium import WirelessMedium
    from repro.simulation.mobility import StaticMobility
    from repro.simulation.node import Node
    from repro.simulation.stats import TraceRecorder

    net.sim = Simulator(seed=kwargs.get("seed", 0))
    net.mobility = StaticMobility(list(positions))
    net.medium = WirelessMedium(net.sim, net.mobility, tx_range=250.0)
    net.recorder = TraceRecorder(len(positions))
    net.nodes = [Node(i, net.sim, net.medium, net.recorder[i])
                 for i in range(len(positions))]
    net.protocols = [OlsrProtocol(node) for node in net.nodes]
    return net


CONVERGENCE = 20.0  # a few hello/tc rounds


class TestNeighborSensing:
    def test_hellos_flow_periodically(self):
        net = make(2)
        net.run(CONVERGENCE)
        assert sent_count(net, 0, PacketType.HELLO) >= 5
        assert received_count(net, 1, PacketType.HELLO) >= 5

    def test_neighbors_discovered(self):
        net = make(3)
        net.run(CONVERGENCE)
        assert set(net.protocols[1].neighbors) == {0, 2}
        assert set(net.protocols[0].neighbors) == {1}

    def test_two_hop_knowledge(self):
        net = make(3)
        net.run(CONVERGENCE)
        their, _ = net.protocols[0].two_hop[1]
        assert 2 in their

    def test_neighbor_expires_after_silence(self):
        net = make(2)
        net.run(CONVERGENCE)
        assert 1 in net.protocols[0].neighbors
        net.mobility.move(1, (5000.0, 0.0))
        net.run(3 * net.protocols[0].neighbor_hold)
        assert 1 not in net.protocols[0].neighbors


class TestMprAndTc:
    def test_middle_node_is_mpr_on_a_chain(self):
        net = make(3)
        net.run(CONVERGENCE)
        # 0 needs 1 to reach 2: node 1 must be 0's MPR.
        assert 1 in net.protocols[0].mpr_set
        assert 0 in net.protocols[1].mpr_selectors

    def test_tc_messages_flood(self):
        net = make(4)
        net.run(CONVERGENCE)
        assert sent_count(net, 1, PacketType.TC) >= 1
        assert received_count(net, 3, PacketType.TC) >= 1

    def test_topology_learned_from_tc(self):
        net = make(4)
        net.run(CONVERGENCE)
        # Node 0 learns remote links from TC floods.
        assert any(adv in (1, 2) for (adv, _) in net.protocols[0].topology)

    def test_no_tc_without_selectors(self):
        net = make(2)  # no 2-hop neighborhood: nobody needs MPRs
        net.run(CONVERGENCE)
        assert sent_count(net, 0, PacketType.TC) == 0


class TestRouting:
    def test_proactive_routes_exist_before_data(self):
        net = make(4)
        net.run(CONVERGENCE)
        assert net.protocols[0].routes.get(3) == (1, 3)

    def test_multi_hop_delivery(self):
        net = make(4)
        net.run(CONVERGENCE)
        net.send(0, 3)
        net.run(5.0)
        assert net.delivered(3) == 1
        assert net.stats(1).packet_count(PacketType.DATA, Direction.FORWARDED) == 1

    def test_data_before_convergence_dropped_not_buffered(self):
        net = make(3)
        net.send(0, 2)  # t=0: no routes yet
        net.run(1.0)
        assert net.delivered(2) == 0
        assert net.stats(0).packet_count(PacketType.DATA, Direction.DROPPED) == 1

    def test_route_events_logged(self):
        net = make(4)
        net.run(CONVERGENCE)
        assert net.stats(0).route_event_count(RouteEventKind.ADD) >= 3
        net.send(0, 3)
        net.run(2.0)
        assert net.stats(0).route_event_count(RouteEventKind.FIND) >= 1

    def test_topology_change_updates_routes(self):
        net = make(4)
        net.run(CONVERGENCE)
        assert 3 in net.protocols[0].routes
        net.mobility.move(3, (5000.0, 0.0))
        net.run(3 * net.protocols[0].topology_hold)
        assert 3 not in net.protocols[0].routes
        assert net.stats(0).route_event_count(RouteEventKind.REMOVAL) >= 1


class TestForgedTc:
    def test_forged_tc_bends_routes_to_attacker(self):
        # Line 0-1-2-3-4: attacker at 1 claims 4 is its selector.
        net = make(5)
        net.run(CONVERGENCE)
        assert net.protocols[0].routes[4][1] == 4  # true distance
        advert = net.protocols[1].forge_tc_advert([4])
        net.nodes[1].broadcast(advert)
        net.run(2.0)
        # Node 0 now believes 4 is adjacent to 1: distance collapses to 2.
        assert net.protocols[0].routes[4] == (1, 2)

    def test_forged_topology_expires_and_self_heals(self):
        """Contrast with AODV: no sequence numbers, the poison ages out."""
        net = make(5)
        net.run(CONVERGENCE)
        advert = net.protocols[1].forge_tc_advert([4])
        net.nodes[1].broadcast(advert)
        net.run(2.0)
        assert net.protocols[0].routes[4] == (1, 2)
        net.run(2 * net.protocols[0].topology_hold)
        assert net.protocols[0].routes[4][1] == 4  # healed
