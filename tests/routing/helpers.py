"""Shared harness for routing-protocol unit tests.

Builds small static topologies (no mobility) so route discovery, data
forwarding, maintenance and attacks can be asserted deterministically.
"""

from __future__ import annotations

from repro.routing.aodv import AodvProtocol
from repro.routing.dsr import DsrProtocol
from repro.simulation.engine import Simulator
from repro.simulation.medium import WirelessMedium
from repro.simulation.mobility import StaticMobility
from repro.simulation.node import Node
from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import TraceRecorder


class Net:
    """A static test network with one routing protocol on every node."""

    def __init__(self, positions, protocol="aodv", tx_range=250.0, seed=0, **proto_kwargs):
        self.sim = Simulator(seed=seed)
        self.mobility = StaticMobility(list(positions))
        self.medium = WirelessMedium(self.sim, self.mobility, tx_range=tx_range)
        self.recorder = TraceRecorder(len(positions))
        self.nodes = [
            Node(i, self.sim, self.medium, self.recorder[i])
            for i in range(len(positions))
        ]
        cls = AodvProtocol if protocol == "aodv" else DsrProtocol
        self.protocols = [cls(node, **proto_kwargs) for node in self.nodes]

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def send(self, src: int, dst: int, size: int = 512) -> None:
        self.nodes[src].send_data(dst, size=size)

    def delivered(self, node: int) -> int:
        return self.nodes[node].data_delivered

    def stats(self, node: int):
        return self.recorder[node]


def line(n: int, spacing: float = 200.0, **kwargs) -> Net:
    """A chain 0 - 1 - ... - n-1 where only adjacent nodes are in range."""
    return Net([(i * spacing, 0.0) for i in range(n)], **kwargs)


def sent_count(net: Net, node: int, ptype: PacketType) -> int:
    return net.stats(node).packet_count(ptype, Direction.SENT)


def received_count(net: Net, node: int, ptype: PacketType) -> int:
    return net.stats(node).packet_count(ptype, Direction.RECEIVED)
