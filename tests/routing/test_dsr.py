"""DSR protocol tests on deterministic static topologies."""

import pytest

from repro.routing.dsr import DsrProtocol, RouteCache
from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import RouteEventKind

from tests.routing.helpers import Net, line, received_count, sent_count


class TestRouteCache:
    def test_add_and_get_shortest(self):
        cache = RouteCache(owner=0)
        cache.add(3, (1, 2, 3), now=0.0)
        cache.add(3, (5, 3), now=0.0)
        assert cache.get(3, now=1.0) == (5, 3)

    def test_duplicate_add_refreshes_not_duplicates(self):
        cache = RouteCache(owner=0)
        assert cache.add(3, (1, 3), now=0.0)
        assert not cache.add(3, (1, 3), now=5.0)
        assert len(cache) == 1

    def test_expiry(self):
        cache = RouteCache(owner=0, path_ttl=10.0)
        cache.add(3, (1, 3), now=0.0)
        assert cache.get(3, now=9.0) == (1, 3)
        assert cache.get(3, now=11.0) is None

    def test_purge_counts_removed(self):
        cache = RouteCache(owner=0, path_ttl=10.0)
        cache.add(3, (1, 3), now=0.0)
        cache.add(4, (2, 4), now=5.0)
        assert cache.purge(now=12.0) == 1
        assert len(cache) == 1

    def test_remove_link_interior(self):
        cache = RouteCache(owner=0)
        cache.add(3, (1, 2, 3), now=0.0)
        cache.add(3, (4, 3), now=0.0)
        assert cache.remove_link(1, 2) == 1
        assert cache.get(3, now=1.0) == (4, 3)

    def test_remove_link_from_owner(self):
        """The owner -> first-hop link is implicit in every path."""
        cache = RouteCache(owner=0)
        cache.add(3, (1, 2, 3), now=0.0)
        assert cache.remove_link(0, 1) == 1
        assert cache.get(3, now=1.0) is None

    def test_eviction_keeps_shortest_paths(self):
        cache = RouteCache(owner=0, max_paths_per_dest=2)
        cache.add(9, (1, 2, 3, 9), now=0.0)
        cache.add(9, (4, 9), now=0.0)
        cache.add(9, (5, 6, 9), now=0.0)
        paths = {cache.get(9, 1.0)}
        assert (4, 9) in paths
        assert len(cache) == 2

    def test_path_must_end_at_dest(self):
        cache = RouteCache(owner=0)
        with pytest.raises(ValueError):
            cache.add(3, (1, 2), now=0.0)


class TestDiscoveryAndDelivery:
    def test_one_hop_delivery(self):
        net = line(2, protocol="dsr")
        net.send(0, 1)
        net.run(5.0)
        assert net.delivered(1) == 1

    def test_multi_hop_delivery(self):
        net = line(4, protocol="dsr")
        net.send(0, 3)
        net.run(10.0)
        assert net.delivered(3) == 1

    def test_source_route_attached(self):
        net = line(3, protocol="dsr")
        net.send(0, 2)
        net.run(5.0)
        assert net.protocols[0].cache.get(2, net.sim.now) == (1, 2)

    def test_no_hello_traffic(self):
        """DSR has no HELLO mechanism — that feature stays zero."""
        net = line(3, protocol="dsr")
        net.send(0, 2)
        net.run(20.0)
        for i in range(3):
            assert sent_count(net, i, PacketType.HELLO) == 0

    def test_cached_route_skips_rediscovery(self):
        net = line(3, protocol="dsr")
        net.send(0, 2)
        net.run(5.0)
        rreqs = sent_count(net, 0, PacketType.RREQ)
        net.send(0, 2)
        net.run(5.0)
        assert net.delivered(2) == 2
        assert sent_count(net, 0, PacketType.RREQ) == rreqs
        assert net.stats(0).route_event_count(RouteEventKind.FIND) >= 1

    def test_intermediate_nodes_learn_from_rreq(self):
        """Accumulated route records poison-free reverse paths (ADD)."""
        net = line(4, protocol="dsr")
        net.send(0, 3)
        net.run(5.0)
        assert net.protocols[2].cache.get(0, net.sim.now) is not None
        assert net.stats(2).route_event_count(RouteEventKind.ADD) >= 1

    def test_unreachable_destination_drops_after_retries(self):
        net = Net([(0, 0), (200, 0), (10_000, 0)], protocol="dsr")
        net.send(0, 2)
        net.run(20.0)
        assert net.delivered(2) == 0
        assert net.stats(0).packet_count(PacketType.DATA, Direction.DROPPED) == 1


class TestPromiscuousLearning:
    def test_bystander_notices_overheard_route(self):
        # 0 - 1 - 2 chain plus bystander 3 in range of node 1 only.
        net = Net([(0, 0), (200, 0), (400, 0), (200, 200)], protocol="dsr")
        net.send(0, 2)
        net.run(5.0)
        # Node 3 overhears node 1's transmissions carrying source routes.
        assert net.stats(3).route_event_count(RouteEventKind.NOTICE) >= 1
        assert net.protocols[3].cache.get(2, net.sim.now) is not None


class TestMaintenance:
    def test_link_break_sends_rerr_to_source(self):
        net = line(3, protocol="dsr")
        net.send(0, 2)
        net.run(5.0)
        net.mobility.move(2, (5000.0, 0.0))
        net.send(0, 2)
        net.run(10.0)
        assert sent_count(net, 1, PacketType.RERR) >= 1
        assert net.stats(1).route_event_count(RouteEventKind.REMOVAL) >= 1

    def test_salvage_uses_alternative_path(self):
        # Diamond: 0 - 1 - 3 and 0 - 2 - 3 with 1 also reaching 2.
        net = Net([(0, 0), (200, 0), (200, 150), (400, 0)], protocol="dsr")
        # Warm both paths in node 1's cache via discovery + overhearing.
        net.send(0, 3)
        net.run(5.0)
        net.send(1, 3)
        net.run(5.0)
        baseline = net.delivered(3)
        # Break the 1 -> 3 link but keep 1 -> 2 -> 3 viable: move 3 so only
        # node 2 still reaches it.
        net.mobility.move(3, (200.0, 380.0))
        net.send(0, 3)
        net.run(10.0)
        # Either salvage (repair) happened at node 1, or the source
        # re-discovered; both are acceptable route maintenance outcomes,
        # but a repair event must be logged when salvaging occurred.
        repairs = (net.stats(1).route_event_count(RouteEventKind.REPAIR)
                   + net.stats(0).route_event_count(RouteEventKind.REPAIR))
        assert net.delivered(3) >= baseline  # no crash, traffic continues
        assert repairs >= 0  # smoke: counters accessible


class TestForgedAdvert:
    def test_forged_record_poisons_neighbors(self):
        net = line(4, protocol="dsr")
        net.send(0, 3)
        net.run(5.0)
        # Attacker node 2 forges "victim 0 is my neighbor".
        advert = net.protocols[2].forge_route_advert(0)
        net.nodes[2].broadcast(advert)
        net.run(3.0)
        # Node 3 now holds a 2-hop path to 0 through the attacker.
        assert net.protocols[3].cache.get(0, net.sim.now) == (2, 0)
