"""OLSR edge cases: MPR cover property, TC dedup, link-failure reaction."""

import math
import random

import pytest

from repro.simulation.packet import Direction, PacketType

from tests.routing.test_olsr import CONVERGENCE, make


class TestMprCoverProperty:
    @pytest.mark.parametrize("seed", range(5))
    def test_mprs_cover_entire_two_hop_neighborhood(self, seed):
        """RFC 3626: the MPR set must reach every strict 2-hop neighbor."""
        rng = random.Random(seed)
        positions = [(rng.uniform(0, 600), rng.uniform(0, 600)) for _ in range(8)]
        net = make(positions)
        net.run(CONVERGENCE)
        for proto in net.protocols:
            neighbors = set(proto.neighbors)
            two_hop = set()
            for n, (their, _) in proto.two_hop.items():
                if n in neighbors:
                    two_hop |= their
            strict = two_hop - neighbors - {proto.node_id}
            covered = set()
            for mpr in proto.mpr_set:
                their, _ = proto.two_hop.get(mpr, (frozenset(), 0.0))
                covered |= their
            assert strict <= covered, (proto.node_id, strict - covered)


class TestTcDeduplication:
    def test_duplicate_tc_processed_once(self):
        net = make(4)
        net.run(CONVERGENCE)
        proto = net.protocols[3]
        topo_before = dict(proto.topology)
        forwarded_before = net.stats(3).packet_count(
            PacketType.TC, Direction.FORWARDED
        )
        advert = net.protocols[0].forge_tc_advert([2])
        # Deliver the *same* TC twice.
        proto._handle_tc(advert, from_id=2)
        proto._handle_tc(advert, from_id=2)
        net.run(1.0)
        # Processed once: at most one forwarding burst, single topology entry.
        assert (0, 2) in proto.topology
        assert net.stats(3).packet_count(PacketType.TC, Direction.FORWARDED) <= \
            forwarded_before + 1

    def test_fresh_sequence_processed_again(self):
        net = make(4)
        net.run(CONVERGENCE)
        proto = net.protocols[3]
        a1 = net.protocols[0].forge_tc_advert([2])
        a2 = net.protocols[0].forge_tc_advert([2])
        assert a1.info["tc_seq"] != a2.info["tc_seq"]
        proto._handle_tc(a1, from_id=2)
        expiry_1 = proto.topology[(0, 2)]
        net.run(2.0)
        proto._handle_tc(a2, from_id=2)
        assert proto.topology[(0, 2)] >= expiry_1


class TestLinkFailureReaction:
    def test_mac_feedback_prunes_neighbor_immediately(self):
        net = make(3)
        net.run(CONVERGENCE)
        net.send(0, 2)
        net.run(2.0)
        assert net.delivered(2) == 1
        # Node 1 vanishes; the next data transmission fails at the MAC.
        net.mobility.move(1, (10_000.0, 0.0))
        net.send(0, 2)
        net.run(2.0)
        # Node 0 dropped the neighbor well before the hold time expired.
        assert 1 not in net.protocols[0].neighbors

    def test_failed_forward_logged_as_drop(self):
        net = make(3)
        net.run(CONVERGENCE)
        net.mobility.move(2, (10_000.0, 0.0))
        net.send(0, 2)
        net.run(3.0)
        total_drops = sum(
            net.stats(i).packet_count(PacketType.DATA, Direction.DROPPED)
            for i in range(3)
        )
        assert total_drops >= 1


class TestForgedTcEdgeCases:
    def test_empty_victim_list_is_harmless(self):
        net = make(3)
        net.run(CONVERGENCE)
        advert = net.protocols[0].forge_tc_advert([])
        net.nodes[0].broadcast(advert)
        net.run(2.0)  # nothing to poison, no crash

    def test_tc_about_self_ignored(self):
        net = make(3)
        net.run(CONVERGENCE)
        advert = net.protocols[0].forge_tc_advert([2])
        net.protocols[2]._handle_tc(advert, from_id=1)
        # Node 2 never records a topology edge pointing at itself.
        assert (0, 2) not in net.protocols[2].topology
