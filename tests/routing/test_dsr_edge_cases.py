"""DSR edge cases: buffering, retries, salvage limits, cache hygiene."""

import pytest

from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.stats import RouteEventKind

from tests.routing.helpers import Net, line, sent_count


class TestBuffering:
    def test_packets_buffered_during_discovery_all_delivered(self):
        net = line(3, protocol="dsr")
        for _ in range(5):
            net.send(0, 2)
        net.run(10.0)
        assert net.delivered(2) == 5

    def test_buffer_overflow_drops_oldest(self):
        net = Net([(0, 0), (200, 0), (10_000, 0)], protocol="dsr")
        proto = net.protocols[0]
        for _ in range(proto._buffer.max_per_dest + 10):
            net.send(0, 2)
        net.run(20.0)
        drops = net.stats(0).packet_count(PacketType.DATA, Direction.DROPPED)
        assert drops == proto._buffer.max_per_dest + 10


class TestDiscoveryRetries:
    def test_retries_then_gives_up(self):
        net = Net([(0, 0), (10_000, 0)], protocol="dsr")
        net.send(0, 1)
        net.run(30.0)
        expected = 1 + net.protocols[0].rreq_retries
        assert sent_count(net, 0, PacketType.RREQ) == expected

    def test_no_duplicate_discovery_for_same_dest(self):
        net = line(3, protocol="dsr")
        net.send(0, 2)
        net.send(0, 2)
        net.run(0.1)
        assert sent_count(net, 0, PacketType.RREQ) == 1


class TestSalvageLimits:
    def test_salvage_count_bounded(self):
        """A packet is salvaged at most ``max_salvage`` times."""
        net = line(3, protocol="dsr")
        proto = net.protocols[1]
        packet = Packet(ptype=PacketType.DATA, origin=0, dest=2,
                        info={"sr": [0, 1, 2], "sr_index": 1,
                              "salvaged": proto.max_salvage})
        # Simulate a link failure at node 1 with the salvage budget spent.
        proto.cache.add(2, (2,), net.sim.now)
        proto._on_data_link_fail(packet, next_hop=2)
        net.run(1.0)
        assert net.stats(1).packet_count(PacketType.DATA, Direction.DROPPED) >= 1

    def test_source_rediscovers_when_no_alternative(self):
        net = line(3, protocol="dsr")
        net.send(0, 2)
        net.run(5.0)
        rreqs_before = sent_count(net, 0, PacketType.RREQ)
        net.mobility.move(1, (10_000.0, 0.0))  # relay gone
        net.send(0, 2)
        net.run(10.0)
        assert sent_count(net, 0, PacketType.RREQ) > rreqs_before


class TestCacheHygiene:
    def test_looping_paths_never_cached(self):
        net = line(3, protocol="dsr")
        proto = net.protocols[0]
        proto._learn_path(2, (1, 1, 2), RouteEventKind.ADD)   # duplicate node
        proto._learn_path(2, (0, 1, 2), RouteEventKind.ADD)   # contains self
        assert proto.cache.get(2, net.sim.now) is None

    def test_cache_purge_logs_removals(self):
        net = line(3, protocol="dsr", cache_ttl=5.0)
        net.send(0, 2)
        net.run(4.0)
        assert net.protocols[0].cache.get(2, net.sim.now) is not None
        net.run(20.0)  # idle past the TTL; purge task runs every second
        assert net.protocols[0].cache.get(2, net.sim.now) is None
        assert net.stats(0).route_event_count(RouteEventKind.REMOVAL) >= 1

    @pytest.mark.parametrize("routing_fast", [False, True])
    def test_seen_rreq_cache_pruned(self, routing_fast):
        """Both seen stores forget ancient entries once >512 accumulate."""
        net = line(2, protocol="dsr", routing_fast=routing_fast)
        proto = net.protocols[0]
        for i in range(600):
            proto._seen_mark(99, i, -1.0)
        assert proto._seen_size() == 600
        assert proto._seen_has(99, 0)
        # Outlast the 30 s forget horizon, then guarantee one more
        # purge tick fires past it.
        net.run(31.0 + proto.purge_interval)
        assert proto._seen_size() < 600
        assert not proto._seen_has(99, 0)


class TestGratuitousReplies:
    """Exercised via a directly injected RREQ: in a live network the
    promiscuous cache usually pre-empts the discovery entirely (sources
    overhear routes before they ever need to flood)."""

    @staticmethod
    def _fabricated_rreq(rreq_id):
        from repro.simulation.packet import BROADCAST
        return Packet(
            ptype=PacketType.RREQ, origin=0, dest=BROADCAST, ttl=16,
            info={"rreq_id": rreq_id, "target": 3, "route": [0]},
        )

    def test_cached_intermediate_answers_discovery(self):
        net = line(4, protocol="dsr")
        net.send(1, 3)  # warm node 1's cache with a route to 3
        net.run(5.0)
        assert net.protocols[1].cache.get(3, net.sim.now) is not None
        finds_before = net.stats(1).route_event_count(RouteEventKind.FIND)
        net.protocols[1]._handle_rreq(self._fabricated_rreq(777), from_id=0)
        net.run(2.0)
        assert sent_count(net, 1, PacketType.RREP) >= 1
        assert net.stats(1).route_event_count(RouteEventKind.FIND) > finds_before

    def test_gratuitous_replies_can_be_disabled(self):
        net = line(4, protocol="dsr", gratuitous_replies=False)
        net.send(1, 3)
        net.run(5.0)
        net.protocols[1]._handle_rreq(self._fabricated_rreq(778), from_id=0)
        net.run(2.0)
        # Node 1 relays the discovery instead of answering from cache.
        assert sent_count(net, 1, PacketType.RREP) == 0
        assert net.stats(1).packet_count(PacketType.RREQ, Direction.FORWARDED) >= 1
