"""Tests for shared routing machinery."""

import pytest

from repro.routing.base import PacketBuffer
from repro.simulation.packet import Packet, PacketType


def pkt(dest=1):
    return Packet(ptype=PacketType.DATA, origin=0, dest=dest)


class TestPacketBuffer:
    def test_add_and_pop_all(self):
        buf = PacketBuffer()
        a, b = pkt(), pkt()
        buf.add(1, a)
        buf.add(1, b)
        assert buf.pop_all(1) == [a, b]
        assert buf.pop_all(1) == []

    def test_per_destination_isolation(self):
        buf = PacketBuffer()
        buf.add(1, pkt(1))
        buf.add(2, pkt(2))
        assert buf.pending(1) == 1
        assert buf.pending(2) == 1
        buf.pop_all(1)
        assert buf.pending(2) == 1

    def test_overflow_evicts_oldest(self):
        buf = PacketBuffer(max_per_dest=2)
        a, b, c = pkt(), pkt(), pkt()
        assert buf.add(1, a) is None
        assert buf.add(1, b) is None
        evicted = buf.add(1, c)
        assert evicted is a
        assert buf.pop_all(1) == [b, c]

    def test_len_counts_everything(self):
        buf = PacketBuffer()
        buf.add(1, pkt())
        buf.add(2, pkt())
        buf.add(2, pkt())
        assert len(buf) == 3

    def test_destinations(self):
        buf = PacketBuffer()
        buf.add(3, pkt())
        buf.add(9, pkt())
        assert set(buf.destinations()) == {3, 9}
