"""AODV protocol tests on deterministic static topologies."""

import pytest

from repro.routing.aodv import AODV_MAX_SEQ, AodvProtocol, AodvRouteEntry
from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import RouteEventKind

from tests.routing.helpers import Net, line, received_count, sent_count


class TestRouteEntry:
    def test_higher_seq_is_fresher(self):
        entry = AodvRouteEntry(dest=1, next_hop=2, hops=3, seq=10, expires=100.0)
        assert entry.fresher_than(seq=5, hops=1)
        assert not entry.fresher_than(seq=11, hops=9)

    def test_equal_seq_fewer_hops_wins(self):
        entry = AodvRouteEntry(dest=1, next_hop=2, hops=3, seq=10, expires=100.0)
        assert entry.fresher_than(seq=10, hops=4)
        assert not entry.fresher_than(seq=10, hops=2)

    def test_invalid_entry_still_guards_by_sequence(self):
        """Sequence memory: even an invalid entry rejects stale updates."""
        entry = AodvRouteEntry(dest=1, next_hop=2, hops=3, seq=10, expires=0.0, valid=False)
        assert entry.fresher_than(seq=5, hops=1)
        assert not entry.fresher_than(seq=10, hops=1)  # equal seq revives


class TestDiscoveryAndDelivery:
    def test_one_hop_delivery(self):
        net = line(2)
        net.send(0, 1)
        net.run(5.0)
        assert net.delivered(1) == 1

    def test_multi_hop_delivery(self):
        net = line(4)
        net.send(0, 3)
        net.run(10.0)
        assert net.delivered(3) == 1

    def test_discovery_emits_rreq_and_rrep(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        assert sent_count(net, 0, PacketType.RREQ) >= 1
        assert sent_count(net, 2, PacketType.RREP) >= 1
        assert net.delivered(2) == 1

    def test_intermediate_node_forwards_data(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        assert net.stats(1).packet_count(PacketType.DATA, Direction.FORWARDED) == 1

    def test_second_packet_uses_cached_route(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        rreqs_before = sent_count(net, 0, PacketType.RREQ)
        net.send(0, 2)
        net.run(5.0)
        assert net.delivered(2) == 2
        assert sent_count(net, 0, PacketType.RREQ) == rreqs_before
        assert net.stats(0).route_event_count(RouteEventKind.FIND) >= 1

    def test_route_add_logged_on_discovery(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        assert net.stats(0).route_event_count(RouteEventKind.ADD) >= 1

    def test_unreachable_destination_drops_after_retries(self):
        net = Net([(0, 0), (200, 0), (10_000, 0)])  # node 2 isolated
        net.send(0, 2)
        net.run(20.0)
        assert net.delivered(2) == 0
        assert net.stats(0).packet_count(PacketType.DATA, Direction.DROPPED) == 1

    def test_delivery_to_self(self):
        net = line(2)
        net.send(0, 0)
        net.run(1.0)
        assert net.delivered(0) == 1

    def test_route_length_logged(self):
        net = line(4)
        net.send(0, 3)
        net.run(10.0)
        samples = [hops for _, hops in net.stats(0).route_length_samples]
        assert samples and samples[0] == 3


class TestMaintenance:
    def test_link_break_triggers_repair_and_removal(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        assert net.delivered(2) == 1
        # Break the 1-2 link: node 2 moves away.
        net.mobility.move(2, (5000.0, 0.0))
        net.send(0, 2)
        net.run(15.0)
        assert net.stats(1).route_event_count(RouteEventKind.REMOVAL) >= 1
        assert net.stats(1).route_event_count(RouteEventKind.REPAIR) >= 1

    def test_rerr_emitted_on_break(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        net.mobility.move(2, (5000.0, 0.0))
        net.send(0, 2)
        net.run(15.0)
        assert sent_count(net, 1, PacketType.RERR) >= 1

    def test_stale_routes_expire(self):
        net = line(2, protocol="aodv")
        net.send(0, 1)
        net.run(2.0)
        proto = net.protocols[0]
        assert any(e.valid for e in proto.table.values())
        # HELLOs keep refreshing neighbour liveness but route entries to
        # non-neighbours expire; move node 1 away and wait.
        net.mobility.move(1, (5000.0, 0.0))
        net.run(3 * proto.active_route_timeout)
        assert not any(e.valid for e in proto.table.values())

    def test_hello_messages_flow_between_active_neighbors(self):
        net = line(2)
        net.send(0, 1)
        net.run(10.0)
        assert sent_count(net, 0, PacketType.HELLO) >= 5
        assert received_count(net, 1, PacketType.HELLO) >= 5


class TestSequenceMemory:
    def test_poisoned_max_seq_never_heals(self):
        """The paper's §4.2 observation: a max-sequence route is permanent."""
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        victim_route = net.protocols[0].table[2]
        assert victim_route.seq < AODV_MAX_SEQ

        # Forge a max-seq advert for destination 2 from node 1 (the
        # "attacker" here) and let node 0 process it.
        advert = net.protocols[1].forge_route_advert(2)
        net.nodes[1].broadcast(advert)
        net.run(2.0)
        assert net.protocols[0].table[2].seq == AODV_MAX_SEQ

        # Legitimate updates can never displace it now.
        changed = net.protocols[0]._update_route(2, 2, 1, seq=victim_route.seq + 5)
        assert not changed

    def test_forged_advert_floods_whole_network(self):
        net = line(5)
        # Warm up: some routes exist so nodes process RREQs normally.
        net.send(0, 4)
        net.run(10.0)
        far_rreqs = received_count(net, 3, PacketType.RREQ)
        advert = net.protocols[0].forge_route_advert(4)
        net.nodes[0].broadcast(advert)
        net.run(3.0)
        # The destination-only flag forces propagation across the chain
        # (the victim itself does not relay its "own" request, but every
        # intermediate node does), poisoning distant route tables.
        assert received_count(net, 3, PacketType.RREQ) > far_rreqs
        assert net.protocols[3].table[4].seq == AODV_MAX_SEQ
        assert net.protocols[3].table[4].next_hop == 2  # toward the attacker


class TestDropFilter:
    def test_malicious_node_silently_drops_transit_data(self):
        net = line(3)
        net.send(0, 2)
        net.run(5.0)
        assert net.delivered(2) == 1
        net.nodes[1].drop_filter = lambda packet: True
        net.send(0, 2)
        net.run(5.0)
        assert net.delivered(2) == 1  # second packet absorbed
