"""Property test: the routing fast path is observationally invisible.

Hypothesis drives randomized RREQ flood fan-outs — arbitrary static
topologies, forged origins, duplicate-heavy request ids, short TTLs —
through two otherwise identical stacks:

* **fast** — batched medium delivery (the macro fan-out whose typed
  dispatch rows call the flattened handlers) with ``routing_fast=True``
  (per-origin seen structures + pre-classified duplicate discards);
* **reference** — per-receiver heap delivery with ``routing_fast=False``
  (the verbatim reference handler bodies and the tuple-keyed seen dict).

After the floods (and the protocols' own background HELLO traffic) play
out, the two stacks must agree on

1. **seen-state** — every ``(origin, rreq_id)`` membership answer and the
   total seen count on every node;
2. **stats counters** — the complete per-node packet/route event streams,
   timestamp for timestamp (not just the counts);
3. **rebroadcast order** — the globally merged RREQ ``FORWARDED``
   schedule.  Identical timestamps imply identical order: every
   delivery jitter is drawn from the shared simulator RNG in dispatch
   order, so any reordering would shift every draw after it.

This is the micro-scale complement of the 8-mode scenario matrix in
``tests/simulation/test_trace_equivalence.py``: instead of a handful of
seeded scenarios it samples the space of flood patterns directly, and
shrinks to a minimal counterexample on failure.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.routing.aodv import AodvProtocol
from repro.routing.dsr import DsrProtocol
from repro.simulation.engine import Simulator
from repro.simulation.medium import WirelessMedium
from repro.simulation.mobility import StaticMobility
from repro.simulation.node import Node
from repro.simulation.packet import BROADCAST, Direction, Packet, PacketType
from repro.simulation.stats import TraceRecorder

MAX_NODES = 6
#: Flood ids are drawn tiny on purpose: most generated fan-outs contain
#: duplicates, which is exactly the path the pre-classifier optimizes.
RREQ_IDS = st.integers(min_value=0, max_value=3)
NODE_IDS = st.integers(min_value=0, max_value=MAX_NODES - 1)

positions = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=400.0, allow_nan=False),
    ),
    min_size=3,
    max_size=MAX_NODES,
)

#: One injected flood copy: (sender, forged origin, rreq id, target,
#: ttl, injection delay).  Origins are *not* tied to the sender — forged
#: floods (the impersonation lever) must take the same path either way.
floods = st.lists(
    st.tuples(
        NODE_IDS,
        NODE_IDS,
        RREQ_IDS,
        NODE_IDS,
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


def _build(protocol, places, routing_fast):
    """One full stack; ``routing_fast`` gates both kill switches at once."""
    sim = Simulator(seed=7)
    mobility = StaticMobility(list(places))
    medium = WirelessMedium(
        sim, mobility, tx_range=250.0, event_batch=routing_fast
    )
    recorder = TraceRecorder(len(places))
    nodes = [Node(i, sim, medium, recorder[i]) for i in range(len(places))]
    cls = AodvProtocol if protocol == "aodv" else DsrProtocol
    protocols = [cls(node, routing_fast=routing_fast) for node in nodes]
    return sim, nodes, protocols, recorder


def _make_rreq(protocol, origin, rreq_id, target, ttl):
    if protocol == "aodv":
        info = {
            "rreq_id": rreq_id,
            "origin_seq": 1,
            "target": target,
            "target_seq": 0,
        }
    else:
        info = {"rreq_id": rreq_id, "target": target, "route": [origin]}
    return Packet(
        ptype=PacketType.RREQ, origin=origin, dest=BROADCAST,
        size=48, ttl=ttl, info=info,
    )


def _run_floods(protocol, places, plan, routing_fast):
    sim, nodes, protocols, recorder = _build(protocol, places, routing_fast)
    for sender, origin, rreq_id, target, ttl, delay in plan:
        packet = _make_rreq(protocol, origin, rreq_id, target, ttl)
        sim.schedule(delay, nodes[sender].broadcast, packet)
    sim.run(until=6.0)
    return protocols, recorder


@pytest.mark.parametrize("protocol", ["aodv", "dsr"])
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(places=positions, plan=floods)
def test_randomized_rreq_fanouts_equivalent(protocol, places, plan):
    n = len(places)
    plan = [
        (s % n, o % n, r, t % n, ttl, delay)
        for s, o, r, t, ttl, delay in plan
    ]
    fast_protos, fast_rec = _run_floods(protocol, places, plan, True)
    ref_protos, ref_rec = _run_floods(protocol, places, plan, False)

    for i in range(n):
        fast, ref = fast_protos[i], ref_protos[i]
        # (1) seen-state: membership answers and totals agree on every
        # node for the whole generated (origin, rreq_id) universe.
        assert fast._seen_size() == ref._seen_size(), f"node {i}"
        for origin in range(n):
            for rreq_id in range(4):
                assert fast._seen_has(origin, rreq_id) == \
                    ref._seen_has(origin, rreq_id), (i, origin, rreq_id)
        # (2) stats: the complete event streams, timestamp for timestamp.
        assert fast_rec[i].packet_times == ref_rec[i].packet_times, f"node {i}"
        assert fast_rec[i].route_times == ref_rec[i].route_times, f"node {i}"

    # (3) rebroadcast order: merge every node's RREQ FORWARDED stream
    # into one global (time, node) schedule and compare.
    def schedule(recorder):
        merged = []
        for i in range(n):
            merged.extend(
                (t, i)
                for t in recorder[i].packet_times[
                    (PacketType.RREQ, Direction.FORWARDED)
                ]
            )
        return sorted(merged)

    assert schedule(fast_rec) == schedule(ref_rec)
