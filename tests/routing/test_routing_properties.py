"""Property-based routing tests: invariants over random static topologies.

For arbitrary connected placements and traffic patterns, the protocols
must preserve trace-accounting invariants: nothing is delivered that was
not sent, per-node streams stay time-ordered, and on a connected static
topology (no mobility, no loss) every destination is eventually reached.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.simulation.packet import Direction, PacketType

from tests.routing.helpers import Net

RANGE = 250.0


def connected(positions):
    """Is the unit-disc graph over ``positions`` connected?"""
    n = len(positions)
    seen = {0}
    frontier = [0]
    while frontier:
        i = frontier.pop()
        xi, yi = positions[i]
        for j in range(n):
            if j in seen:
                continue
            xj, yj = positions[j]
            if math.hypot(xj - xi, yj - yi) <= RANGE:
                seen.add(j)
                frontier.append(j)
    return len(seen) == n


@st.composite
def connected_topology(draw):
    """3-7 nodes placed randomly, filtered to connected layouts."""
    n = draw(st.integers(3, 7))
    positions = [
        (draw(st.floats(0, 700, allow_nan=False)),
         draw(st.floats(0, 700, allow_nan=False)))
        for _ in range(n)
    ]
    if not connected(positions):
        # Collapse toward a line to guarantee connectivity.
        positions = [(i * 150.0, 0.0) for i in range(n)]
    return positions


@st.composite
def traffic_pattern(draw):
    positions = draw(connected_topology())
    n = len(positions)
    n_flows = draw(st.integers(1, 5))
    flows = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(n_flows)
    ]
    flows = [(s, d) for s, d in flows if s != d]
    return positions, flows


@pytest.mark.parametrize("protocol", ["aodv", "dsr"])
class TestRoutingInvariants:
    @given(data=traffic_pattern())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_conservation_and_ordering(self, protocol, data):
        positions, flows = data
        net = Net(positions, protocol=protocol)
        for src, dst in flows:
            net.send(src, dst)
        net.run(30.0)

        total_sent = sum(
            net.stats(i).packet_count(PacketType.DATA, Direction.SENT)
            for i in range(len(positions))
        )
        total_received = sum(
            net.stats(i).packet_count(PacketType.DATA, Direction.RECEIVED)
            for i in range(len(positions))
        )
        # Conservation: nothing delivered that was never sent.
        assert total_received <= total_sent
        assert total_sent == len(flows)

        # Every per-node stream is time-ordered.
        for i in range(len(positions)):
            for times in net.stats(i).packet_times.values():
                assert all(a <= b for a, b in zip(times, times[1:]))

    @given(data=traffic_pattern())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_connected_static_topology_delivers_everything(self, protocol, data):
        positions, flows = data
        net = Net(positions, protocol=protocol)
        for src, dst in flows:
            net.send(src, dst)
        net.run(60.0)
        delivered = sum(net.delivered(i) for i in range(len(positions)))
        assert delivered == len(flows)

    @given(data=traffic_pattern())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_route_lengths_are_feasible(self, protocol, data):
        """Every used route (at sources *and* relays) is a plausible
        path length for the topology: at least one hop, at most the node
        count minus one."""
        positions, flows = data
        n = len(positions)
        net = Net(positions, protocol=protocol)
        for src, dst in flows:
            net.send(src, dst)
        net.run(60.0)
        for i in range(n):
            for _, hops in net.stats(i).route_length_samples:
                assert 1 <= hops <= n - 1
