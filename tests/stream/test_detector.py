"""Unit tests for the online detector's alarm and result semantics."""

import numpy as np
import pytest

from repro.core.model import CrossFeatureDetector
from repro.stream import OnlineDetector, StreamingExtractor
from repro.stream.extractor import WindowRow


class ScoreByFirstFeature:
    """Stand-in model: the normality score is the row's first feature."""

    discretizer = object()  # "fitted" marker checked by OnlineDetector

    def normality_score(self, X, method):
        assert X.shape[0] == 1
        return np.array([float(X[0, 0])])


def row(index, time, value):
    return WindowRow(
        index=index, time=time, monitor=0,
        features=np.array([value, 0.0]),
    )


class TestOnlineDetector:
    def test_alarm_fires_strictly_below_threshold(self):
        det = OnlineDetector(ScoreByFirstFeature(), threshold=0.5)
        assert det.consume(row(0, 5.0, 0.9)) is None
        assert det.consume(row(1, 10.0, 0.5)) is None  # at threshold: no alarm
        alarm = det.consume(row(2, 15.0, 0.2))
        assert alarm is not None
        assert alarm.index == 2 and alarm.time == 15.0
        assert alarm.score == 0.2 and alarm.threshold == 0.5
        assert alarm.latency_s >= 0.0
        assert det.windows == 3 and len(det.alarms) == 1

    def test_on_alarm_callback(self):
        fired = []
        det = OnlineDetector(
            ScoreByFirstFeature(), threshold=0.5, on_alarm=fired.append
        )
        det.consume(row(0, 5.0, 0.1))
        det.consume(row(1, 10.0, 0.9))
        assert [a.time for a in fired] == [5.0]

    def test_requires_fitted_model(self):
        class Unfitted:
            discretizer = None

        with pytest.raises(ValueError):
            OnlineDetector(Unfitted(), threshold=0.5)
        with pytest.raises(ValueError):
            OnlineDetector.from_detector(CrossFeatureDetector())

    def test_result_freezes_run(self):
        det = OnlineDetector(ScoreByFirstFeature(), threshold=0.5, monitor=3)
        for i, v in enumerate([0.9, 0.1, 0.8]):
            det.consume(row(i, 5.0 * (i + 1), v))
        labels = np.array([False, True, False])
        result = det.result(labels=labels, elapsed_s=2.0)
        assert result.monitor == 3 and result.windows == 3
        assert np.array_equal(result.scores, [0.9, 0.1, 0.8])
        assert np.array_equal(result.times, [5.0, 10.0, 15.0])
        assert np.array_equal(result.labels, labels)
        assert result.windows_per_second == pytest.approx(1.5)
        assert result.max_latency_s >= result.mean_latency_s > 0.0
        recall, precision = result.recall_precision()
        assert recall == 1.0 and precision == 1.0
        assert "1 alarms" in result.summary()

    def test_recall_precision_requires_intrusions(self):
        det = OnlineDetector(ScoreByFirstFeature(), threshold=0.5)
        det.consume(row(0, 5.0, 0.9))
        result = det.result()  # default labels: all normal
        with pytest.raises(ValueError):
            result.recall_precision()

    def test_empty_run_result(self):
        det = OnlineDetector(ScoreByFirstFeature(), threshold=0.5)
        result = det.result()
        assert result.windows == 0
        assert result.windows_per_second == 0.0
        assert result.mean_latency_s == 0.0

    def test_wires_as_extractor_hook(self):
        det = OnlineDetector(ScoreByFirstFeature(), threshold=1.0)
        tap = StreamingExtractor(
            monitor=0, periods=(5.0,), sampling_period=5.0,
            on_row=det.consume, keep_rows=False,
        )
        tap.on_tick(5.0, speed=0.25)  # first feature = velocity = score
        tap.on_tick(10.0, speed=2.0)
        tap.finish()
        assert det.windows == 2
        assert [a.score for a in det.alarms] == [0.25]
