"""Durable streams: the checkpoint format and the kill-anywhere contract.

Two layers of guarantees are drilled here:

* the **file format** — versioned, kind-tagged, SHA-256-fingerprinted;
  every damaged-file shape (bad magic, truncated header, foreign
  version, wrong kind, corrupted or truncated body) fails a restore
  loudly with a :class:`CheckpointError`, never silently restoring
  wrong state;
* the **resume contract** — a run killed after *any* tick (Hypothesis
  picks the kill point), restored from its latest checkpoint and
  replayed to completion produces scores / alarms / fused verdicts
  ``np.array_equal`` to the uninterrupted run, for single streams and
  for fleets with injected chaos.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.stream import (
    CheckpointError,
    FleetDetector,
    OnlineDetector,
    StreamFaultPlan,
    extractor_for_config,
    load_fleet_checkpoint,
    load_stream_checkpoint,
    read_checkpoint,
    save_stream_checkpoint,
    write_checkpoint,
)
from repro.stream.durability import (
    CHECKPOINT_VERSION,
    MAGIC,
    run_durable_fleet,
    run_durable_stream,
)
from repro.stream.faults import apply_checkpoint_fault


class BatchScoreByFirstFeature:
    """Stand-in model: score = first feature (batch-capable, stateless)."""

    discretizer = object()  # "fitted" marker checked by the detectors

    def normality_score(self, X, method):
        return X[:, 0].astype(float)


MODEL = BatchScoreByFirstFeature()


@pytest.fixture(scope="module")
def trace(request):
    return request.getfixturevalue("aodv_udp_trace")


@pytest.fixture(scope="module")
def threshold(trace):
    """Median first-feature score: roughly half the windows alarm."""
    online = OnlineDetector(MODEL, threshold=float("-inf"))
    tap = extractor_for_config(trace.config, on_row=online.consume,
                               keep_rows=False)
    run_durable_stream(trace, tap, online)
    return float(np.median(online.scores))


def stream_run(trace, threshold, **kwargs):
    """One durable single-stream run; returns (detector, position, finished)."""
    online = OnlineDetector(MODEL, threshold)
    tap = extractor_for_config(trace.config, on_row=online.consume,
                               keep_rows=False)
    position, finished = run_durable_stream(trace, tap, online, **kwargs)
    return online, position, finished


# ----------------------------------------------------------------------
# File format
# ----------------------------------------------------------------------
class TestCheckpointFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        body = {"position": 7, "blob": np.arange(5.0)}
        write_checkpoint(path, "stream", body)
        loaded = read_checkpoint(path, "stream")
        assert loaded["position"] == 7
        assert np.array_equal(loaded["blob"], body["blob"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "absent.ckpt", "stream")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint(path, "stream")

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(MAGIC + b'{"version"')
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path, "stream")

    def test_foreign_version(self, tmp_path):
        path = tmp_path / "c.ckpt"
        header = (
            '{"version": %d, "kind": "stream", "fingerprint": "0"}'
            % (CHECKPOINT_VERSION + 1)
        )
        path.write_bytes(MAGIC + header.encode() + b"\nbody")
        with pytest.raises(CheckpointError, match="format version"):
            read_checkpoint(path, "stream")

    def test_kind_mismatch(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, "stream", {"position": 0})
        with pytest.raises(CheckpointError, match="'stream'.*'fleet'"):
            read_checkpoint(path, "fleet")

    def test_corrupted_body_names_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, "stream", {"position": 3, "x": list(range(64))})
        data = path.read_bytes()
        path.write_bytes(data[:-4] + bytes(b ^ 0xFF for b in data[-4:]))
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            read_checkpoint(path, "stream")

    def test_truncated_body_names_fingerprint_mismatch(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, "stream", {"position": 3, "x": list(range(64))})
        data = path.read_bytes()
        path.write_bytes(data[:-16])
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            read_checkpoint(path, "stream")

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "c.ckpt"
        write_checkpoint(path, "stream", {"position": 1})
        write_checkpoint(path, "stream", {"position": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["c.ckpt"]
        assert read_checkpoint(path, "stream")["position"] == 2


# ----------------------------------------------------------------------
# Single-stream resume
# ----------------------------------------------------------------------
class TestStreamResume:
    def test_kill_and_resume_is_bit_identical(self, trace, threshold, tmp_path):
        clean, _, finished = stream_run(trace, threshold)
        assert finished and clean.windows > 10 and clean.alarms

        ckpt = tmp_path / "s.ckpt"
        _, _, finished = stream_run(
            trace, threshold, checkpoint=ckpt, checkpoint_every=3,
            stop_after_ticks=clean.windows // 2,
        )
        assert not finished and ckpt.exists()

        resumed, _, finished = stream_run(trace, threshold, resume_from=ckpt)
        assert finished
        assert np.array_equal(np.asarray(resumed.scores),
                              np.asarray(clean.scores))
        assert np.array_equal(np.asarray(resumed.times),
                              np.asarray(clean.times))
        assert [(a.index, a.time, a.score) for a in resumed.alarms] == \
               [(a.index, a.time, a.score) for a in clean.alarms]

    @given(kill_at=st.integers(min_value=1, max_value=28))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_kill_anywhere_resumes_bit_identically(
        self, trace, threshold, tmp_path, kill_at
    ):
        """The tentpole property: ANY kill tick resumes to the same run."""
        clean, _, _ = stream_run(trace, threshold)
        ckpt = tmp_path / f"kill{kill_at}.ckpt"
        _, _, finished = stream_run(
            trace, threshold, checkpoint=ckpt, checkpoint_every=2,
            stop_after_ticks=kill_at,
        )
        assert not finished
        if not ckpt.exists():  # killed before the first checkpoint landed
            resumed, _, _ = stream_run(trace, threshold)
        else:
            resumed, _, finished = stream_run(
                trace, threshold, resume_from=ckpt
            )
            assert finished
        assert np.array_equal(np.asarray(resumed.scores),
                              np.asarray(clean.scores))
        assert [a.time for a in resumed.alarms] == \
               [a.time for a in clean.alarms]

    def test_checkpoint_position_resumes_skipping_prefix(
        self, trace, threshold, tmp_path
    ):
        ckpt = tmp_path / "s.ckpt"
        killed, killed_pos, _ = stream_run(
            trace, threshold, checkpoint=ckpt, checkpoint_every=4,
            stop_after_ticks=8,
        )
        online = OnlineDetector(MODEL, threshold)
        tap = extractor_for_config(trace.config, on_row=online.consume,
                                   keep_rows=False)
        position = load_stream_checkpoint(ckpt, tap, online)
        assert 0 < position <= killed_pos
        assert online.scores == killed.scores[: len(online.scores)]

    def test_corrupt_checkpoint_fails_loudly(self, trace, threshold, tmp_path):
        ckpt = tmp_path / "s.ckpt"
        stream_run(trace, threshold, checkpoint=ckpt, checkpoint_every=2,
                   stop_after_ticks=6)
        plan = StreamFaultPlan.parse("ckpt-corrupt:0")
        apply_checkpoint_fault(ckpt, plan.specs[0])
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            stream_run(trace, threshold, resume_from=ckpt)

    def test_truncated_checkpoint_fails_loudly(self, trace, threshold, tmp_path):
        ckpt = tmp_path / "s.ckpt"
        stream_run(trace, threshold, checkpoint=ckpt, checkpoint_every=2,
                   stop_after_ticks=6)
        apply_checkpoint_fault(
            ckpt, StreamFaultPlan.parse("ckpt-truncate:0").specs[0]
        )
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            stream_run(trace, threshold, resume_from=ckpt)

    def test_injected_checkpoint_fault_fires_on_restore_ordinal(
        self, trace, threshold, tmp_path
    ):
        """The driver applies ckpt faults itself (the chaos-bench path)."""
        ckpt = tmp_path / "s.ckpt"
        stream_run(trace, threshold, checkpoint=ckpt, checkpoint_every=2,
                   stop_after_ticks=6)
        with pytest.raises(CheckpointError, match="fingerprint mismatch"):
            stream_run(
                trace, threshold, resume_from=ckpt,
                faults=StreamFaultPlan.parse("ckpt-corrupt:0"),
            )

    def test_checkpoint_every_must_be_positive(self, trace, threshold):
        with pytest.raises(ValueError, match="checkpoint_every"):
            stream_run(trace, threshold, checkpoint_every=0)


# ----------------------------------------------------------------------
# Fleet resume
# ----------------------------------------------------------------------
CHAOS = StreamFaultPlan.parse(
    "crash-lane:s0/n1:4,corrupt-row:s0/n2:3,dup-row:s0/n2:6,drop-row:s0/n3:2"
)


def make_fleet(trace, threshold, faults=None, monitors=(0, 1, 2, 3)):
    fleet = FleetDetector(
        MODEL, threshold, quorum=1, row_policy="quarantine",
        stall_timeout=4 * trace.config.sampling_period, faults=faults,
    )
    for m in monitors:
        fleet.add_stream(m, sampling_period=trace.config.sampling_period)
    return fleet


class TestFleetResume:
    def test_chaos_fleet_kill_and_resume_is_identical(
        self, trace, threshold, tmp_path
    ):
        uninterrupted = make_fleet(trace, threshold, CHAOS)
        _, finished = run_durable_fleet({"s0": trace}, uninterrupted)
        assert finished
        assert uninterrupted.fault_records        # chaos actually landed
        assert uninterrupted.sealed               # the crashed lane was sealed

        ckpt = tmp_path / "f.ckpt"
        killed = make_fleet(trace, threshold, CHAOS)
        _, finished = run_durable_fleet(
            {"s0": trace}, killed, checkpoint=ckpt, checkpoint_every=2,
            stop_after_rounds=8,
        )
        assert not finished and ckpt.exists()

        resumed = make_fleet(trace, threshold, CHAOS)
        _, finished = run_durable_fleet(
            {"s0": trace}, resumed, resume_from=ckpt
        )
        assert finished
        for name, lane in uninterrupted._lanes.items():
            assert np.array_equal(
                np.asarray(resumed._lanes[name].scores),
                np.asarray(lane.scores),
            ), name
        assert [f.time for f in resumed.fused] == \
               [f.time for f in uninterrupted.fused]
        assert resumed.sealed == uninterrupted.sealed
        assert resumed.fault_records == uninterrupted.fault_records

    def test_untouched_lane_matches_fault_free_fleet(self, trace, threshold):
        clean = make_fleet(trace, threshold)
        run_durable_fleet({"s0": trace}, clean)
        chaos = make_fleet(trace, threshold, CHAOS)
        run_durable_fleet({"s0": trace}, chaos)
        assert np.array_equal(
            np.asarray(chaos._lanes["s0/n0"].scores),
            np.asarray(clean._lanes["s0/n0"].scores),
        )

    def test_restore_rejects_mismatched_lanes(self, trace, threshold, tmp_path):
        ckpt = tmp_path / "f.ckpt"
        fleet = make_fleet(trace, threshold)
        run_durable_fleet(
            {"s0": trace}, fleet, checkpoint=ckpt, checkpoint_every=1,
            stop_after_rounds=3,
        )
        other = make_fleet(trace, threshold, monitors=(0, 1))
        with pytest.raises(ValueError, match="registered lanes"):
            load_fleet_checkpoint(ckpt, other)

    def test_stream_checkpoint_rejected_by_fleet_loader(
        self, trace, threshold, tmp_path
    ):
        ckpt = tmp_path / "s.ckpt"
        online = OnlineDetector(MODEL, threshold)
        tap = extractor_for_config(trace.config, on_row=online.consume,
                                   keep_rows=False)
        save_stream_checkpoint(ckpt, 0, tap, online)
        with pytest.raises(CheckpointError, match="'stream'"):
            load_fleet_checkpoint(ckpt, make_fleet(trace, threshold))


# ----------------------------------------------------------------------
# Session wiring: the durable knobs end to end
# ----------------------------------------------------------------------
class TestSessionDurable:
    @pytest.fixture(scope="class")
    def plan(self):
        from repro.eval.experiments import ExperimentPlan

        return ExperimentPlan(
            n_nodes=6, duration=120.0, max_connections=5,
            train_seeds=(1,), calibration_seed=2,
            normal_seeds=(3,), attack_seeds=(4,),
            warmup=20.0, periods=(5.0, 30.0), traffic_seed=7,
        )

    @pytest.fixture(scope="class")
    def session(self):
        from repro.runtime import Session

        return Session(cache=False)

    def test_durable_stream_detect_matches_live(self, plan, session, tmp_path):
        live = session.stream_detect(plan)
        ckpt = tmp_path / "s.ckpt"
        durable = session.stream_detect(plan, checkpoint=ckpt,
                                        checkpoint_every=4)
        assert np.array_equal(durable.scores, live.scores)
        assert np.array_equal(durable.times, live.times)
        assert np.array_equal(durable.labels, live.labels)
        assert [a.time for a in durable.alarms] == [a.time for a in live.alarms]
        assert ckpt.exists()

    def test_stream_detect_resumes_from_checkpoint(self, plan, session, tmp_path):
        from repro.runtime import RuntimeMetrics, Session

        live = session.stream_detect(plan)
        ckpt = tmp_path / "s.ckpt"
        session.stream_detect(plan, checkpoint=ckpt, checkpoint_every=4)
        # The file holds the state at the last checkpointed tick; resuming
        # restores it and replays only the tail — same final verdicts.
        fresh = Session(cache=False, metrics=RuntimeMetrics())
        resumed = fresh.stream_detect(plan, resume_from=ckpt)
        assert np.array_equal(resumed.scores, live.scores)
        assert [a.time for a in resumed.alarms] == [a.time for a in live.alarms]
        assert fresh.metrics.restores == 1

    def test_fleet_detect_survives_injected_chaos(self, plan, session):
        from repro.runtime import RuntimeMetrics, Session

        chaos = Session(cache=False, metrics=RuntimeMetrics())
        result = chaos.fleet_detect(
            plan, monitors=(0, 1, 2),
            row_policy="quarantine",
            stall_timeout=4 * plan.scenario_config(1).sampling_period,
            stream_faults="crash-lane:s0/n1:4,corrupt-row:s0/n2:6",
        )
        # The run completed (no raise) with the damage accounted.
        assert result.n_streams == 3
        assert [f.kind for f in result.fault_records] == ["nan"]
        assert result.sealed.get("s0/n1") in ("stalled", "crashed")
        m = chaos.metrics
        assert m.stream_faults == 1
        assert m.lanes_sealed >= 1
        assert "quarantined" in m.summary() and "sealed" in m.summary()
        # The untouched lane scores exactly as in a fault-free fleet run.
        clean = session.fleet_detect(plan, monitors=(0, 1, 2))
        assert np.array_equal(result.streams["s0/n0"].scores,
                              clean.streams["s0/n0"].scores)
