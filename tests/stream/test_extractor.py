"""Unit tests for the streaming extractor and its ring buffers."""

import numpy as np
import pytest

from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import NodeStats, RouteEventKind
from repro.stream import EventRing, RouteLengthRing, StreamingExtractor


def brute_count(times, tick, period):
    return float(sum(1 for t in times if tick - period < t <= tick))


def brute_iat_std(times, tick, period):
    """The batch `_window_iat_std` semantics, computed the slow way."""
    lo = sum(1 for t in times if t <= tick - period)
    intervals = np.diff(np.asarray(times[lo:], dtype=float))
    if len(intervals) < 2:
        return 0.0
    return float(np.sqrt(np.mean(intervals**2) - np.mean(intervals) ** 2))


class TestEventRing:
    def test_count_and_std_match_reference(self):
        rng = np.random.default_rng(0)
        times = np.cumsum(rng.exponential(0.4, size=400)).tolist()
        ring = EventRing(max_period=15.0)
        pushed = []
        tick = 5.0
        k = 0
        while tick <= times[-1]:
            while k < len(times) and times[k] <= tick:
                ring.push(times[k])
                pushed.append(times[k])
                k += 1
            for period in (5.0, 15.0):
                assert ring.count(tick, period) == brute_count(pushed, tick, period)
                assert ring.iat_std(tick, period) == pytest.approx(
                    brute_iat_std(pushed, tick, period), abs=1e-12
                )
            ring.evict_before(tick)
            tick += 5.0

    def test_eviction_compacts_storage(self):
        ring = EventRing(max_period=5.0)
        for i in range(3000):
            ring.push(i * 0.1)
            if i % 50 == 0:
                ring.evict_before(i * 0.1)
        ring.evict_before(300.0)
        # Compaction keeps the backing list near the live window size.
        assert len(ring._times) - ring._head < 600
        assert len(ring) == 3000

    def test_rejects_time_regression(self):
        ring = EventRing(max_period=5.0)
        ring.push(2.0)
        with pytest.raises(ValueError):
            ring.push(1.0)

    def test_sparse_window_yields_zero_std(self):
        ring = EventRing(max_period=10.0)
        ring.push(1.0)
        ring.push(2.0)  # one interval only
        assert ring.iat_std(5.0, 10.0) == 0.0


class TestRouteLengthRing:
    def test_average_and_carry_forward(self):
        ring = RouteLengthRing(max_period=5.0)
        assert ring.average(5.0, 5.0) == 0.0  # no samples yet -> initial carry
        ring.push(6.0, 2)
        ring.push(7.0, 4)
        assert ring.average(10.0, 5.0) == pytest.approx(3.0)
        ring.evict_before(10.0)
        # Empty window carries the previous average forward.
        assert ring.average(15.0, 5.0) == pytest.approx(3.0)
        ring.push(18.0, 6)
        assert ring.average(20.0, 5.0) == pytest.approx(6.0)

    def test_eviction_preserves_prefix_boundary(self):
        ring = RouteLengthRing(max_period=5.0)
        for i in range(1000):
            ring.push(float(i), i % 7)
            if i % 20 == 0:
                ring.evict_before(float(i))
        window = [i % 7 for i in range(995, 1000)]
        assert ring.average(999.0, 5.0) == pytest.approx(sum(window) / 5.0)


class TestStreamingExtractor:
    def test_validates_constructor_args(self):
        with pytest.raises(ValueError):
            StreamingExtractor(monitor=-1)
        with pytest.raises(ValueError):
            StreamingExtractor(periods=())
        with pytest.raises(ValueError):
            StreamingExtractor(sampling_period=0.0)

    def test_bind_rejects_wrong_node_and_double_bind(self):
        tap = StreamingExtractor(monitor=0)
        with pytest.raises(ValueError):
            tap.bind(NodeStats(node_id=3))
        stats = NodeStats(node_id=0)
        tap.bind(stats)
        with pytest.raises(RuntimeError):
            tap.bind(stats)
        tap.unbind()

    def test_rejected_bind_leaves_no_partial_state(self):
        """Regression: a rejected bind must not subscribe a listener or
        mark the tap bound — it stays cleanly re-bindable."""
        tap = StreamingExtractor(monitor=0)
        wrong = NodeStats(node_id=3)
        with pytest.raises(ValueError):
            tap.bind(wrong)
        assert tap not in wrong._listeners
        right = NodeStats(node_id=0)
        tap.bind(right)  # not blocked by the failed attempt
        assert tap in right._listeners
        tap.unbind()
        assert tap not in right._listeners

    def test_unbind_is_idempotent_and_tolerates_rebuilt_listeners(self):
        tap = StreamingExtractor(monitor=0)
        stats = NodeStats(node_id=0)
        tap.bind(stats)
        stats._listeners.clear()  # e.g. the stats object was re-pickled
        tap.unbind()  # must not raise on the missing listener
        tap.unbind()  # idempotent
        tap.bind(stats)  # and the tap is bindable again
        tap.unbind()

    def test_event_at_tick_time_lands_in_that_window(self):
        tap = StreamingExtractor(monitor=0, periods=(5.0,), sampling_period=5.0)
        tap.on_packet(4.0, PacketType.DATA, Direction.RECEIVED)
        tap.on_tick(5.0, speed=0.0)
        # Same-instant event after the tick callback: still window (0, 5].
        tap.on_packet(5.0, PacketType.DATA, Direction.RECEIVED)
        tap.on_packet(5.5, PacketType.DATA, Direction.RECEIVED)  # closes t=5
        tap.on_tick(10.0, speed=0.0)
        tap.finish()
        names = tap.feature_names
        col = names.index("data_received_5s_count")
        assert tap.rows[0].time == 5.0
        assert tap.rows[0].features[col] == 2.0
        assert tap.rows[1].features[col] == 1.0

    def test_rejects_out_of_order_tick(self):
        tap = StreamingExtractor(monitor=0)
        tap.on_packet(7.0, PacketType.DATA, Direction.RECEIVED)
        with pytest.raises(ValueError):
            tap.on_tick(5.0, speed=0.0)

    def test_rejects_tick_while_pending(self):
        tap = StreamingExtractor(monitor=0)
        tap.on_tick(5.0, speed=0.0)
        with pytest.raises(ValueError):
            tap.on_tick(5.0, speed=0.0)

    def test_warmup_suppresses_rows_but_advances_state(self):
        tap = StreamingExtractor(
            monitor=0, periods=(5.0, 60.0), sampling_period=5.0, warmup=10.0
        )
        for tick in (5.0, 10.0, 15.0):
            tap.on_route_event(tick - 1.0, RouteEventKind.ADD)
            tap.on_tick(tick, speed=1.0)
        tap.finish()
        assert tap.n_windows == 3
        assert [row.time for row in tap.rows] == [10.0, 15.0]
        assert [row.index for row in tap.rows] == [0, 1]
        # The 60 s window still sees the suppressed windows' events.
        col = tap.feature_names.index("route_all_received_60s_count")
        assert tap.rows[-1].features[col] == 0.0  # no traffic pushed
        col_add = tap.feature_names.index("route_add_count")
        assert tap.rows[-1].features[col_add] == 1.0

    def test_on_row_hook_and_keep_rows_off(self):
        seen = []
        tap = StreamingExtractor(
            monitor=0, periods=(5.0,), sampling_period=5.0,
            on_row=seen.append, keep_rows=False,
        )
        tap.on_tick(5.0, speed=2.0)
        tap.finish()
        assert len(seen) == 1 and seen[0].features[0] == 2.0
        with pytest.raises(RuntimeError):
            tap.to_matrix()

    def test_empty_stream_yields_empty_matrix(self):
        tap = StreamingExtractor(monitor=0)
        tap.finish()
        X, times = tap.to_matrix()
        assert X.shape == (0, len(tap.feature_names))
        assert times.shape == (0,)
