"""Attribution riding the stream layer: pure annotation, durable state.

The hard contract: attribution on vs. off (or killed via
``REPRO_ATTRIBUTION=0``) cannot change a score, an alarm, or fused
timing — it only *annotates* alarms with verdicts.  And the verdict
state rides the PR-7 checkpoint machinery bit-identically.
"""

import numpy as np
import pytest

from repro.core.model import CrossFeatureModel
from repro.stream import FleetDetector, OnlineDetector
from repro.stream.extractor import WindowRow

N_FEATURES = 4
NAMES = ["load", "double_load", "load_pow", "noise"]


def correlated_normal(n=300, seed=0):
    rng = np.random.default_rng(seed)
    activity = rng.uniform(0, 10, size=n)
    return np.column_stack([
        activity + rng.normal(0, 0.3, n),
        2 * activity + rng.normal(0, 0.5, n),
        activity ** 1.5 + rng.normal(0, 0.5, n),
        rng.uniform(0, 1, n),
    ])


@pytest.fixture(scope="module")
def model():
    m = CrossFeatureModel()
    m.fit(correlated_normal(), feature_names=NAMES)
    m.calibrate(correlated_normal(seed=1))
    return m


@pytest.fixture(scope="module")
def threshold(model):
    scores = model.normality_score(correlated_normal(seed=2), "avg_probability")
    return float(np.percentile(scores, 25))


def mixed_rows(n=30, seed=3):
    """Windows with intermittent corruption, so some (not all) alarm."""
    rng = np.random.default_rng(seed)
    X = correlated_normal(n=n, seed=seed)
    X[::4, 2] += rng.uniform(1e3, 1e6, size=len(X[::4]))
    return [
        WindowRow(index=k, time=5.0 * (k + 1), monitor=0, features=X[k])
        for k in range(n)
    ]


def run_online(model, threshold, rows, **kw):
    online = OnlineDetector(model, threshold, **kw)
    for row in rows:
        online.consume(row)
    return online


def alarm_keys(alarms):
    return [(a.index, a.time, a.score) for a in alarms]


class TestOnlineBitIdentity:
    def test_scores_and_alarms_identical_on_vs_off(self, model, threshold):
        rows = mixed_rows()
        off = run_online(model, threshold, rows, attribution=False)
        on = run_online(model, threshold, rows, attribution=True)
        assert np.array_equal(np.asarray(on.scores), np.asarray(off.scores))
        assert alarm_keys(on.alarms) == alarm_keys(off.alarms)
        assert on.alarms, "fixture must actually alarm"
        assert all(a.verdict is not None for a in on.alarms)
        assert all(a.verdict is None for a in off.alarms)

    def test_kill_switch_disables_verdicts_without_changing_bits(
        self, model, threshold, monkeypatch
    ):
        rows = mixed_rows()
        on = run_online(model, threshold, rows, attribution=True)
        monkeypatch.setenv("REPRO_ATTRIBUTION", "0")
        killed = run_online(model, threshold, rows, attribution=True)
        assert killed.attribution is None
        assert np.array_equal(np.asarray(killed.scores), np.asarray(on.scores))
        assert alarm_keys(killed.alarms) == alarm_keys(on.alarms)
        assert all(a.verdict is None for a in killed.alarms)

    def test_default_is_off(self, model, threshold):
        online = OnlineDetector(model, threshold)
        assert online.attribution is None


class TestOnlineCheckpoint:
    def test_verdict_state_survives_snapshot_restore(self, model, threshold):
        rows = mixed_rows()
        cut = len(rows) // 2

        live = OnlineDetector(model, threshold, attribution=True)
        for row in rows[:cut]:
            live.consume(row)
        state = live.snapshot()
        assert "attribution" in state

        fresh = OnlineDetector(model, threshold, attribution=True)
        fresh.restore(state)
        assert fresh.attribution.snapshot() == live.attribution.snapshot()
        for row in rows[cut:]:
            a_live = live.consume(row)
            a_fresh = fresh.consume(row)
            assert (a_live is None) == (a_fresh is None)
            if a_live is not None:
                assert a_fresh.verdict == a_live.verdict
        assert fresh.attribution.snapshot() == live.attribution.snapshot()

    def test_tail_replay_matches_uninterrupted_run(self, model, threshold):
        rows = mixed_rows()
        clean = run_online(model, threshold, rows, attribution=True)

        cut = len(rows) // 3
        first = run_online(model, threshold, rows[:cut], attribution=True)
        resumed = OnlineDetector(model, threshold, attribution=True)
        resumed.restore(first.snapshot())
        for row in rows[cut:]:
            resumed.consume(row)
        assert np.array_equal(np.asarray(resumed.scores), np.asarray(clean.scores))
        assert [a.verdict for a in resumed.alarms] == [a.verdict for a in clean.alarms]

    def test_pre_attribution_snapshot_still_restores(self, model, threshold):
        """A checkpoint written before this PR has no attribution key;
        restoring it into an attribution-enabled detector must work."""
        rows = mixed_rows()
        plain = run_online(model, threshold, rows[:10], attribution=False)
        state = plain.snapshot()
        assert "attribution" not in state
        fresh = OnlineDetector(model, threshold, attribution=True)
        fresh.restore(state)  # no KeyError; attributor simply starts empty
        assert fresh.attribution.verdicts == 0


class TestFleetBitIdentity:
    LANES = ("n0", "n1", "n2")

    def drive(self, model, threshold, attribution):
        fleet = FleetDetector(model, threshold, quorum=2,
                              attribution=attribution)
        for lane in self.LANES:
            fleet.attach(lane)
        rows = {lane: mixed_rows(seed=7 + j) for j, lane in enumerate(self.LANES)}
        for k in range(30):
            for lane in self.LANES:
                fleet.ingest(lane, rows[lane][k])
            fleet.seal_all(5.0 * (k + 1))
        fleet.finish()
        return fleet

    def test_lane_scores_alarms_and_fused_timing_identical(self, model, threshold):
        off = self.drive(model, threshold, attribution=False)
        on = self.drive(model, threshold, attribution=True)
        for lane in self.LANES:
            assert np.array_equal(
                np.asarray(on._lanes[lane].scores),
                np.asarray(off._lanes[lane].scores),
            )
            assert alarm_keys(on._lanes[lane].alarms) == \
                alarm_keys(off._lanes[lane].alarms)
        assert [f.time for f in on.fused] == [f.time for f in off.fused]
        assert on.fused, "fixture must produce fused alarms"
        assert all(f.verdict is not None for f in on.fused)
        assert all(f.verdict is None for f in off.fused)

    def test_batched_contributions_match_single_stream_verdicts(
        self, model, threshold
    ):
        """A fleet lane's verdicts (batched contribution path) must equal
        an OnlineDetector's over the same rows (per-row path)."""
        fleet = self.drive(model, threshold, attribution=True)
        rows = mixed_rows(seed=7)
        online = run_online(model, threshold, rows, attribution=True)
        assert [a.verdict for a in fleet._lanes["n0"].alarms] == \
            [a.verdict for a in online.alarms]

    def test_kill_switch_applies_to_fleet(self, model, threshold, monkeypatch):
        monkeypatch.setenv("REPRO_ATTRIBUTION", "0")
        killed = self.drive(model, threshold, attribution=True)
        assert not killed._attributors
        assert all(f.verdict is None for f in killed.fused)

    def test_fused_verdict_votes_over_lanes(self, model, threshold):
        fleet = self.drive(model, threshold, attribution=True)
        fused = fleet.fused[0]
        # The fused verdict's windows sum the voting lanes' windows.
        assert fused.verdict.windows >= len(fused.streams)


class TestFleetCheckpoint:
    def test_attributor_state_rides_lane_snapshots(self, model, threshold):
        fleet = FleetDetector(model, threshold, quorum=2, attribution=True)
        for lane in ("n0", "n1"):
            fleet.attach(lane)
        rows = {lane: mixed_rows(seed=11 + j)
                for j, lane in enumerate(("n0", "n1"))}
        for k in range(12):
            for lane in ("n0", "n1"):
                fleet.ingest(lane, rows[lane][k])
            fleet.seal_all(5.0 * (k + 1))

        state = fleet.snapshot()
        fresh = FleetDetector(model, threshold, quorum=2, attribution=True)
        for lane in ("n0", "n1"):
            fresh.attach(lane)
        fresh.restore(state)
        for lane in ("n0", "n1"):
            assert fresh._attributors[lane].snapshot() == \
                fleet._attributors[lane].snapshot()

        for k in range(12, 30):
            for lane in ("n0", "n1"):
                fleet.ingest(lane, rows[lane][k])
                fresh.ingest(lane, rows[lane][k])
            fleet.seal_all(5.0 * (k + 1))
            fresh.seal_all(5.0 * (k + 1))
        fleet.finish()
        fresh.finish()
        assert [f.verdict for f in fresh.fused] == [f.verdict for f in fleet.fused]
