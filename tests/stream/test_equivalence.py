"""The streaming contract: streamed rows == batch rows, bit for bit.

Every test here asserts exact ``np.array_equal`` equality (no tolerance):
the streaming extractor promises the identical IEEE-754 results as the
batch ``extract_features`` path, and the online detector the identical
scores as the batch ``CrossFeatureDetector.score`` — for all four
protocol/transport scenarios, with and without attacks, live or replayed.
"""

import numpy as np
import pytest

from repro.attacks import (
    BlackholeAttack,
    DropMode,
    PacketDroppingAttack,
    periodic_sessions,
)
from repro.eval.experiments import ExperimentPlan
from repro.features.extraction import extract_features
from repro.runtime import Session
from repro.simulation.scenario import run_scenario
from repro.stream import OnlineDetector, extractor_for_config, replay_trace
from tests.conftest import small_config

SCENARIO_FIXTURES = [
    "aodv_udp_trace",
    "dsr_udp_trace",
    "aodv_tcp_trace",
    "dsr_tcp_trace",
]


def batch_dataset(trace, warmup=0.0):
    return extract_features(trace, monitor=0, warmup=warmup)


class TestReplayEquivalence:
    @pytest.mark.parametrize("fixture", SCENARIO_FIXTURES)
    def test_rows_bit_identical(self, request, fixture):
        trace = request.getfixturevalue(fixture)
        tap = extractor_for_config(trace.config)
        replay_trace(trace, tap)
        X_stream, t_stream = tap.to_matrix()
        ds = batch_dataset(trace)
        assert tap.feature_names == ds.feature_names
        assert np.array_equal(t_stream, ds.times)
        assert np.array_equal(X_stream, ds.X)  # exact, not approx

    @pytest.mark.parametrize("fixture", ["aodv_udp_trace", "dsr_tcp_trace"])
    def test_warmup_suppression_matches_batch_filter(self, request, fixture):
        trace = request.getfixturevalue(fixture)
        tap = extractor_for_config(trace.config, warmup=50.0)
        replay_trace(trace, tap)
        X_stream, t_stream = tap.to_matrix()
        ds = batch_dataset(trace, warmup=50.0)
        assert (t_stream >= 50.0).all()
        assert np.array_equal(t_stream, ds.times)
        assert np.array_equal(X_stream, ds.X)


@pytest.fixture(scope="module")
def attacked_live_run():
    """One live scenario with the paper's mixed attack and a riding tap."""
    config = small_config(seed=31)
    T = config.duration
    attacks = [
        BlackholeAttack(attacker=9, sessions=periodic_sessions(0.25 * T, 0.05 * T, T)),
        PacketDroppingAttack(
            attacker=9,
            sessions=periodic_sessions(0.5 * T, 0.05 * T, T),
            mode=DropMode.CONSTANT,
            destination=0,
        ),
    ]
    tap = extractor_for_config(config)
    trace = run_scenario(config, attacks=attacks, taps=[tap])
    return trace, tap


class TestLiveTapEquivalence:
    def test_live_rows_match_batch(self, attacked_live_run):
        trace, tap = attacked_live_run
        X_live, t_live = tap.to_matrix()
        ds = batch_dataset(trace)
        assert np.array_equal(t_live, ds.times)
        assert np.array_equal(X_live, ds.X)

    def test_replay_matches_live(self, attacked_live_run):
        trace, tap = attacked_live_run
        replayed = extractor_for_config(trace.config)
        replay_trace(trace, replayed)
        X_live, _ = tap.to_matrix()
        X_replay, _ = replayed.to_matrix()
        assert np.array_equal(X_replay, X_live)

    def test_attacked_windows_differ_from_clean(self, attacked_live_run, aodv_udp_trace):
        # Sanity: the attack actually perturbs the streamed features
        # (otherwise the equivalence above would be vacuous).
        trace, tap = attacked_live_run
        X_attacked, _ = tap.to_matrix()
        clean = extractor_for_config(aodv_udp_trace.config)
        replay_trace(aodv_udp_trace, clean)
        X_clean, _ = clean.to_matrix()
        assert X_attacked.shape == X_clean.shape
        assert not np.array_equal(X_attacked, X_clean)


class TestOnlineScoring:
    def test_streamed_scores_match_batch_scores(self, aodv_udp_trace, dsr_udp_trace):
        # Fit directly on the fixture features (fast, no extra simulation).
        from repro.core.model import CrossFeatureDetector

        train = batch_dataset(aodv_udp_trace)
        detector = CrossFeatureDetector(n_jobs=1)
        detector.fit(
            train.X,
            feature_names=train.feature_names,
            calibration_X=batch_dataset(dsr_udp_trace).X,
        )
        online = OnlineDetector.from_detector(detector)
        tap = extractor_for_config(dsr_udp_trace.config, on_row=online.consume)
        replay_trace(dsr_udp_trace, tap)
        batch_scores = detector.score(batch_dataset(dsr_udp_trace).X)
        assert np.array_equal(np.asarray(online.scores), batch_scores)
        # Alarm set == thresholded batch scores.
        alarm_times = {a.time for a in online.alarms}
        expected = {
            float(t)
            for t, s in zip(batch_dataset(dsr_udp_trace).times, batch_scores)
            if s < detector.threshold_
        }
        assert alarm_times == expected


class TestSessionStreamDetect:
    def test_stream_detect_matches_offline_pipeline(self):
        plan = ExperimentPlan(
            n_nodes=10, duration=200.0, max_connections=10,
            train_seeds=(11,), normal_seeds=(21,), attack_seeds=(31,),
            warmup=50.0, traffic_seed=7,
        )
        session = Session(cache=False)
        result = session.stream_detect(plan)
        # Reference: simulate the identical attacked scenario offline and
        # run it through the batch extract + score path.
        config = plan.scenario_config(plan.attack_seeds[0])
        trace = run_scenario(config, attacks=plan.build_attacks())
        ds = extract_features(
            trace,
            monitor=plan.monitor,
            periods=plan.periods,
            warmup=plan.warmup,
            label_policy=plan.label_policy,
        )
        detector = session.fitted_detector(plan)
        assert result.windows == len(ds)
        assert np.array_equal(result.times, ds.times)
        assert np.array_equal(result.labels, ds.labels)
        assert np.array_equal(result.scores, detector.score(ds.X))
        assert result.threshold == detector.threshold_
        assert session.metrics.alarms == len(result.alarms)
