"""Degraded-input policies and stream-layer fault injection.

``row_policy="strict"`` is the pre-existing trust-the-extractor
behaviour; ``"quarantine"`` routes late / duplicate / NaN /
out-of-range rows into typed :class:`StreamFault` records instead of
scoring (or raising), trips a consecutive-fault circuit breaker, and
lets ``stall_timeout`` seal lanes stuck behind the watermark — so a
fleet under chaos *completes*, with the damage accounted, rather than
raising.  The injection side (:class:`StreamFaultPlan` /
:class:`RowFaultInjector`) is deterministic by construction and drilled
here clause by clause.
"""

import numpy as np
import pytest

from repro.stream import (
    DEFAULT_MAX_FAULTS,
    DEFAULT_ROW_POLICY,
    FleetDetector,
    OnlineDetector,
    StreamFault,
    StreamFaultPlan,
    StreamFaultSpec,
    validate_row_policy,
)
from repro.stream.extractor import WindowRow
from repro.stream.faults import RowFaultInjector, corrupt_row


class BatchScoreByFirstFeature:
    discretizer = object()  # "fitted" marker checked by the detectors

    def normality_score(self, X, method):
        return X[:, 0].astype(float)


MODEL = BatchScoreByFirstFeature()


def row(index, time, value=0.9):
    return WindowRow(
        index=index, time=time, monitor=0,
        features=np.array([value, 0.0]),
    )


def nan_row(index, time):
    return WindowRow(
        index=index, time=time, monitor=0,
        features=np.array([np.nan, 0.0]),
    )


# ----------------------------------------------------------------------
# Policy validation
# ----------------------------------------------------------------------
class TestPolicyConfig:
    def test_default_is_strict(self):
        assert DEFAULT_ROW_POLICY == "strict"
        assert validate_row_policy(None) == "strict"
        assert validate_row_policy("quarantine") == "quarantine"

    def test_unknown_policy_rejected_everywhere(self):
        with pytest.raises(ValueError, match="row_policy"):
            validate_row_policy("lenient")
        with pytest.raises(ValueError, match="row_policy"):
            OnlineDetector(MODEL, 0.5, row_policy="lenient")
        with pytest.raises(ValueError, match="row_policy"):
            FleetDetector(MODEL, 0.5, row_policy="lenient")

    def test_stall_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="stall_timeout"):
            FleetDetector(MODEL, 0.5, stall_timeout=0.0)


# ----------------------------------------------------------------------
# Single-stream quarantine
# ----------------------------------------------------------------------
class TestOnlineQuarantine:
    def test_strict_scores_every_row_as_before(self):
        det = OnlineDetector(MODEL, 0.5)  # default strict
        det.consume(row(0, 5.0))
        det.consume(nan_row(1, 10.0))  # strict trusts the extractor
        assert det.windows == 2 and det.quarantined == 0

    def test_nan_row_quarantined_not_scored(self):
        faults = []
        det = OnlineDetector(MODEL, 0.5, row_policy="quarantine",
                             on_fault=faults.append)
        det.consume(row(0, 5.0))
        assert det.consume(nan_row(1, 10.0)) is None
        det.consume(row(2, 15.0))
        assert det.windows == 2 and det.quarantined == 1
        assert faults[0].kind == "nan" and faults[0].index == 1

    def test_late_and_duplicate_rows_quarantined(self):
        det = OnlineDetector(MODEL, 0.5, row_policy="quarantine")
        det.consume(row(0, 5.0))
        det.consume(row(1, 10.0))
        det.consume(row(1, 10.0))   # same index, same time: duplicate
        det.consume(row(2, 7.0))    # time went backwards: late
        assert det.windows == 2
        assert [f.kind for f in det.fault_records] == ["duplicate", "late"]

    def test_out_of_range_rows_quarantined(self):
        det = OnlineDetector(MODEL, 0.5, row_policy="quarantine")
        det.consume(WindowRow(index=0, time=5.0, monitor=0,
                              features=np.array([np.inf, 0.0])))
        det.consume(row(1, -3.0))
        assert det.windows == 0
        assert [f.kind for f in det.fault_records] == \
               ["out_of_range", "out_of_range"]


# ----------------------------------------------------------------------
# Fleet quarantine, breaker, stall and duplicate seals
# ----------------------------------------------------------------------
def fleet_with(n, threshold=0.5, **kwargs):
    fleet = FleetDetector(MODEL, threshold=threshold, **kwargs)
    for s in range(n):
        fleet.attach(f"n{s}")
    return fleet


class TestFleetQuarantine:
    def test_strict_raises_on_late_row(self):
        fleet = fleet_with(2)
        fleet.ingest("n0", row(0, 5.0))
        fleet.ingest("n1", row(0, 5.0))
        fleet.seal_all(6.0)  # watermark strictly past the 5.0 bucket
        with pytest.raises(ValueError, match="finalised"):
            fleet.ingest("n0", row(1, 5.0))

    def test_quarantine_records_late_row_and_continues(self):
        fleet = fleet_with(2, row_policy="quarantine")
        fleet.ingest("n0", row(0, 5.0))
        fleet.ingest("n1", row(0, 5.0))
        fleet.seal_all(6.0)  # watermark strictly past the 5.0 bucket
        fleet.ingest("n0", row(1, 5.0))  # would raise under strict
        fleet.ingest("n0", row(1, 10.0))
        fleet.ingest("n1", row(1, 10.0))
        fleet.finish()
        assert fleet.windows == 4
        assert [f.kind for f in fleet.fault_records] == ["late"]
        assert fleet.fault_records[0].stream == "n0"

    def test_ingest_after_finish_quarantines_instead_of_raising(self):
        fleet = fleet_with(1, row_policy="quarantine")
        fleet.ingest("n0", row(0, 5.0))
        fleet.finish()
        fleet.ingest("n0", row(1, 10.0))  # raises under strict
        assert [f.kind for f in fleet.fault_records] == ["late"]

    def test_consecutive_fault_breaker_seals_lane(self):
        sealed = []
        fleet = fleet_with(
            2, row_policy="quarantine", max_consecutive_faults=3,
            on_seal=lambda name, reason: sealed.append((name, reason)),
        )
        for k in range(4):
            fleet.ingest("n0", nan_row(k, 5.0 * (k + 1)))
        assert sealed == [("n0", "faulted")]
        assert fleet.sealed == {"n0": "faulted"}
        assert len(fleet.fault_records) == 4
        # The healthy lane still finishes the run normally.
        fleet.ingest("n1", row(0, 5.0))
        fleet.finish()
        assert fleet.windows == 1

    def test_clean_row_resets_the_breaker(self):
        fleet = fleet_with(1, row_policy="quarantine",
                           max_consecutive_faults=2)
        for k in range(6):  # alternate bad/good: never 3 consecutive
            fleet.ingest("n0", nan_row(2 * k, 5.0 * (k + 1)))
            fleet.ingest("n0", row(2 * k + 1, 5.0 * (k + 1)))
        assert fleet.sealed == {}
        assert len(fleet.fault_records) == 6

    def test_default_breaker_threshold(self):
        fleet = fleet_with(1, row_policy="quarantine")
        assert fleet.max_consecutive_faults == DEFAULT_MAX_FAULTS

    def test_stalled_lane_sealed_and_watermark_released(self):
        sealed = []
        fleet = fleet_with(
            3, row_policy="quarantine", stall_timeout=10.0,
            on_seal=lambda name, reason: sealed.append((name, reason)),
        )
        for k in range(5):
            t = 5.0 * (k + 1)
            fleet.ingest("n0", row(k, t))
            fleet.ingest("n1", row(k, t))
            if k == 0:
                fleet.ingest("n2", row(k, t))
                fleet.seal_all(t)
            else:  # n2 goes silent after its first tick
                fleet.seal("n0", t)
                fleet.seal("n1", t)
        # n2 froze at 5.0; once the others reach 20.0 the gap exceeds 10.
        assert sealed == [("n2", "stalled")]
        assert fleet.sealed == {"n2": "stalled"}
        fleet.finish()
        # Buckets the dead lane was holding back were finalised.
        assert fleet.windows == 11

    def test_never_started_lane_is_not_stalled(self):
        fleet = fleet_with(2, stall_timeout=5.0)
        for k in range(5):  # n1 never delivers, frontier stays -inf
            fleet.ingest("n0", row(k, 5.0 * (k + 1)))
            fleet.seal("n0", 5.0 * (k + 1))
        assert fleet.sealed == {}

    def test_duplicate_seal_is_counted_noop(self):
        sealed = []
        fleet = fleet_with(
            2, on_seal=lambda name, reason: sealed.append((name, reason))
        )
        fleet.ingest("n0", row(0, 5.0))
        fleet.drop("n1")
        fleet.drop("n1")   # again: no-op, counted
        fleet.seal("n1", 99.0)  # sealing a dropped lane: no-op, counted
        fleet.finish()
        assert fleet.duplicate_seals == 2
        assert sealed == [("n1", "dropped"), ("n1", "duplicate"),
                          ("n1", "duplicate")]
        assert fleet.sealed == {"n1": "dropped"}
        result = fleet.result()
        assert result.duplicate_seals == 2
        assert result.sealed == {"n1": "dropped"}

    def test_quorum_evaluated_over_surviving_reporters(self):
        # 3 lanes, one sealed: a 2-of-reporting fraction quorum must be
        # judged against the 2 survivors, not the original 3.
        fused = []
        fleet = fleet_with(3, quorum=1.0, row_policy="quarantine",
                           on_fused=fused.append)
        fleet.drop("n2")
        for k in range(3):
            t = 5.0 * (k + 1)
            fleet.ingest("n0", row(k, t, value=0.1))  # alarms (score < 0.5)
            fleet.ingest("n1", row(k, t, value=0.1))
            fleet.seal_all(t)
        fleet.finish()
        assert len(fused) == 3
        assert all(f.reporting == 2 and f.needed == 2 for f in fused)

    def test_fault_records_surface_in_result(self):
        fleet = fleet_with(1, row_policy="quarantine")
        fleet.ingest("n0", nan_row(0, 5.0))
        fleet.finish()
        result = fleet.result()
        assert [f.kind for f in result.fault_records] == ["nan"]
        assert isinstance(result.fault_records[0], StreamFault)


# ----------------------------------------------------------------------
# The injection mini-language and injector
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = StreamFaultPlan.parse(
            "drop-row:s0/n1:3, dup-row:*:4,crash-lane:s0/n2:6,ckpt-corrupt:1"
        )
        assert plan.specs == (
            StreamFaultSpec("drop-row", "s0/n1", 3),
            StreamFaultSpec("dup-row", "*", 4),
            StreamFaultSpec("crash-lane", "s0/n2", 6),
            StreamFaultSpec("ckpt-corrupt", "*", 1),
        )
        assert plan and not StreamFaultPlan.parse("")

    @pytest.mark.parametrize("text", [
        "drop-row:3",            # missing lane
        "explode-row:s0/n1:3",   # unknown kind
        "drop-row:s0/n1:x",      # non-integer index
        "ckpt-corrupt:s0/n1:0",  # ckpt faults take no lane
    ])
    def test_malformed_clauses_rejected(self, text):
        with pytest.raises(ValueError):
            StreamFaultPlan.parse(text)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="index"):
            StreamFaultSpec("drop-row", "s0/n1", -1)

    def test_lookups(self):
        plan = StreamFaultPlan.parse(
            "drop-row:a:3,crash-lane:b:5,ckpt-truncate:2"
        )
        assert plan.row_fault("a", 3).kind == "drop-row"
        assert plan.row_fault("b", 3) is None
        assert plan.lane_crash("b", 5) and plan.lane_crash("b", 9)
        assert not plan.lane_crash("b", 4) and not plan.lane_crash("a", 5)
        assert plan.checkpoint_fault(2).kind == "ckpt-truncate"
        assert plan.checkpoint_fault(0) is None


class TestRowFaultInjector:
    def run_injector(self, text, rows):
        delivered = []
        injector = RowFaultInjector(
            StreamFaultPlan.parse(text), "L", deliver=delivered.append
        )
        for r in rows:
            injector(r)
        injector.flush()
        return delivered

    def test_drop_dup_and_corrupt(self):
        rows = [row(i, 5.0 * (i + 1)) for i in range(4)]
        out = self.run_injector("drop-row:L:1,dup-row:L:2,corrupt-row:L:3", rows)
        assert [r.index for r in out] == [0, 2, 2, 3]
        assert np.isnan(out[-1].features[0])

    def test_delay_reorders_with_next_row(self):
        rows = [row(i, 5.0 * (i + 1)) for i in range(3)]
        out = self.run_injector("delay-row:L:1", rows)
        assert [r.index for r in out] == [0, 2, 1]

    def test_delayed_final_row_released_by_flush(self):
        rows = [row(i, 5.0 * (i + 1)) for i in range(2)]
        out = self.run_injector("delay-row:L:1", rows)
        assert [r.index for r in out] == [0, 1]

    def test_crash_swallows_rest(self):
        rows = [row(i, 5.0 * (i + 1)) for i in range(5)]
        out = self.run_injector("crash-lane:L:2", rows)
        assert [r.index for r in out] == [0, 1]

    def test_corrupt_row_transform_is_nan_in_feature_zero(self):
        r = corrupt_row(row(0, 5.0))
        assert np.isnan(r.features[0]) and r.features[1] == 0.0

    def test_snapshot_restore_preserves_held_row(self):
        delivered = []
        injector = RowFaultInjector(
            StreamFaultPlan.parse("delay-row:L:0"), "L",
            deliver=delivered.append,
        )
        injector(row(0, 5.0))          # held back
        state = injector.snapshot()
        fresh = RowFaultInjector(
            StreamFaultPlan.parse("delay-row:L:0"), "L",
            deliver=delivered.append,
        )
        fresh.restore(state)
        fresh(row(1, 10.0))
        assert [r.index for r in delivered] == [1, 0]
