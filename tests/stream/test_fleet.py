"""Unit tests for the fleet multiplexer: buckets, watermark, quorum, API."""

import inspect

import numpy as np
import pytest

from repro.stream import (
    DEFAULT_MONITOR,
    DEFAULT_QUORUM,
    DEFAULT_WARMUP,
    FleetDetector,
    OnlineDetector,
    needed_votes,
    validate_quorum,
)
from repro.stream.extractor import WindowRow


class BatchScoreByFirstFeature:
    """Stand-in model: score = first feature; records every batch size."""

    discretizer = object()  # "fitted" marker checked by the detectors

    def __init__(self):
        self.batch_sizes = []

    def normality_score(self, X, method):
        self.batch_sizes.append(X.shape[0])
        return X[:, 0].astype(float)


def row(index, time, value):
    return WindowRow(
        index=index, time=time, monitor=0,
        features=np.array([value, 0.0]),
    )


def fleet_with(n, threshold=0.5, **kwargs):
    model = BatchScoreByFirstFeature()
    fleet = FleetDetector(model, threshold=threshold, **kwargs)
    for s in range(n):
        fleet.attach(f"n{s}")
    return fleet, model


class TestMultiplexer:
    def test_same_tick_windows_score_in_one_batch(self):
        fleet, model = fleet_with(3)
        for k in range(4):
            t = 5.0 * (k + 1)
            for s in range(3):
                fleet.ingest(f"n{s}", row(k, t, 0.9))
            fleet.seal_all(t)
        fleet.finish()
        assert model.batch_sizes == [3, 3, 3, 3]
        assert fleet.batch_sizes == [3, 3, 3, 3]
        assert fleet.windows == 12

    def test_watermark_waits_for_slowest_lane(self):
        fleet, model = fleet_with(2)
        fleet.ingest("n0", row(0, 5.0, 0.9))
        fleet.seal("n0", 10.0)  # n0 is past the tick, n1 is not
        assert model.batch_sizes == []
        fleet.ingest("n1", row(0, 5.0, 0.9))
        fleet.seal("n1", 10.0)  # now the whole fleet has moved past t=5
        assert model.batch_sizes == [2]

    def test_bucket_needs_strictly_later_watermark(self):
        fleet, model = fleet_with(1)
        fleet.ingest("n0", row(0, 5.0, 0.9))
        fleet.seal("n0", 5.0)  # exactly at the tick: not proven past it
        assert model.batch_sizes == []
        fleet.seal("n0", 5.1)
        assert model.batch_sizes == [1]

    def test_drop_unblocks_the_fleet(self):
        fleet, model = fleet_with(3)
        for s in range(2):
            fleet.ingest(f"n{s}", row(0, 5.0, 0.9))
            fleet.seal(f"n{s}", 10.0)
        assert model.batch_sizes == []  # n2 never reported, holds it back
        fleet.drop("n2")
        assert model.batch_sizes == [2]
        assert fleet._lanes["n2"].done

    def test_finish_flushes_pending_buckets(self):
        fleet, model = fleet_with(2)
        fleet.ingest("n0", row(0, 5.0, 0.9))
        fleet.ingest("n1", row(0, 5.0, 0.9))
        assert model.batch_sizes == []
        fleet.finish()
        assert model.batch_sizes == [2]

    def test_late_row_after_finalisation_raises(self):
        fleet, _ = fleet_with(2)
        fleet.ingest("n0", row(0, 5.0, 0.9))
        fleet.ingest("n1", row(0, 5.0, 0.9))
        fleet.seal_all(10.0)
        with pytest.raises(ValueError, match="finalised"):
            fleet.ingest("n0", row(1, 5.0, 0.4))

    def test_ingest_after_drop_raises(self):
        fleet, _ = fleet_with(1)
        fleet.drop("n0")
        with pytest.raises(ValueError, match="finished"):
            fleet.ingest("n0", row(0, 5.0, 0.9))

    def test_duplicate_name_raises(self):
        fleet, _ = fleet_with(1)
        with pytest.raises(ValueError, match="already registered"):
            fleet.attach("n0")

    def test_unknown_name_raises_key_error(self):
        fleet, _ = fleet_with(1)
        with pytest.raises(KeyError):
            fleet.ingest("nope", row(0, 5.0, 0.9))
        with pytest.raises(KeyError):
            fleet.seal("nope", 5.0)

    def test_requires_fitted_model(self):
        class Unfitted:
            discretizer = None

        with pytest.raises(ValueError, match="fitted"):
            FleetDetector(Unfitted(), threshold=0.5)


class TestSingleStreamEquivalence:
    def test_single_lane_fleet_matches_online_detector_bitwise(self):
        values = [0.9, 0.1, 0.8, 0.3, 0.55]
        rows = [row(i, 5.0 * (i + 1), v) for i, v in enumerate(values)]

        online = OnlineDetector(BatchScoreByFirstFeature(), threshold=0.5)
        for r in rows:
            online.consume(r)

        fleet, _ = fleet_with(1)
        for r in rows:
            fleet.ingest("n0", r)
            fleet.seal("n0", r.time + 0.1)
        fleet.finish()

        result = fleet.result()
        single = result.streams["n0"]
        assert np.array_equal(single.scores, np.asarray(online.scores))
        assert np.array_equal(single.times, np.asarray(online.times))
        assert [(a.index, a.time, a.score) for a in single.alarms] == \
               [(a.index, a.time, a.score) for a in online.alarms]
        # every alarm carries its lane name; the solo detector's is blank
        assert all(a.stream == "n0" for a in single.alarms)
        assert all(a.stream == "" for a in online.alarms)


class TestQuorum:
    def ticks(self, fleet, per_stream_values):
        """Feed one tick per entry; values[k][s] scores stream s."""
        for k, values in enumerate(per_stream_values):
            t = 5.0 * (k + 1)
            for s, v in enumerate(values):
                if v is not None:
                    fleet.ingest(f"n{s}", row(k, t, v))
            fleet.seal_all(t + 0.1)

    def test_int_quorum_is_k_of_reporting(self):
        fleet, _ = fleet_with(3, quorum=2)
        self.ticks(fleet, [
            (0.9, 0.9, 0.9),  # nobody alarms
            (0.1, 0.9, 0.9),  # one alarm < quorum
            (0.1, 0.2, 0.9),  # two alarms: fused
        ])
        assert len(fleet.fused) == 1
        fused = fleet.fused[0]
        assert fused.time == 15.0
        assert fused.streams == ("n0", "n1")
        assert fused.scores == (0.1, 0.2)
        assert fused.reporting == 3 and fused.needed == 2

    def test_int_quorum_unsatisfiable_when_too_few_report(self):
        # Both reporting streams alarm, but k=3 cannot be met by 2 votes:
        # dropped streams make the fixed-k policy more cautious, never less.
        fleet, _ = fleet_with(3, quorum=3)
        fleet.drop("n2")
        self.ticks(fleet, [(0.1, 0.1, None)])
        assert fleet.fused == []

    def test_fractional_quorum_adapts_to_reporting(self):
        # 0.5 of 3 reporting = 2 votes; after a drop, 0.5 of 2 = 1 vote.
        fleet, _ = fleet_with(3, quorum=0.5)
        self.ticks(fleet, [(0.1, 0.9, 0.9)])
        assert fleet.fused == []
        fleet.drop("n2")
        self.ticks(fleet, [(None, None, None), (0.1, 0.9, None)])
        assert len(fleet.fused) == 1
        assert fleet.fused[0].reporting == 2 and fleet.fused[0].needed == 1

    def test_disjoint_warmups_shrink_reporting(self):
        # A still-warming-up lane delivers nothing; the fraction is taken
        # over the lanes that actually reported on the tick.
        fleet, _ = fleet_with(2, quorum=1.0)  # unanimity of reporting
        fleet.ingest("n0", row(0, 5.0, 0.1))  # n1 warming up: no window yet
        fleet.seal_all(5.1)
        assert len(fleet.fused) == 1
        assert fleet.fused[0].reporting == 1 and fleet.fused[0].needed == 1

    def test_quorum_validation(self):
        for bad in (0, -1, 0.0, 1.5, True, "2"):
            with pytest.raises(ValueError):
                validate_quorum(bad)
        assert validate_quorum(1) == 1
        assert validate_quorum(0.25) == 0.25
        assert needed_votes(2, 5) == 2
        assert needed_votes(0.5, 5) == 3   # ceil
        assert needed_votes(0.1, 4) == 1   # never below one vote


class TestHooks:
    def test_on_alarm_on_fused_on_batch_fire_in_order(self):
        alarms, fused, batches = [], [], []
        fleet, _ = fleet_with(
            2, on_alarm=alarms.append, on_fused=fused.append,
            on_batch=lambda n, s: batches.append(n),
        )
        fleet.ingest("n0", row(0, 5.0, 0.1))
        fleet.ingest("n1", row(0, 5.0, 0.9))
        fleet.seal_all(5.1)
        assert [a.stream for a in alarms] == ["n0"]
        assert len(fused) == 1 and fused[0].streams == ("n0",)
        assert batches == [2]


class TestFleetResult:
    def test_result_freezes_streams_labels_and_batches(self):
        fleet, _ = fleet_with(2)
        for k in range(3):
            t = 5.0 * (k + 1)
            fleet.ingest("n0", row(k, t, 0.1 if k == 1 else 0.9))
            fleet.ingest("n1", row(k, t, 0.9))
            fleet.seal_all(t + 0.1)
        labels = {"n0": np.array([False, True, False])}
        result = fleet.result(labels=labels, elapsed_s=2.0)
        assert result.n_streams == 2 and result.windows == 6
        assert result.batches == 3 and result.mean_batch_size == 2.0
        assert result.alarms == 1 and len(result.fused) == 1
        assert np.array_equal(result.streams["n0"].labels, labels["n0"])
        assert not result.streams["n1"].labels.any()  # default: all normal
        assert result.windows_per_second == pytest.approx(3.0)
        recall, precision = result.streams["n0"].recall_precision()
        assert recall == 1.0 and precision == 1.0
        assert "2 streams" in result.summary()
        assert "1 fused alarms" in result.summary()


class TestConstructionSymmetry:
    """The shared keywords cannot drift apart across the four surfaces
    (documented once, in repro.stream.config)."""

    def params(self, fn):
        return inspect.signature(fn).parameters

    def test_threshold_defaults_to_calibrated_everywhere(self):
        from repro.runtime.session import Session

        for fn in (OnlineDetector.from_detector, FleetDetector.from_detector,
                   FleetDetector.from_session, Session.stream_detect,
                   Session.fleet_detect):
            assert self.params(fn)["threshold"].default is None, fn

    def test_quorum_default_is_shared(self):
        from repro.runtime.session import Session

        for fn in (FleetDetector.from_detector, FleetDetector.from_session,
                   Session.fleet_detect):
            assert self.params(fn)["quorum"].default == DEFAULT_QUORUM, fn

    def test_monitor_and_warmup_defaults_are_shared(self):
        from repro.runtime.session import Session

        assert self.params(OnlineDetector.from_detector)["monitor"].default \
               == DEFAULT_MONITOR
        assert self.params(FleetDetector.add_stream)["monitor"].default \
               == DEFAULT_MONITOR
        assert self.params(FleetDetector.add_stream)["warmup"].default \
               == DEFAULT_WARMUP
        # Session surfaces default both to None = "take it from the plan"
        for fn, key in ((Session.stream_detect, "monitor"),
                        (Session.stream_detect, "warmup"),
                        (Session.fleet_detect, "monitors"),
                        (Session.fleet_detect, "warmup"),
                        (FleetDetector.from_session, "monitors"),
                        (FleetDetector.from_session, "warmup")):
            assert self.params(fn)[key].default is None, (fn, key)

    def test_attribution_default_is_shared(self):
        from repro.runtime.session import Session
        from repro.stream.config import DEFAULT_ATTRIBUTION

        for fn in (OnlineDetector.from_detector, FleetDetector.from_detector,
                   FleetDetector.from_session):
            assert self.params(fn)["attribution"].default \
                   is DEFAULT_ATTRIBUTION, fn
        # The Session surfaces share the same (off-by-default) contract.
        for fn in (Session.stream_detect, Session.fleet_detect):
            assert self.params(fn)["attribution"].default is False, fn

    def test_training_knobs_match_fitted_detector(self):
        from repro.runtime.session import Session

        reference = self.params(Session.fitted_detector)
        for fn in (FleetDetector.from_session, Session.fleet_detect):
            params = self.params(fn)
            for knob in ("classifier", "method", "false_alarm_rate",
                         "max_models", "n_buckets", "n_jobs"):
                assert params[knob].default == reference[knob].default, (fn, knob)
