"""The fleet contract: N multiplexed lanes == N independent detectors.

Every test here asserts exact ``np.array_equal`` equality (no tolerance):
scoring the ``(N, L)`` tick bucket in one vectorized call must reproduce
the bits of N independent ``(1, L)`` ``OnlineDetector`` calls — across
monitors, across concurrent scenario groups, and end to end through
``Session.fleet_detect``.
"""

import numpy as np
import pytest

from repro.eval.experiments import ExperimentPlan
from repro.features.extraction import extract_features
from repro.runtime import Session
from repro.stream import FleetDetector, OnlineDetector, extractor_for_config, replay_trace

MONITORS = (0, 2, 5)


@pytest.fixture(scope="module")
def fitted(aodv_udp_trace, dsr_udp_trace):
    """A trained + calibrated detector fitted on the fixture traces."""
    from repro.core.model import CrossFeatureDetector

    train = extract_features(aodv_udp_trace, monitor=0)
    detector = CrossFeatureDetector(n_jobs=1)
    detector.fit(
        train.X,
        feature_names=train.feature_names,
        calibration_X=extract_features(dsr_udp_trace, monitor=0).X,
    )
    return detector


def independent_run(detector, trace, monitor):
    """The reference: one OnlineDetector riding its own replay."""
    online = OnlineDetector.from_detector(detector, monitor=monitor)
    tap = extractor_for_config(trace.config, monitor=monitor, on_row=online.consume)
    replay_trace(trace, tap)
    return online


class TestFleetVsIndependent:
    def test_multi_monitor_fleet_is_bit_identical(self, fitted, aodv_udp_trace):
        trace = aodv_udp_trace
        fleet = FleetDetector.from_detector(fitted)
        taps = {
            m: fleet.add_stream(m, sampling_period=trace.config.sampling_period)
            for m in MONITORS
        }
        for tap in taps.values():
            replay_trace(trace, tap)
        fleet.finish()
        result = fleet.result()

        for m, tap in taps.items():
            solo = independent_run(fitted, trace, m)
            lane = result.streams[tap.name]
            assert np.array_equal(lane.scores, np.asarray(solo.scores))
            assert np.array_equal(lane.times, np.asarray(solo.times))
            assert [(a.index, a.time, a.score) for a in lane.alarms] == \
                   [(a.index, a.time, a.score) for a in solo.alarms]
        # The win this PR buys: same-tick windows really shared batches.
        assert max(fleet.batch_sizes) == len(MONITORS)

    def test_single_stream_fleet_matches_online_detector(self, fitted, dsr_udp_trace):
        trace = dsr_udp_trace
        fleet = FleetDetector.from_detector(fitted)
        tap = fleet.add_stream(0, sampling_period=trace.config.sampling_period)
        replay_trace(trace, tap)
        fleet.finish()

        solo = independent_run(fitted, trace, 0)
        lane = fleet.result().streams[tap.name]
        assert np.array_equal(lane.scores, np.asarray(solo.scores))
        assert np.array_equal(lane.times, np.asarray(solo.times))
        assert lane.threshold == solo.threshold  # both adopted threshold_
        for fleet_alarm, solo_alarm in zip(lane.alarms, solo.alarms):
            assert fleet_alarm.index == solo_alarm.index
            assert fleet_alarm.time == solo_alarm.time
            assert fleet_alarm.score == solo_alarm.score
            assert fleet_alarm.threshold == solo_alarm.threshold
            assert fleet_alarm.monitor == solo_alarm.monitor

    def test_concurrent_scenarios_share_batches(
        self, fitted, aodv_udp_trace, dsr_udp_trace
    ):
        """Two scenario groups on one fleet: same-time windows from
        *different* scenarios score together, scores stay per-run exact."""
        traces = {"s0": aodv_udp_trace, "s1": dsr_udp_trace}
        fleet = FleetDetector.from_detector(fitted)
        for scenario, trace in traces.items():
            for m in (0, 2):
                fleet.add_stream(
                    m, scenario=scenario,
                    sampling_period=trace.config.sampling_period,
                )
        for scenario, trace in traces.items():
            for tap in fleet.taps(scenario):
                replay_trace(trace, tap)
        fleet.finish()
        result = fleet.result()

        for scenario, trace in traces.items():
            for m in (0, 2):
                solo = independent_run(fitted, trace, m)
                lane = result.streams[f"{scenario}/n{m}"]
                assert np.array_equal(lane.scores, np.asarray(solo.scores))
                assert np.array_equal(lane.times, np.asarray(solo.times))
        # Both fixtures run on the same tick grid, so the cross-scenario
        # buckets hold all four lanes' windows.
        assert max(result.batch_sizes) == 4


class TestSessionFleetDetect:
    @pytest.fixture(scope="class")
    def plan(self):
        return ExperimentPlan(
            n_nodes=10, duration=200.0, max_connections=10,
            train_seeds=(11,), normal_seeds=(21,), attack_seeds=(31,),
            warmup=50.0, traffic_seed=7,
        )

    @pytest.fixture(scope="class")
    def session(self):
        return Session(cache=False)

    def test_fleet_detect_matches_per_monitor_stream_detect(self, plan, session):
        fleet_result = session.fleet_detect(plan, monitors=MONITORS)
        assert fleet_result.n_streams == len(MONITORS)
        for m in MONITORS:
            solo = session.stream_detect(plan, monitor=m)
            lane = fleet_result.streams[f"s0/n{m}"]
            assert np.array_equal(lane.scores, solo.scores)
            assert np.array_equal(lane.times, solo.times)
            assert np.array_equal(lane.labels, solo.labels)
            assert lane.threshold == solo.threshold
            assert len(lane.alarms) == len(solo.alarms)

    def test_fleet_metrics_account_batches_and_fusions(self, plan, session):
        metrics_session = Session(cache=False)
        result = metrics_session.fleet_detect(plan, monitors=MONITORS, quorum=2)
        m = metrics_session.metrics
        assert m.fleet_windows == result.windows
        assert m.fleet_batches == result.batches
        assert m.fused_alarms == len(result.fused)
        assert m.alarms == result.alarms
        assert "fleet" in m.stage_seconds
        # Every fused verdict met the k-of-n quorum.
        for fused in result.fused:
            assert len(fused.streams) >= fused.needed == 2

    def test_default_monitors_exclude_the_attacker(self, plan, session):
        fleet = FleetDetector.from_session(session, plan)
        monitors = {stream.monitor for stream in fleet.taps()}
        assert monitors == set(range(plan.n_nodes)) - {plan.attacker}
