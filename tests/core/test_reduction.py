"""Model/feature reduction tests (§6 future work)."""

import numpy as np
import pytest

from repro.core.model import CrossFeatureModel
from repro.core.reduction import correlation_reduce, factor_reduce, reduction_report


def redundant_data(n=200, seed=0):
    """Three independent signals, each duplicated with tiny noise."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0, 10, n)
    b = rng.uniform(0, 10, n)
    c = rng.uniform(0, 10, n)
    return np.column_stack([
        a, a + rng.normal(0, 1e-3, n),       # near-duplicate pair
        b, 2 * b + rng.normal(0, 1e-3, n),   # linear duplicate
        c,
        np.full(n, 7.0),                     # constant
    ])


class TestCorrelationReduce:
    def test_drops_duplicates(self):
        kept = correlation_reduce(redundant_data(), threshold=0.95)
        # One of each duplicated pair goes; independents and the constant stay.
        assert 0 in kept and 1 not in kept
        assert 2 in kept and 3 not in kept
        assert 4 in kept
        assert 5 in kept  # constant kept as escape-bucket detector

    def test_threshold_one_keeps_everything_distinct(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 5))
        kept = correlation_reduce(X, threshold=1.0)
        assert kept == [0, 1, 2, 3, 4]

    def test_lower_threshold_drops_more(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(200, 1))
        X = base + rng.normal(0, 0.5, size=(200, 6))  # all moderately correlated
        loose = correlation_reduce(X, threshold=0.99)
        tight = correlation_reduce(X, threshold=0.5)
        assert len(tight) <= len(loose)

    def test_deterministic(self):
        X = redundant_data(seed=3)
        assert correlation_reduce(X) == correlation_reduce(X)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            correlation_reduce(redundant_data(), threshold=0.0)
        with pytest.raises(ValueError):
            correlation_reduce(np.zeros((2, 3)))


class TestFactorReduce:
    def test_selects_requested_count(self):
        kept = factor_reduce(redundant_data(), n_features=3)
        assert len(kept) == 3
        assert kept == sorted(set(kept))

    def test_representatives_span_distinct_signals(self):
        """Each duplicated pair contributes at most one early pick."""
        kept = factor_reduce(redundant_data(), n_features=3)
        assert not ({0, 1} <= set(kept))
        assert not ({2, 3} <= set(kept))

    def test_full_selection_allowed(self):
        X = redundant_data()
        kept = factor_reduce(X, n_features=X.shape[1])
        assert len(kept) == X.shape[1]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            factor_reduce(redundant_data(), n_features=0)
        with pytest.raises(ValueError):
            factor_reduce(redundant_data(), n_features=99)


class TestReductionWithModel:
    def test_reduced_model_still_detects(self):
        rng = np.random.default_rng(4)
        activity = rng.uniform(0, 10, 400)
        other = rng.uniform(0, 5, 400)
        X = np.column_stack([
            activity + rng.normal(0, 0.2, 400),
            activity + rng.normal(0, 0.2, 400),   # redundant
            other + rng.normal(0, 0.1, 400),
            activity + other + rng.normal(0, 0.2, 400),
        ])
        kept = correlation_reduce(X, threshold=0.9)
        assert 2 <= len(kept) < 4
        model = CrossFeatureModel(feature_subset=kept)
        model.fit(X)
        model.calibrate(X)
        anomalies = rng.uniform(0, 30, size=(50, 4))
        assert (model.normality_score(X).mean()
                > model.normality_score(anomalies).mean())

    def test_report(self):
        X = redundant_data()
        names = [f"f{i}" for i in range(X.shape[1])]
        report = reduction_report(X, names)
        assert report["n_original"] == 6
        assert report["n_kept"] == len(report["kept_names"])
        assert 0 < report["reduction"] < 1
