"""Equal-frequency discretizer tests."""

import numpy as np
import pytest

from repro.core.discretization import EqualFrequencyDiscretizer


class TestFit:
    def test_equal_frequency_on_uniform_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 100, size=(5000, 1))
        codes = EqualFrequencyDiscretizer(n_buckets=5).fit_transform(X)
        counts = np.bincount(codes[:, 0])
        # Five populated buckets of roughly equal mass (plus the empty
        # out-of-range bucket).
        assert (counts[:5] > 800).all()

    def test_bucket_count_paper_default(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        disc = EqualFrequencyDiscretizer().fit(X)
        # 5 buckets + the out-of-range bucket.
        assert disc.n_values()[0] == 6

    def test_constant_column_gets_escape_bucket(self):
        X = np.full((50, 1), 7.0)
        disc = EqualFrequencyDiscretizer().fit(X)
        codes = disc.transform(np.array([[7.0], [7.1], [6.9]]))
        assert codes[0, 0] == 0   # the constant itself
        assert codes[1, 0] == 1   # above: never seen in normal data
        assert codes[2, 0] == 0   # below folds into the base bucket

    def test_skewed_column_separates_minimum_mass(self):
        X = np.array([[0.0]] * 95 + [[10.0]] * 5)
        codes = EqualFrequencyDiscretizer().fit(X).transform(X)
        assert codes[0, 0] != codes[-1, 0]

    def test_out_of_range_bucket_flags_attack_values(self):
        X = np.linspace(0, 10, 100).reshape(-1, 1)
        disc = EqualFrequencyDiscretizer().fit(X)
        codes = disc.transform(np.array([[5.0], [10.0], [1000.0]]))
        top = disc.n_values()[0] - 1
        assert codes[2, 0] == top
        assert codes[0, 0] < top and codes[1, 0] < top

    def test_out_of_range_bucket_can_be_disabled(self):
        X = np.linspace(0, 10, 100).reshape(-1, 1)
        disc = EqualFrequencyDiscretizer(out_of_range_bucket=False).fit(X)
        codes = disc.transform(np.array([[10.0], [1000.0]]))
        assert codes[0, 0] == codes[1, 0]

    def test_prefilter_uses_subsample(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(1000, 2))
        a = EqualFrequencyDiscretizer(prefilter_fraction=0.2, random_state=0).fit(X)
        b = EqualFrequencyDiscretizer().fit(X)
        # Different data -> (generally) different edges, but same structure.
        assert len(a.edges_) == len(b.edges_)
        codes = a.transform(X)
        assert (codes >= 0).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer(n_buckets=1)
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer(prefilter_fraction=0.0)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer().fit(np.empty((0, 2)))


class TestTransform:
    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            EqualFrequencyDiscretizer().transform(np.zeros((1, 1)))

    def test_column_count_checked(self):
        disc = EqualFrequencyDiscretizer().fit(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            disc.transform(np.zeros((5, 3)))

    def test_transform_deterministic(self):
        rng = np.random.default_rng(2)
        X = rng.exponential(size=(200, 3))
        disc = EqualFrequencyDiscretizer().fit(X)
        np.testing.assert_array_equal(disc.transform(X), disc.transform(X))


def _per_column_reference(disc, X):
    """The pre-vectorization transform: one searchsorted per column."""
    X = np.asarray(X, dtype=float)
    codes = np.empty(X.shape, dtype=np.int64)
    for j, edges in enumerate(disc.edges_):
        codes[:, j] = np.searchsorted(edges, X[:, j], side="left")
    return codes


class TestTransformIdentity:
    """The single merged-searchsorted transform must be bit-identical to
    the per-column loop — same comparisons against the same floats."""

    def test_matches_per_column_searchsorted(self):
        rng = np.random.default_rng(5)
        X_fit = rng.exponential(size=(300, 4))
        X_fit[:, 2] = 7.0  # constant column
        disc = EqualFrequencyDiscretizer().fit(X_fit)
        X = rng.exponential(size=(500, 4)) * 3 - 1
        np.testing.assert_array_equal(disc.transform(X), _per_column_reference(disc, X))

    def test_matches_on_edge_values_nan_and_inf(self):
        X_fit = np.linspace(0, 10, 100).reshape(-1, 1).repeat(2, axis=1)
        disc = EqualFrequencyDiscretizer().fit(X_fit)
        edge = disc.edges_[0][0]
        X = np.array([
            [edge, edge],
            [np.nextafter(edge, -np.inf), np.nextafter(edge, np.inf)],
            [np.nan, np.nan],
            [np.inf, -np.inf],
        ])
        np.testing.assert_array_equal(disc.transform(X), _per_column_reference(disc, X))

    def test_randomized_trials(self):
        rng = np.random.default_rng(6)
        for _ in range(50):
            n = int(rng.integers(5, 120))
            d = int(rng.integers(1, 6))
            X_fit = rng.normal(size=(n, d)) * rng.uniform(0.1, 100)
            if rng.random() < 0.3:
                X_fit[:, int(rng.integers(0, d))] = rng.normal()
            disc = EqualFrequencyDiscretizer(
                n_buckets=int(rng.integers(2, 8))
            ).fit(X_fit)
            X = rng.normal(size=(int(rng.integers(1, 200)), d)) * 50
            np.testing.assert_array_equal(
                disc.transform(X), _per_column_reference(disc, X)
            )

    def test_lookup_rebuilt_after_refit(self):
        disc = EqualFrequencyDiscretizer().fit(np.linspace(0, 1, 50).reshape(-1, 1))
        disc.transform(np.array([[0.5]]))  # builds the lookup
        disc.fit(np.linspace(0, 100, 50).reshape(-1, 1))
        np.testing.assert_array_equal(
            disc.transform(np.array([[50.0]])),
            _per_column_reference(disc, np.array([[50.0]])),
        )

    def test_unpickled_without_lookup_still_transforms(self):
        import pickle

        disc = EqualFrequencyDiscretizer().fit(np.linspace(0, 1, 50).reshape(-1, 1))
        clone = pickle.loads(pickle.dumps(disc))
        del clone._lookup_  # simulate a pickle from before the fast path
        np.testing.assert_array_equal(
            clone.transform(np.array([[0.5]])),
            _per_column_reference(disc, np.array([[0.5]])),
        )
