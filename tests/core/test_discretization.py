"""Equal-frequency discretizer tests."""

import numpy as np
import pytest

from repro.core.discretization import EqualFrequencyDiscretizer


class TestFit:
    def test_equal_frequency_on_uniform_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 100, size=(5000, 1))
        codes = EqualFrequencyDiscretizer(n_buckets=5).fit_transform(X)
        counts = np.bincount(codes[:, 0])
        # Five populated buckets of roughly equal mass (plus the empty
        # out-of-range bucket).
        assert (counts[:5] > 800).all()

    def test_bucket_count_paper_default(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        disc = EqualFrequencyDiscretizer().fit(X)
        # 5 buckets + the out-of-range bucket.
        assert disc.n_values()[0] == 6

    def test_constant_column_gets_escape_bucket(self):
        X = np.full((50, 1), 7.0)
        disc = EqualFrequencyDiscretizer().fit(X)
        codes = disc.transform(np.array([[7.0], [7.1], [6.9]]))
        assert codes[0, 0] == 0   # the constant itself
        assert codes[1, 0] == 1   # above: never seen in normal data
        assert codes[2, 0] == 0   # below folds into the base bucket

    def test_skewed_column_separates_minimum_mass(self):
        X = np.array([[0.0]] * 95 + [[10.0]] * 5)
        codes = EqualFrequencyDiscretizer().fit(X).transform(X)
        assert codes[0, 0] != codes[-1, 0]

    def test_out_of_range_bucket_flags_attack_values(self):
        X = np.linspace(0, 10, 100).reshape(-1, 1)
        disc = EqualFrequencyDiscretizer().fit(X)
        codes = disc.transform(np.array([[5.0], [10.0], [1000.0]]))
        top = disc.n_values()[0] - 1
        assert codes[2, 0] == top
        assert codes[0, 0] < top and codes[1, 0] < top

    def test_out_of_range_bucket_can_be_disabled(self):
        X = np.linspace(0, 10, 100).reshape(-1, 1)
        disc = EqualFrequencyDiscretizer(out_of_range_bucket=False).fit(X)
        codes = disc.transform(np.array([[10.0], [1000.0]]))
        assert codes[0, 0] == codes[1, 0]

    def test_prefilter_uses_subsample(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(1000, 2))
        a = EqualFrequencyDiscretizer(prefilter_fraction=0.2, random_state=0).fit(X)
        b = EqualFrequencyDiscretizer().fit(X)
        # Different data -> (generally) different edges, but same structure.
        assert len(a.edges_) == len(b.edges_)
        codes = a.transform(X)
        assert (codes >= 0).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer(n_buckets=1)
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer(prefilter_fraction=0.0)

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            EqualFrequencyDiscretizer().fit(np.empty((0, 2)))


class TestTransform:
    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            EqualFrequencyDiscretizer().transform(np.zeros((1, 1)))

    def test_column_count_checked(self):
        disc = EqualFrequencyDiscretizer().fit(np.zeros((10, 2)))
        with pytest.raises(ValueError):
            disc.transform(np.zeros((5, 3)))

    def test_transform_deterministic(self):
        rng = np.random.default_rng(2)
        X = rng.exponential(size=(200, 3))
        disc = EqualFrequencyDiscretizer().fit(X)
        np.testing.assert_array_equal(disc.transform(X), disc.transform(X))
