"""Synthetic fraud dataset tests (the §6 generality substrate)."""

import numpy as np
import pytest

from repro.core.model import CrossFeatureDetector
from repro.datasets.fraud import FRAUD_FEATURE_NAMES, generate_fraud_dataset


class TestGeneration:
    def test_counts(self):
        ds = generate_fraud_dataset(n_normal=500, n_fraud=50, seed=0)
        assert len(ds) == 550
        assert ds.labels.sum() == 50

    def test_feature_names(self):
        ds = generate_fraud_dataset(100, 10)
        assert ds.feature_names == FRAUD_FEATURE_NAMES
        assert ds.X.shape[1] == len(FRAUD_FEATURE_NAMES)

    def test_values_plausible(self):
        ds = generate_fraud_dataset(1000, 100, seed=1)
        X = ds.X
        names = ds.feature_names
        hour = X[:, names.index("hour")]
        assert (hour >= 0).all() and (hour <= 23).all()
        assert (X[:, names.index("amount")] > 0).all()
        online = X[:, names.index("is_online")]
        assert set(np.unique(online)) <= {0.0, 1.0}

    def test_online_transactions_have_zero_distance(self):
        ds = generate_fraud_dataset(1000, 100, seed=2)
        online = ds.X[:, ds.feature_names.index("is_online")] > 0
        distance = ds.X[:, ds.feature_names.index("distance_home")]
        assert (distance[online] == 0).all()

    def test_deterministic(self):
        a = generate_fraud_dataset(200, 20, seed=3)
        b = generate_fraud_dataset(200, 20, seed=3)
        np.testing.assert_array_equal(a.X, b.X)

    def test_shuffled(self):
        ds = generate_fraud_dataset(200, 20, seed=4)
        # Fraud is not all at the end after shuffling.
        assert ds.labels[: len(ds) // 2].sum() > 0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            generate_fraud_dataset(0, 10)


class TestDetectionOnFraud:
    def test_cross_feature_analysis_detects_fraud(self):
        """The paper's §6 claim, on the synthetic stand-in."""
        ds = generate_fraud_dataset(n_normal=2000, n_fraud=200, seed=1)
        normal = ds.normal_only()
        det = CrossFeatureDetector(method="calibrated_probability",
                                   false_alarm_rate=0.03)
        det.fit(normal[:1200], calibration_X=normal[1200:1600])
        fraud_rate = det.predict(ds.fraud_only()).mean()
        normal_rate = det.predict(normal[1600:]).mean()
        assert fraud_rate > 0.8
        assert normal_rate < 0.15
