"""Public API surface tests: documented entry points exist and are sane."""

import inspect

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_present(self):
        assert repro.__version__.count(".") == 2

    def test_readme_quickstart_symbols(self):
        """The objects the README's quickstart uses are all exported."""
        for name in ("ExperimentPlan", "Session", "run_detection_experiment",
                     "CrossFeatureDetector", "extract_features", "run_scenario",
                     "ScenarioConfig", "RuntimeMetrics"):
            assert name in repro.__all__, name

    def test_legacy_helpers_removed_with_migration_hint(self):
        """The pre-Session wrappers are gone from the top level, and the
        ImportError from their old home names the Session replacement."""
        for name in ("cached_bundle", "cached_result", "simulate_bundle"):
            assert name not in repro.__all__, name
            assert not hasattr(repro, name), name
        import repro.eval.experiments as experiments

        with pytest.raises(ImportError, match="Session"):
            experiments.cached_result

    def test_classifier_registry_complete(self):
        assert set(repro.CLASSIFIERS) == {"c45", "ripper", "nbc"}

    def test_every_public_item_documented(self):
        undocumented = [
            name for name in repro.__all__
            if (inspect.isclass(getattr(repro, name))
                or inspect.isfunction(getattr(repro, name)))
            and not inspect.getdoc(getattr(repro, name))
        ]
        assert undocumented == []

    def test_top_level_import_surface_is_exact(self):
        """``repro.__all__`` is a consolidated, sorted, duplicate-free
        contract — additions and removals must update this list."""
        assert repro.__all__ == sorted(set(repro.__all__))
        assert repro.__all__ == [
            "ANOMALY_TYPES",
            "Alarm",
            "AlarmAttributor",
            "ArtifactCache",
            "C45Classifier",
            "CLASSIFIERS",
            "CheckpointError",
            "CrossFeatureDetector",
            "CrossFeatureModel",
            "DetectionResult",
            "EqualFrequencyDiscretizer",
            "ExperimentPlan",
            "FeatureDataset",
            "FleetAlarm",
            "FleetDetector",
            "FleetResult",
            "FleetStream",
            "NaiveBayesClassifier",
            "OnlineDetector",
            "RegressionCrossFeatureModel",
            "RipperClassifier",
            "RuntimeMetrics",
            "ScenarioConfig",
            "Session",
            "SimulationTrace",
            "StreamFault",
            "StreamFaultPlan",
            "StreamResult",
            "StreamingExtractor",
            "TraceBundle",
            "TraceEvent",
            "TwoNodeExample",
            "Verdict",
            "average_match_count",
            "average_probability",
            "default_session",
            "extract_features",
            "four_scenarios",
            "replay_trace",
            "run_detection_experiment",
            "run_scenario",
            "select_threshold",
        ]

    def test_stream_import_surface_is_exact(self):
        import repro.stream as stream

        assert stream.__all__ == sorted(set(stream.__all__))
        assert stream.__all__ == [
            "Alarm",
            "CheckpointError",
            "DEFAULT_ATTRIBUTION",
            "DEFAULT_MAX_FAULTS",
            "DEFAULT_MONITOR",
            "DEFAULT_QUORUM",
            "DEFAULT_ROW_POLICY",
            "DEFAULT_WARMUP",
            "EventRing",
            "FleetAlarm",
            "FleetDetector",
            "FleetResult",
            "FleetStream",
            "OnlineDetector",
            "RouteLengthRing",
            "StreamFault",
            "StreamFaultPlan",
            "StreamFaultSpec",
            "StreamResult",
            "StreamingExtractor",
            "WindowRow",
            "extractor_for_config",
            "load_fleet_checkpoint",
            "load_stream_checkpoint",
            "needed_votes",
            "read_checkpoint",
            "replay_trace",
            "resolve_threshold",
            "save_fleet_checkpoint",
            "save_stream_checkpoint",
            "validate_quorum",
            "validate_row_policy",
            "write_checkpoint",
        ]
        for name in stream.__all__:
            assert hasattr(stream, name), name

    def test_subpackage_apis(self):
        from repro.attacks import (BlackholeAttack, ImpersonationAttack,
                                   PacketDroppingAttack, UpdateStormAttack)
        from repro.core import correlation_reduce, factor_reduce
        from repro.features import load_dataset, save_dataset
        from repro.routing import AodvProtocol, DsrProtocol, OlsrProtocol

        for obj in (BlackholeAttack, ImpersonationAttack, PacketDroppingAttack,
                    UpdateStormAttack, correlation_reduce, factor_reduce,
                    load_dataset, save_dataset, AodvProtocol, DsrProtocol,
                    OlsrProtocol):
            assert inspect.getdoc(obj)
