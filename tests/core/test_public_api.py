"""Public API surface tests: documented entry points exist and are sane."""

import inspect

import pytest

import repro


class TestTopLevelApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_present(self):
        assert repro.__version__.count(".") == 2

    def test_readme_quickstart_symbols(self):
        """The objects the README's quickstart uses are all exported."""
        for name in ("ExperimentPlan", "Session", "run_detection_experiment",
                     "CrossFeatureDetector", "extract_features", "run_scenario",
                     "ScenarioConfig", "RuntimeMetrics"):
            assert name in repro.__all__, name

    def test_legacy_helpers_still_exported(self):
        """Deprecated pre-Session entry points remain importable."""
        for name in ("cached_bundle", "cached_result", "simulate_bundle"):
            assert name in repro.__all__, name

    def test_classifier_registry_complete(self):
        assert set(repro.CLASSIFIERS) == {"c45", "ripper", "nbc"}

    def test_every_public_item_documented(self):
        undocumented = [
            name for name in repro.__all__
            if (inspect.isclass(getattr(repro, name))
                or inspect.isfunction(getattr(repro, name)))
            and not inspect.getdoc(getattr(repro, name))
        ]
        assert undocumented == []

    def test_subpackage_apis(self):
        from repro.attacks import (BlackholeAttack, ImpersonationAttack,
                                   PacketDroppingAttack, UpdateStormAttack)
        from repro.core import correlation_reduce, factor_reduce
        from repro.features import load_dataset, save_dataset
        from repro.routing import AodvProtocol, DsrProtocol, OlsrProtocol

        for obj in (BlackholeAttack, ImpersonationAttack, PacketDroppingAttack,
                    UpdateStormAttack, correlation_reduce, factor_reduce,
                    load_dataset, save_dataset, AodvProtocol, DsrProtocol,
                    OlsrProtocol):
            assert inspect.getdoc(obj)
