"""CLI tests (argument wiring and the cheap subcommands)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.protocol == "aodv"
        assert args.transport == "udp"
        assert args.duration == 1000.0

    def test_detect_arguments(self):
        args = build_parser().parse_args(
            ["detect", "--protocol", "dsr", "--classifier", "ripper",
             "--attack", "blackhole", "--method", "avg_probability"]
        )
        assert args.protocol == "dsr"
        assert args.classifier == "ripper"
        assert args.attack == "blackhole"
        assert args.method == "avg_probability"

    def test_fleet_arguments(self):
        args = build_parser().parse_args(
            ["fleet", "--monitors", "4", "--quorum", "0.5", "--normal"]
        )
        assert args.monitors == 4
        assert args.quorum == "0.5"  # parsed int-vs-fraction in cmd_fleet
        assert args.normal is True
        args = build_parser().parse_args(["fleet"])
        assert args.monitors is None
        assert args.quorum == "1"
        assert args.classifier == "c45"

    def test_bench_fleet_suite_accepted(self):
        args = build_parser().parse_args(["bench", "--suite", "fleet", "--quick"])
        assert args.suite == "fleet"
        assert args.quick is True

    def test_unknown_classifier_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--classifier", "svm"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_illustrate_runs(self, capsys):
        assert main(["illustrate"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "alg3_false_alarms" in out

    def test_simulate_runs_small(self, capsys):
        code = main(["simulate", "--nodes", "8", "--duration", "100",
                     "--connections", "10", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivery ratio" in out
