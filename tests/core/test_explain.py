"""Anomaly-attribution (explain) tests — the §6 interpretability hook."""

import numpy as np
import pytest

from repro.core.model import CrossFeatureDetector, CrossFeatureModel


def correlated_normal(n=300, seed=0):
    rng = np.random.default_rng(seed)
    activity = rng.uniform(0, 10, size=n)
    return np.column_stack([
        activity + rng.normal(0, 0.3, n),
        2 * activity + rng.normal(0, 0.5, n),
        activity ** 1.5 + rng.normal(0, 0.5, n),
        rng.uniform(0, 1, n),
    ])


NAMES = ["load", "double_load", "load_pow", "noise"]


@pytest.fixture(scope="module")
def detector():
    det = CrossFeatureDetector(method="calibrated_probability")
    det.fit(correlated_normal(), feature_names=NAMES)
    return det


class TestExplain:
    def test_entries_sorted_most_anomalous_first(self, detector):
        event = np.array([5.0, 10.0, 11.0, 0.5])  # perfectly normal-looking
        entries = detector.explain(event)
        cals = [e["calibrated"] for e in entries]
        assert cals == sorted(cals)

    def test_broken_feature_is_identified(self, detector):
        # An event where one feature violently contradicts the others.
        event = np.array([5.0, 10.0, 1e6, 0.5])
        entries = detector.explain(event, top_k=2)
        implicated = {e["feature"] for e in entries}
        # The broken column's own sub-model must be among the top culprits.
        assert "load_pow" in implicated
        assert entries[0]["p_true"] <= 0.5

    def test_top_k_respected(self, detector):
        entries = detector.explain(np.array([5.0, 10.0, 11.0, 0.5]), top_k=2)
        assert len(entries) == 2

    def test_entry_schema(self, detector):
        entry = detector.explain(np.array([5.0, 10.0, 11.0, 0.5]), top_k=1)[0]
        assert set(entry) == {"feature", "target", "p_true", "baseline", "calibrated"}
        assert 0.0 <= entry["p_true"] <= 1.0
        assert entry["baseline"] is not None

    def test_named_entries_keep_integer_target(self, detector):
        """With feature_names_ set, entries must still carry the column
        index so callers can join back to the raw vector/discretizer."""
        entries = detector.explain(np.array([5.0, 10.0, 1e6, 0.5]))
        for entry in entries:
            assert isinstance(entry["target"], int)
            assert NAMES[entry["target"]] == entry["feature"]

    def test_uncalibrated_model_explains_with_raw_probabilities(self):
        model = CrossFeatureModel()
        model.fit(correlated_normal(), feature_names=NAMES)
        entries = model.explain(np.array([5.0, 10.0, 11.0, 0.5]))
        assert entries[0]["baseline"] is None

    def test_multiple_events_rejected(self, detector):
        with pytest.raises(ValueError):
            detector.explain(np.zeros((2, 4)))

    def test_indices_used_without_names(self):
        model = CrossFeatureModel()
        model.fit(correlated_normal())
        entries = model.explain(np.array([5.0, 10.0, 11.0, 0.5]), top_k=1)
        assert isinstance(entries[0]["feature"], int)

    def test_indices_carry_target_too(self):
        model = CrossFeatureModel()
        model.fit(correlated_normal())
        entries = model.explain(np.array([5.0, 10.0, 11.0, 0.5]), top_k=1)
        assert entries[0]["target"] == entries[0]["feature"]

    def test_tied_sub_models_rank_in_ensemble_order(self):
        """Ties in the ranking key must resolve to ensemble order (stable
        sort), not the introsort's input-layout-dependent order."""
        model = CrossFeatureModel()
        # Constant columns: every sub-model is a trivial single-leaf tree
        # and every calibrated/p_true value ties exactly.
        X = np.tile([1.0, 2.0, 3.0, 4.0, 5.0], (60, 1))
        model.fit(X, feature_names=list("abcde"))
        entries = model.explain(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        cals = [e["calibrated"] for e in entries]
        assert len(set(cals)) == 1  # genuinely tied
        assert [e["feature"] for e in entries] == list("abcde")


class TestExplainBatch:
    """Row-batched explain must match the per-row path entry for entry."""

    def events(self):
        rng = np.random.default_rng(7)
        base = correlated_normal(n=12, seed=3)
        base[::3, 2] += rng.uniform(1e3, 1e6, size=len(base[::3]))
        return base

    def test_identity_with_per_row_explain(self, detector):
        events = self.events()
        batched = detector.explain_batch(events, top_k=3)
        assert len(batched) == len(events)
        for row, entries in zip(events, batched):
            assert entries == detector.explain(row, top_k=3)

    def test_identity_uncalibrated(self):
        model = CrossFeatureModel()
        model.fit(correlated_normal(), feature_names=NAMES)
        events = self.events()
        batched = model.explain_batch(events)
        for row, entries in zip(events, batched):
            assert entries == model.explain(row)

    def test_single_row_2d_accepted(self, detector):
        event = np.array([5.0, 10.0, 11.0, 0.5])
        assert detector.explain_batch(event[None, :]) == [detector.explain(event)]

    def test_1d_promoted(self, detector):
        event = np.array([5.0, 10.0, 11.0, 0.5])
        assert detector.explain_batch(event) == [detector.explain(event)]

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            CrossFeatureModel().explain_batch(np.zeros((2, 4)))
