"""Scoring-rule and threshold-selection unit tests."""

import numpy as np
import pytest

from repro.core.scoring import average_match_count, average_probability
from repro.core.threshold import select_threshold


class TestAverageMatchCount:
    def test_paper_example(self):
        """(1 + 1 + 1) / 3 = 1 for the all-match case (paper §3)."""
        assert average_match_count(np.array([[1, 1, 1]]))[0] == pytest.approx(1.0)

    def test_partial_match(self):
        assert average_match_count(np.array([[1, 0, 0]]))[0] == pytest.approx(1 / 3)

    def test_normalised_to_unit_interval(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, size=(50, 7))
        scores = average_match_count(m)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            average_match_count(np.array([1, 0]))

    def test_requires_submodels(self):
        with pytest.raises(ValueError):
            average_match_count(np.empty((3, 0)))


class TestAverageProbability:
    def test_paper_example(self):
        """(1 + 1 + 0.5) / 3 = 0.83 for {True, False, False} (paper §3)."""
        assert average_probability(np.array([[1.0, 1.0, 0.5]]))[0] == pytest.approx(0.8333, abs=1e-3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            average_probability(np.array([[1.2]]))
        with pytest.raises(ValueError):
            average_probability(np.array([[-0.1]]))


class TestSelectThreshold:
    def test_quantile_semantics(self):
        scores = np.linspace(0, 1, 101)
        thr = select_threshold(scores, false_alarm_rate=0.05)
        assert (scores < thr).mean() <= 0.05

    def test_zero_false_alarm_rate_is_minimum(self):
        scores = np.array([0.3, 0.5, 0.9])
        assert select_threshold(scores, 0.0) == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_threshold(np.array([]))

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            select_threshold(np.array([0.5]), 1.5)
