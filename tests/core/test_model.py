"""Cross-feature model and detector tests on synthetic correlated data."""

import numpy as np
import pytest

from repro.core.model import CrossFeatureDetector, CrossFeatureModel
from repro.ml import CLASSIFIERS


def correlated_normal(n=400, seed=0):
    """Normal data with strong inter-feature correlation.

    A hidden 'activity level' drives all features, mimicking how network
    load drives every traffic statistic together.
    """
    rng = np.random.default_rng(seed)
    activity = rng.uniform(0, 10, size=n)
    X = np.column_stack([
        activity + rng.normal(0, 0.3, n),
        2 * activity + rng.normal(0, 0.5, n),
        activity ** 1.5 + rng.normal(0, 0.5, n),
        0.5 * activity + rng.normal(0, 0.2, n),
        rng.uniform(0, 1, n),  # one genuinely noisy feature
    ])
    return np.maximum(X, 0.0)


def broken_correlation(n=100, seed=1):
    """Anomalies: each feature individually in range, correlations broken."""
    rng = np.random.default_rng(seed)
    X = np.column_stack([
        rng.uniform(0, 10, n),
        rng.uniform(0, 20, n),
        rng.uniform(0, 32, n),
        rng.uniform(0, 5, n),
        rng.uniform(0, 1, n),
    ])
    return X


@pytest.fixture(scope="module", params=sorted(CLASSIFIERS))
def fitted_model(request):
    model = CrossFeatureModel(classifier_factory=CLASSIFIERS[request.param])
    train = correlated_normal()
    model.fit(train)
    model.calibrate(correlated_normal(seed=7))
    return model


class TestTraining:
    def test_one_submodel_per_feature(self, fitted_model):
        assert fitted_model.n_models == 5
        assert fitted_model.targets_ == [0, 1, 2, 3, 4]

    def test_max_models_limits_ensemble(self):
        model = CrossFeatureModel(max_models=3)
        model.fit(correlated_normal())
        assert model.n_models == 3

    def test_feature_subset_restricts_columns(self):
        model = CrossFeatureModel(feature_subset=[0, 1, 2])
        model.fit(correlated_normal())
        assert model.n_models == 3
        scores = model.normality_score(correlated_normal(seed=2))
        assert len(scores) == 400

    def test_needs_two_features(self):
        with pytest.raises(ValueError):
            CrossFeatureModel().fit(np.zeros((10, 1)))

    def test_score_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            CrossFeatureModel().normality_score(np.zeros((1, 5)))


class TestSharedPassTraining:
    """The shared-pass ensemble fit (one discretization scan, pairwise
    contingency tensor, keep-index gathers) must train sub-models
    identical to the reference per-sub-model loop (REPRO_FAST_FIT=0)."""

    @staticmethod
    def _reference_model(monkeypatch, **kwargs):
        monkeypatch.setenv("REPRO_FAST_FIT", "0")
        model = CrossFeatureModel(**kwargs)
        model.fit(correlated_normal())
        monkeypatch.delenv("REPRO_FAST_FIT")
        return model

    @pytest.mark.parametrize("name", sorted(CLASSIFIERS))
    def test_sub_model_outputs_identical(self, monkeypatch, name):
        factory = CLASSIFIERS[name]
        ref = self._reference_model(monkeypatch, classifier_factory=factory)
        shared = CrossFeatureModel(classifier_factory=factory)
        shared.fit(correlated_normal())
        X = np.vstack([correlated_normal(seed=21), broken_correlation(seed=22)])
        m_ref, p_ref = ref._sub_model_outputs(X)
        m_new, p_new = shared._sub_model_outputs(X)
        np.testing.assert_array_equal(m_ref, m_new)
        np.testing.assert_array_equal(p_ref, p_new)

    def test_c45_trees_structurally_identical(self, monkeypatch):
        from repro.ml.decision_tree import trees_equal

        ref = self._reference_model(monkeypatch)
        shared = CrossFeatureModel()
        shared.fit(correlated_normal())
        assert shared.targets_ == ref.targets_
        for a, b in zip(shared.models_, ref.models_):
            assert trees_equal(a.root_, b.root_)

    def test_max_models_subset_identical(self, monkeypatch):
        ref = self._reference_model(monkeypatch, max_models=3)
        shared = CrossFeatureModel(max_models=3)
        shared.fit(correlated_normal())
        assert shared.targets_ == ref.targets_
        X = correlated_normal(seed=23)
        _, p_ref = ref._sub_model_outputs(X)
        _, p_new = shared._sub_model_outputs(X)
        np.testing.assert_array_equal(p_ref, p_new)

    def test_classifier_without_root_tables_still_fits(self):
        # RIPPER does not accept root tables; the ensemble must fall
        # back to the per-sub-model path transparently.
        model = CrossFeatureModel(classifier_factory=CLASSIFIERS["ripper"])
        model.fit(correlated_normal(n=120))
        assert model.n_models == 5

    def test_unpickled_model_scores_identically(self, fitted_model):
        import pickle

        clone = pickle.loads(pickle.dumps(fitted_model))
        clone._keep_cols = None  # simulate a pickle from before the gathers
        X = correlated_normal(seed=25)[:40]
        np.testing.assert_array_equal(
            clone.normality_score(X), fitted_model.normality_score(X)
        )


class TestScoring:
    def test_normal_scores_above_anomaly_scores(self, fitted_model):
        normal = fitted_model.normality_score(correlated_normal(seed=3))
        anomal = fitted_model.normality_score(broken_correlation())
        assert normal.mean() > anomal.mean()

    def test_all_methods_available(self, fitted_model):
        X = correlated_normal(seed=4)[:20]
        for method in ("avg_probability", "match_count", "calibrated_probability"):
            scores = fitted_model.normality_score(X, method)
            assert scores.shape == (20,)
            assert (scores >= 0).all() and (scores <= 1).all()

    def test_unknown_method_rejected(self, fitted_model):
        with pytest.raises(ValueError):
            fitted_model.normality_score(correlated_normal()[:5], "bogus")

    def test_calibrated_requires_calibration(self):
        model = CrossFeatureModel()
        model.fit(correlated_normal())
        with pytest.raises(RuntimeError):
            model.normality_score(correlated_normal()[:5], "calibrated_probability")

    def test_match_count_is_fraction_of_models(self, fitted_model):
        scores = fitted_model.normality_score(
            correlated_normal(seed=5)[:50], "match_count"
        )
        # With 5 sub-models, match counts are multiples of 1/5.
        np.testing.assert_allclose((scores * 5) % 1.0, 0.0, atol=1e-9)

    def test_out_of_range_values_score_low(self, fitted_model):
        X = correlated_normal(seed=6)[:10]
        X_attack = X.copy()
        X_attack[:, 0] = 1e6  # far beyond anything normal
        normal_scores = fitted_model.normality_score(X)
        attack_scores = fitted_model.normality_score(X_attack)
        assert attack_scores.mean() < normal_scores.mean()


class TestDetector:
    def test_end_to_end_detection(self):
        det = CrossFeatureDetector(method="calibrated_probability",
                                   false_alarm_rate=0.05)
        det.fit(correlated_normal(n=600))
        normal_alarms = det.predict(correlated_normal(seed=9)).mean()
        anomaly_alarms = det.predict(broken_correlation()).mean()
        assert anomaly_alarms > 0.5
        assert anomaly_alarms > normal_alarms

    def test_false_alarm_rate_approximately_honoured(self):
        det = CrossFeatureDetector(method="avg_probability", false_alarm_rate=0.1)
        X = correlated_normal(n=800)
        det.fit(X)
        # On the calibration block itself the rate is exact by construction;
        # on fresh normal data it should be in the right ballpark.
        fresh = det.predict(correlated_normal(seed=11)).mean()
        assert fresh < 0.5

    def test_explicit_calibration_set(self):
        det = CrossFeatureDetector()
        det.fit(correlated_normal(), calibration_X=correlated_normal(seed=13))
        assert det.threshold_ is not None

    def test_predict_before_fit_rejected(self):
        det = CrossFeatureDetector()
        with pytest.raises(RuntimeError):
            det.predict(np.zeros((1, 5)))

    def test_invalid_calibration_fraction(self):
        with pytest.raises(ValueError):
            CrossFeatureDetector(calibration_fraction=1.5)
