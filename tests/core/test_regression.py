"""Regression-based cross-feature analysis tests (§3 generalization)."""

import numpy as np
import pytest

from repro.core.regression import RegressionCrossFeatureModel
from repro.core.threshold import select_threshold


def linear_normal(n=300, seed=0):
    """Features linearly entangled (what OLS sub-models can capture)."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(1, 10, size=n)
    return np.column_stack([
        base + rng.normal(0, 0.05, n),
        3 * base + 2 + rng.normal(0, 0.1, n),
        0.5 * base + rng.normal(0, 0.05, n),
    ])


class TestFit:
    def test_one_model_per_feature(self):
        model = RegressionCrossFeatureModel().fit(linear_normal())
        assert model.n_models == 3

    def test_needs_more_rows_than_features(self):
        with pytest.raises(ValueError):
            RegressionCrossFeatureModel().fit(np.ones((3, 5)))

    def test_needs_two_features(self):
        with pytest.raises(ValueError):
            RegressionCrossFeatureModel().fit(np.ones((10, 1)))

    def test_predictions_recover_linear_structure(self):
        model = RegressionCrossFeatureModel().fit(linear_normal())
        X = linear_normal(seed=1)
        preds = model.predictions(X)
        np.testing.assert_allclose(preds[:, 1], X[:, 1], rtol=0.1)

    def test_collinear_features_handled(self):
        """Ridge keeps duplicated columns from blowing up the solve."""
        X = linear_normal()
        X = np.column_stack([X, X[:, 0]])
        model = RegressionCrossFeatureModel().fit(X)
        assert np.isfinite(model.deviation(X)).all()


class TestScoring:
    def test_log_distance_zero_for_perfect_prediction(self):
        X = linear_normal()
        model = RegressionCrossFeatureModel().fit(X)
        d = model.log_distances(X)
        assert d.mean() < 0.2

    def test_anomalies_have_larger_deviation(self):
        model = RegressionCrossFeatureModel().fit(linear_normal())
        normal_dev = model.deviation(linear_normal(seed=2)).mean()
        rng = np.random.default_rng(3)
        anomalies = rng.uniform(1, 30, size=(100, 3))  # correlations broken
        assert model.deviation(anomalies).mean() > normal_dev * 2

    def test_normality_score_is_negated_deviation(self):
        model = RegressionCrossFeatureModel().fit(linear_normal())
        X = linear_normal(seed=4)[:10]
        np.testing.assert_allclose(model.normality_score(X), -model.deviation(X))

    def test_threshold_pipeline_compatible(self):
        """The regression variant plugs into the same threshold logic."""
        model = RegressionCrossFeatureModel().fit(linear_normal())
        normal_scores = model.normality_score(linear_normal(seed=5))
        thr = select_threshold(normal_scores, 0.05)
        rng = np.random.default_rng(6)
        anomalies = rng.uniform(1, 30, size=(50, 3))
        assert (model.normality_score(anomalies) < thr).mean() > 0.6

    def test_zero_values_do_not_crash(self):
        X = linear_normal()
        X[0] = 0.0
        model = RegressionCrossFeatureModel().fit(X)
        assert np.isfinite(model.deviation(X)).all()

    def test_unknown_method_rejected(self):
        model = RegressionCrossFeatureModel().fit(linear_normal())
        with pytest.raises(ValueError):
            model.normality_score(linear_normal()[:2], method="bogus")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RegressionCrossFeatureModel(epsilon=0.0)
        with pytest.raises(ValueError):
            RegressionCrossFeatureModel(ridge=-1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionCrossFeatureModel().predictions(np.ones((2, 3)))
