"""The §3 two-node example must reproduce Tables 1-3 exactly."""

import pytest

from repro.core.illustrative import (
    NORMAL_EVENTS,
    IllustrativeClassifier,
    TwoNodeExample,
)


@pytest.fixture(scope="module")
def example():
    return TwoNodeExample()


class TestTable1:
    def test_four_normal_events(self, example):
        events = example.normal_events()
        assert len(events) == 4
        assert (True, True, True) in events
        assert (True, False, False) in events
        assert (False, False, True) in events
        assert (False, False, False) in events


class TestTable2:
    def test_reachable_submodel(self, example):
        """Table 2(a): sub-model with respect to 'Reachable?'."""
        clf = example.classifiers[0]
        # (Delivered, Cached) -> (prediction, probability)
        assert clf.predict_with_probability((None, True, True)) == (True, 1.0)
        assert clf.predict_with_probability((None, False, False)) == (True, 0.5)
        assert clf.predict_with_probability((None, False, True)) == (False, 1.0)
        assert clf.predict_with_probability((None, True, False)) == (True, 0.5)

    def test_delivered_submodel(self, example):
        """Table 2(b): all four combinations are deterministic."""
        clf = example.classifiers[1]
        assert clf.predict_with_probability((True, None, True)) == (True, 1.0)
        assert clf.predict_with_probability((True, None, False)) == (False, 1.0)
        assert clf.predict_with_probability((False, None, True)) == (False, 1.0)
        assert clf.predict_with_probability((False, None, False)) == (False, 1.0)

    def test_cached_submodel(self, example):
        """Table 2(c)."""
        clf = example.classifiers[2]
        assert clf.predict_with_probability((True, True, None)) == (True, 1.0)
        assert clf.predict_with_probability((True, False, None)) == (False, 1.0)
        assert clf.predict_with_probability((False, False, None)) == (True, 0.5)
        assert clf.predict_with_probability((False, True, None)) == (True, 0.5)


class TestTable3:
    EXPECTED = {
        (True, True, True): ("Normal", 1.0, 1.0),
        (True, False, False): ("Normal", 1.0, 0.83),
        (False, False, True): ("Normal", 1.0, 0.83),
        (False, False, False): ("Normal", 0.33, 0.67),
        (True, True, False): ("Abnormal", 0.33, 0.17),
        (True, False, True): ("Abnormal", 0.0, 0.0),
        (False, True, True): ("Abnormal", 0.33, 0.17),
        (False, True, False): ("Abnormal", 0.0, 0.33),
    }

    def test_every_row_matches_paper(self, example):
        for score in example.all_event_scores():
            cls, mc, ap = self.EXPECTED[score.event]
            assert score.is_normal == (cls == "Normal"), score.event
            assert score.avg_match_count == pytest.approx(mc, abs=0.005), score.event
            assert score.avg_probability == pytest.approx(ap, abs=0.005), score.event

    def test_paper_worked_example(self, example):
        """{True, False, False}: match count 1, probability (1+1+0.5)/3."""
        s = example.score_event((True, False, False))
        assert s.avg_match_count == pytest.approx(1.0)
        assert s.avg_probability == pytest.approx((1 + 1 + 0.5) / 3)

    def test_algorithm3_perfect_algorithm2_one_false_alarm(self, example):
        """The paper's headline for the example: at threshold 0.5,
        Algorithm 3 separates perfectly while Algorithm 2 raises exactly
        one false alarm (on {False, False, False})."""
        errors = example.classify_all(threshold=0.5)
        assert errors == {
            "alg2_false_alarms": 1,
            "alg2_misses": 0,
            "alg3_false_alarms": 0,
            "alg3_misses": 0,
        }

    def test_false_alarm_is_the_fff_event(self, example):
        s = example.score_event((False, False, False))
        assert s.is_normal
        assert s.avg_match_count < 0.5 <= s.avg_probability


class TestIllustrativeClassifier:
    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            IllustrativeClassifier(target=5)

    def test_rules_enumerate_seen_combinations(self):
        clf = IllustrativeClassifier(target=0)
        rules = clf.rules()
        assert len(rules) == 3  # three distinct (Delivered, Cached) combos seen
