"""Trace executor: ordering, determinism, timing, serial fallback."""

from __future__ import annotations

import pytest

import repro.runtime.executor as executor_mod
from repro.features.extraction import extract_features
from repro.runtime.executor import TraceExecutor, TraceTask
from repro.runtime.metrics import RuntimeMetrics
from repro.simulation.scenario import ScenarioConfig

from tests.conftest import small_config


def tiny_config(seed: int) -> ScenarioConfig:
    return small_config(n_nodes=6, duration=100.0, max_connections=5, seed=seed)


def trace_fingerprint(trace) -> tuple:
    """Observables that pin down a trace bit-for-bit for our purposes."""
    features = extract_features(trace, monitor=0, periods=(5.0,), warmup=0.0)
    return (
        trace.data_originated,
        trace.data_delivered,
        tuple(trace.tick_times),
        features.X.tobytes(),
    )


class TestExecutor:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            TraceExecutor(jobs=0)

    def test_empty_batch(self):
        assert TraceExecutor(jobs=4).run([]) == []

    def test_results_preserve_task_order(self):
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6, 7)]
        traces = TraceExecutor(jobs=3).run(tasks)
        for task, trace in zip(tasks, traces):
            assert trace.config.seed == task.config.seed

    def test_parallel_matches_serial(self):
        """The acceptance property: jobs=N and jobs=1 agree bit-for-bit."""
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6, 7)]
        serial = TraceExecutor(jobs=1).run(tasks)
        parallel = TraceExecutor(jobs=3).run(tasks)
        for a, b in zip(serial, parallel):
            assert trace_fingerprint(a) == trace_fingerprint(b)

    def test_metrics_record_each_trace(self):
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6)]
        TraceExecutor(jobs=1, metrics=metrics).run(tasks)
        assert metrics.simulations == 2
        assert sorted(label for label, _ in metrics.trace_seconds) == ["t5", "t6"]
        assert all(seconds >= 0 for _, seconds in metrics.trace_seconds)

    def test_falls_back_to_serial_when_pool_unavailable(self, monkeypatch):
        class NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", NoPool)
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6)]
        traces = TraceExecutor(jobs=2, metrics=metrics).run(tasks)
        assert [t.config.seed for t in traces] == [5, 6]
        assert metrics.fallbacks == 1
        assert metrics.simulations == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_simulation_errors_propagate(self, jobs):
        """Real simulation failures are not swallowed by the fallback."""
        from repro.attacks import BlackholeAttack

        bad = TraceTask(
            tiny_config(5),
            (BlackholeAttack(attacker=99, sessions=[(10.0, 20.0)]),),  # out of range
            "bad",
        )
        with pytest.raises(ValueError, match="attacker id"):
            TraceExecutor(jobs=jobs).run([bad, TraceTask(tiny_config(6), (), "ok")])

    def test_attack_tasks_round_trip(self):
        """Attack compositions survive the (potential) pickle boundary."""
        from repro.attacks import BlackholeAttack

        config = tiny_config(9)
        attacks = (BlackholeAttack(attacker=5, sessions=[(30.0, 60.0)]),)
        serial = TraceExecutor(jobs=1).run([TraceTask(config, attacks, "atk")])
        attacks2 = (BlackholeAttack(attacker=5, sessions=[(30.0, 60.0)]),)
        parallel = TraceExecutor(jobs=2).run(
            [TraceTask(config, attacks2, "atk"), TraceTask(tiny_config(10), (), "n")]
        )
        assert trace_fingerprint(serial[0]) == trace_fingerprint(parallel[0])
        assert serial[0].attack_intervals == [(30.0, 60.0)]
