"""Trace executor: ordering, determinism, supervision, serial fallback."""

from __future__ import annotations

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

import repro.runtime.executor as executor_mod
from repro.features.extraction import extract_features
from repro.runtime.executor import (
    FailureReport,
    SupervisionPolicy,
    TraceExecutor,
    TraceTask,
    _run_trace_task,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.metrics import RuntimeMetrics
from repro.simulation.scenario import ScenarioConfig

from tests.conftest import small_config


@pytest.fixture
def no_backoff(monkeypatch):
    """Skip real backoff sleeps so retry tests run instantly."""
    waits: list[float] = []
    monkeypatch.setattr(executor_mod, "_sleep", waits.append)
    return waits


def tiny_config(seed: int) -> ScenarioConfig:
    return small_config(n_nodes=6, duration=100.0, max_connections=5, seed=seed)


def trace_fingerprint(trace) -> tuple:
    """Observables that pin down a trace bit-for-bit for our purposes."""
    features = extract_features(trace, monitor=0, periods=(5.0,), warmup=0.0)
    return (
        trace.data_originated,
        trace.data_delivered,
        tuple(trace.tick_times),
        features.X.tobytes(),
    )


class TestExecutor:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            TraceExecutor(jobs=0)

    def test_empty_batch(self):
        assert TraceExecutor(jobs=4).run([]) == []

    def test_results_preserve_task_order(self):
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6, 7)]
        traces = TraceExecutor(jobs=3).run(tasks)
        for task, trace in zip(tasks, traces):
            assert trace.config.seed == task.config.seed

    def test_parallel_matches_serial(self):
        """The acceptance property: jobs=N and jobs=1 agree bit-for-bit."""
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6, 7)]
        serial = TraceExecutor(jobs=1).run(tasks)
        parallel = TraceExecutor(jobs=3).run(tasks)
        for a, b in zip(serial, parallel):
            assert trace_fingerprint(a) == trace_fingerprint(b)

    def test_metrics_record_each_trace(self):
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6)]
        TraceExecutor(jobs=1, metrics=metrics).run(tasks)
        assert metrics.simulations == 2
        assert sorted(label for label, _ in metrics.trace_seconds) == ["t5", "t6"]
        assert all(seconds >= 0 for _, seconds in metrics.trace_seconds)

    def test_falls_back_to_serial_when_pool_unavailable(self, monkeypatch):
        class NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", NoPool)
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6)]
        traces = TraceExecutor(jobs=2, metrics=metrics).run(tasks)
        assert [t.config.seed for t in traces] == [5, 6]
        assert metrics.fallbacks == 1
        assert metrics.simulations == 2

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_simulation_errors_surface_as_failure_report(self, jobs, no_backoff):
        """Persistent simulation failures surface as a structured report —
        after retries, and without losing the batch's good results."""
        from repro.attacks import BlackholeAttack

        bad = TraceTask(
            tiny_config(5),
            (BlackholeAttack(attacker=99, sessions=[(10.0, 20.0)]),),  # out of range
            "bad",
        )
        metrics = RuntimeMetrics()
        executor = TraceExecutor(jobs=jobs, metrics=metrics,
                                 policy=SupervisionPolicy(max_retries=1))
        with pytest.raises(FailureReport) as excinfo:
            executor.run([bad, TraceTask(tiny_config(6), (), "ok")])
        report = excinfo.value
        assert "attacker id" in str(report)
        assert report.completed == 1 and report.total == 2
        [failure] = report.task_failures
        assert failure.index == 0
        assert failure.label == "bad"
        assert failure.kind == "error"
        assert failure.attempts == 2  # first attempt + 1 retry
        assert metrics.task_failures == 1
        assert metrics.retries == 1
        assert metrics.simulations == 1  # the good task still completed

    def test_on_result_streams_completions(self):
        """on_result fires once per task, as completions happen."""
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6, 7)]
        flushed: dict[int, object] = {}
        results = TraceExecutor(jobs=1).run(
            tasks, on_result=lambda i, trace: flushed.setdefault(i, trace)
        )
        assert sorted(flushed) == [0, 1, 2]
        for i, trace in flushed.items():
            assert trace is results[i]

    def test_attack_tasks_round_trip(self):
        """Attack compositions survive the (potential) pickle boundary."""
        from repro.attacks import BlackholeAttack

        config = tiny_config(9)
        attacks = (BlackholeAttack(attacker=5, sessions=[(30.0, 60.0)]),)
        serial = TraceExecutor(jobs=1).run([TraceTask(config, attacks, "atk")])
        attacks2 = (BlackholeAttack(attacker=5, sessions=[(30.0, 60.0)]),)
        parallel = TraceExecutor(jobs=2).run(
            [TraceTask(config, attacks2, "atk"), TraceTask(tiny_config(10), (), "n")]
        )
        assert trace_fingerprint(serial[0]) == trace_fingerprint(parallel[0])
        assert serial[0].attack_intervals == [(30.0, 60.0)]


class OneGoodThenBrokenPool:
    """Fake pool: the first submitted task completes, every later future
    breaks — the deterministic skeleton of a worker crash mid-batch."""

    spawned = 0

    def __init__(self, max_workers=None):
        type(self).spawned += 1
        self._first = True

    def submit(self, fn, *args):
        fut = Future()
        if self._first:
            self._first = False
            fut.set_result(fn(*args))
        else:
            fut.set_exception(BrokenProcessPool("worker died"))
        return fut

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class AlwaysBrokenPool(OneGoodThenBrokenPool):
    """Fake pool where every future breaks: nothing parallel ever finishes."""

    def __init__(self, max_workers=None):
        super().__init__(max_workers)
        self._first = False


class TestSupervision:
    def test_pool_break_preserves_completed_results(self, monkeypatch, no_backoff):
        """The double-simulation regression: results computed before the
        pool broke must be reused, never re-simulated (and never counted
        twice in ``record_simulated``)."""
        OneGoodThenBrokenPool.spawned = 0
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", OneGoodThenBrokenPool)
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6, 7)]
        executor = TraceExecutor(jobs=3, metrics=metrics,
                                 policy=SupervisionPolicy(max_pool_respawns=1))
        traces = executor.run(tasks)
        assert [t.config.seed for t in traces] == [5, 6, 7]
        # Each task simulated exactly once across pool attempts + fallback.
        labels = [label for label, _ in metrics.trace_seconds]
        assert sorted(labels) == ["t5", "t6", "t7"]
        assert metrics.simulations == 3
        assert metrics.respawns == 1            # one respawn attempt...
        assert metrics.fallbacks == 1           # ...then serial for the rest
        assert metrics.pool_failures == 1
        # respawn budget: initial pool + one respawn
        assert OneGoodThenBrokenPool.spawned == 2

    def test_respawn_resubmits_only_unfinished_tasks(self, monkeypatch, no_backoff):
        """Innocent tasks requeued by a crash are not charged retries."""
        AlwaysBrokenPool.spawned = 0
        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", AlwaysBrokenPool)
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6)]
        executor = TraceExecutor(jobs=2, metrics=metrics,
                                 policy=SupervisionPolicy(max_pool_respawns=2))
        traces = executor.run(tasks)
        assert [t.config.seed for t in traces] == [5, 6]
        assert metrics.retries == 0             # no task budget charged
        # 2 tasks x (2 respawns + the serial pickup), all uncharged
        assert metrics.requeues == 6
        assert metrics.respawns == 2
        assert metrics.simulations == 2         # all finished serially, once

    def test_transient_fault_is_retried_serially(self, no_backoff):
        """A task that fails once recovers on the retry, bit-identically."""
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6)]
        faulty = TraceExecutor(
            jobs=1, metrics=metrics,
            faults=FaultPlan((FaultSpec("error", 0, (1,)),)),
        )
        traces = faulty.run(tasks)
        clean = TraceExecutor(jobs=1).run(tasks)
        assert metrics.retries == 1
        assert metrics.simulations == 2
        assert no_backoff == [pytest.approx(0.05)]  # one backoff wait
        for a, b in zip(traces, clean):
            assert trace_fingerprint(a) == trace_fingerprint(b)

    def test_retry_budget_exhaustion_fails_with_taxonomy(self, no_backoff):
        """A fault on every submission exhausts the budget and reports."""
        metrics = RuntimeMetrics()
        tasks = [TraceTask(tiny_config(seed), (), f"t{seed}") for seed in (5, 6)]
        executor = TraceExecutor(
            jobs=1, metrics=metrics,
            policy=SupervisionPolicy(max_retries=1),
            faults=FaultPlan((FaultSpec("error", 0, (1, 2, 3, 4)),)),
        )
        with pytest.raises(FailureReport) as excinfo:
            executor.run(tasks)
        report = excinfo.value
        assert report.completed == 1 and report.total == 2
        assert report.task_failures[0].kind == "error"
        assert report.task_failures[0].attempts == 2
        assert "injected task error" in report.task_failures[0].error
        assert metrics.simulations == 1         # the healthy task completed

    def test_exponential_backoff_schedule(self, no_backoff):
        """Backoff doubles per charged attempt, capped by the policy."""
        policy = SupervisionPolicy(max_retries=3, backoff_base=0.1, backoff_cap=0.3)
        executor = TraceExecutor(
            jobs=1, policy=policy,
            faults=FaultPlan((FaultSpec("error", 0, (1, 2, 3)),)),
        )
        executor.run([TraceTask(tiny_config(5), (), "t5")])
        assert no_backoff == [pytest.approx(0.1), pytest.approx(0.2),
                              pytest.approx(0.3)]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisionPolicy(task_timeout=0.0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_pool_respawns=-1)

    def test_worker_fault_spec_travels_through_pickling(self):
        """Fault specs ride into workers: a serial run of the wrapper with
        a spec behaves like the worker-side trip."""
        import pickle as _pickle

        spec = FaultSpec("error", 0, (1,))
        assert _pickle.loads(_pickle.dumps(spec)) == spec
        with pytest.raises(Exception, match="injected task error"):
            _run_trace_task(TraceTask(tiny_config(5), (), "t5"), spec, False)
