"""Fault-injection acceptance tests: every recovery path, deterministically.

The acceptance bar (ISSUE 2): an injected worker crash, a task timeout
and a corrupt cache entry must each recover with only the affected tasks
re-run — asserted via :class:`RuntimeMetrics` counters — and produce
bit-identical :class:`DetectionResult`\\ s to a fault-free ``jobs=1`` run;
a killed-then-resumed sweep must re-simulate zero already-journaled
traces.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentPlan
from repro.runtime import (
    FailureReport,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    Session,
)

TINY_PLAN = ExperimentPlan(
    n_nodes=6,
    duration=120.0,
    max_connections=5,
    train_seeds=(1,),
    calibration_seed=2,
    normal_seeds=(3,),
    attack_seeds=(4,),
    warmup=20.0,
    periods=(5.0, 30.0),
)
N_TRACES = 4  # train + calibration + normal + attack


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The fault-free jobs=1 ground truth every faulty run must match."""
    session = Session(cache_dir=tmp_path_factory.mktemp("baseline"), jobs=1)
    return session.detect(TINY_PLAN, classifier="nbc")


def assert_identical(result, baseline):
    assert result.scores.tobytes() == baseline.scores.tobytes()
    assert result.auc == baseline.auc
    assert result.threshold == baseline.threshold


class TestFaultPlan:
    def test_parse_mini_language(self):
        plan = FaultPlan.parse("crash:2,hang:0:1+2,cache-enospc:1")
        assert plan.specs == (
            FaultSpec("crash", 2, (1,)),
            FaultSpec("hang", 0, (1, 2)),
            FaultSpec("cache-enospc", 1, (1,)),
        )
        assert plan.sim_fault(2, 1).kind == "crash"
        assert plan.sim_fault(2, 2) is None      # transient: retry is clean
        assert plan.sim_fault(0, 2).kind == "hang"
        assert plan.cache_fault(1).kind == "cache-enospc"
        assert plan.cache_fault(0) is None

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:two")
        with pytest.raises(ValueError):
            FaultPlan.parse("segfault:1")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash:1:2:3:4")

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(seed=7, n_tasks=10, count=3)
        b = FaultPlan.random(seed=7, n_tasks=10, count=3)
        assert a == b
        assert len(a.specs) == 3
        assert all(s.kind != "hang" for s in a.specs)  # needs a timeout to end

    def test_specs_validate(self):
        with pytest.raises(ValueError):
            FaultSpec("nonsense", 0)
        with pytest.raises(ValueError):
            FaultSpec("crash", -1)


class TestWorkerCrashRecovery:
    def test_crash_recovers_bit_identically(self, tmp_path, baseline):
        """A worker killed mid-task (os._exit in the pool) costs one pool
        respawn; completed traces are kept and the numbers don't move."""
        session = Session(
            cache_dir=tmp_path, jobs=2,
            faults=FaultPlan((FaultSpec("crash", 0, (1,)),)),
        )
        result = session.detect(TINY_PLAN, classifier="nbc")
        assert_identical(result, baseline)
        assert session.metrics.respawns == 1
        assert session.metrics.task_failures == 0
        # Every trace was ultimately simulated exactly once — completed
        # work was never thrown away and re-counted.
        labels = [label for label, _ in session.metrics.trace_seconds]
        assert sorted(labels) == sorted(set(labels))
        assert session.metrics.simulations == N_TRACES

    def test_crash_in_serial_mode_degrades_to_retry(self, tmp_path, baseline):
        """Without a pool there is no process to kill: the crash fault
        raises in-process and the supervisor retries it."""
        session = Session(
            cache_dir=tmp_path, jobs=1,
            faults=FaultPlan((FaultSpec("crash", 0, (1,)),)),
        )
        result = session.detect(TINY_PLAN, classifier="nbc")
        assert_identical(result, baseline)
        assert session.metrics.retries == 1
        assert session.metrics.simulations == N_TRACES


class TestTimeoutRecovery:
    def test_hung_task_is_cancelled_and_requeued(self, tmp_path, baseline):
        """A task sleeping far past the timeout is cancelled (pool kill),
        charged a retry, and requeued; its retry completes cleanly."""
        session = Session(
            cache_dir=tmp_path, jobs=2, task_timeout=5.0,
            faults=FaultPlan((FaultSpec("hang", 0, (1,), seconds=120.0),)),
        )
        result = session.detect(TINY_PLAN, classifier="nbc")
        assert_identical(result, baseline)
        assert session.metrics.timeouts == 1
        assert session.metrics.retries >= 1      # the hung task's requeue
        assert session.metrics.respawns == 1     # hung worker -> fresh pool
        assert session.metrics.task_failures == 0
        labels = [label for label, _ in session.metrics.trace_seconds]
        assert sorted(labels) == sorted(set(labels))
        assert session.metrics.simulations == N_TRACES

    def test_persistent_hang_exhausts_budget_and_reports(self, tmp_path):
        """A task that hangs on every submission fails with kind=timeout
        after its budget — the sweep reports instead of stalling forever."""
        session = Session(
            cache_dir=tmp_path, jobs=2, task_timeout=2.0, max_retries=0,
            faults=FaultPlan((FaultSpec("hang", 0, (1, 2, 3), seconds=60.0),)),
        )
        with pytest.raises(FailureReport) as excinfo:
            session.bundle(TINY_PLAN)
        report = excinfo.value
        assert any(f.kind == "timeout" for f in report.task_failures)
        assert report.completed == N_TRACES - 1
        assert session.metrics.timeouts >= 1


class TestCorruptCacheRecovery:
    def test_corrupt_entry_resimulates_only_affected_task(self, tmp_path, baseline):
        """A torn cache write is discovered on the next read, deleted, and
        only that one trace re-simulated — bit-identically."""
        writer = Session(
            cache_dir=tmp_path, jobs=1,
            faults=FaultPlan((FaultSpec("cache-corrupt", 0),)),
        )
        writer.bundle(TINY_PLAN)
        assert writer.metrics.simulations == N_TRACES

        reader = Session(cache_dir=tmp_path, jobs=1)
        result = reader.detect(TINY_PLAN, classifier="nbc")
        assert_identical(result, baseline)
        assert reader.metrics.simulations == 1          # only the torn entry
        assert reader.metrics.cache_hits == N_TRACES - 1
        assert reader.metrics.cache_misses == 1

    def test_enospc_degrades_to_cache_off_not_crash(self, tmp_path, baseline):
        """Every write hitting a full disk leaves the run correct; after
        the failure threshold the cache stops attempting writes."""
        session = Session(
            cache_dir=tmp_path, jobs=1,
            faults=FaultPlan(tuple(
                FaultSpec("cache-enospc", i) for i in range(N_TRACES)
            )),
        )
        result = session.detect(TINY_PLAN, classifier="nbc")
        assert_identical(result, baseline)
        assert session.metrics.cache_write_failures == 3  # then writes stop
        assert session.cache.writes_disabled
        assert list(tmp_path.glob("*.pkl")) == []


class TestResume:
    def test_killed_sweep_resumes_from_journal(self, tmp_path, baseline):
        """A sweep that dies partway journals its completed traces; the
        next run re-simulates zero journaled traces and matches bit-for-bit."""
        dying = Session(
            cache_dir=tmp_path, jobs=1, max_retries=0,
            faults=FaultPlan((FaultSpec("error", 3, (1,)),)),
        )
        with pytest.raises(FailureReport) as excinfo:
            dying.bundle(TINY_PLAN)
        assert excinfo.value.completed == N_TRACES - 1
        assert len(dying.journal.load()) == N_TRACES - 1

        resumed = Session(cache_dir=tmp_path, jobs=1)
        result = resumed.detect(TINY_PLAN, classifier="nbc")
        assert_identical(result, baseline)
        assert resumed.metrics.resumed == N_TRACES - 1  # journaled: reused
        assert resumed.metrics.simulations == 1         # unjournaled: re-run
        assert resumed.metrics.cache_hits == N_TRACES - 1

    def test_results_flush_incrementally_not_at_batch_end(self, tmp_path):
        """Completed traces land in the cache as they finish — a fatal
        failure later in the batch cannot lose them."""
        session = Session(
            cache_dir=tmp_path, jobs=1, max_retries=0,
            faults=FaultPlan((FaultSpec("error", 2, (1,)),)),
        )
        with pytest.raises(FailureReport):
            session.bundle(TINY_PLAN)
        # Every task except the poisoned one completed — including task 3,
        # *after* the failure — and each was flushed the moment it finished.
        assert len(list(tmp_path.glob("*.pkl"))) == N_TRACES - 1

    def test_injected_fault_exception_is_distinguishable(self):
        with pytest.raises(InjectedFault):
            from repro.runtime.faults import trip_sim_fault

            trip_sim_fault(FaultSpec("error", 0), in_pool=False)
