"""Unit tests for the benchmark harness plumbing and stage metrics."""

import json

import pytest

from repro.runtime.bench import _entry, write_bench
from repro.runtime.metrics import RuntimeMetrics


class TestBenchEntries:
    def test_entry_speedup(self):
        e = _entry("x", 2.0, 0.5, n_nodes=30)
        assert e["speedup"] == 4.0
        assert e["n_nodes"] == 30

    def test_entry_zero_optimized(self):
        assert _entry("x", 1.0, 0.0)["speedup"] == float("inf")

    def test_write_bench_round_trip(self, tmp_path):
        payload = {"suite": "model", "entries": [_entry("a", 1.0, 0.5)]}
        path = tmp_path / "BENCH_model.json"
        write_bench(payload, path)
        assert json.loads(path.read_text()) == payload
        # Stable output: keys sorted, trailing newline (diff-friendly).
        assert path.read_text().endswith("\n")


class TestStageMetrics:
    def test_record_stage_accumulates(self):
        m = RuntimeMetrics()
        m.record_stage("fit", 1.5)
        m.record_stage("fit", 0.5)
        m.record_stage("score", 0.25)
        assert m.stage_seconds == {"fit": 2.0, "score": 0.25}

    def test_stage_event_emitted(self):
        events = []
        m = RuntimeMetrics(on_event=events.append)
        m.record_stage("simulate", 3.0)
        assert events[-1].kind == "stage"
        assert events[-1].label == "simulate"
        assert events[-1].seconds == 3.0

    def test_summary_includes_stages(self):
        m = RuntimeMetrics()
        m.record_stage("extract", 1.0)
        assert "extract=1.0s" in m.summary()

    def test_reset_clears_stages(self):
        m = RuntimeMetrics()
        m.record_stage("fit", 1.0)
        m.reset()
        assert m.stage_seconds == {}


class TestModelBenchQuick:
    def test_quick_model_bench_runs_and_verifies(self):
        """The quick model suite asserts scoring *and* fit equivalence
        internally (batched-vs-rowwise probabilities, tree identity)."""
        from repro.runtime.bench import run_model_bench

        payload = run_model_bench(quick=True)
        kinds = {e["kind"] for e in payload["entries"]}
        assert kinds == {"scoring", "training"}
        for e in payload["entries"]:
            assert e["optimized_seconds"] > 0
        names = {e["name"] for e in payload["entries"]}
        assert "fit/ensemble" in names
        fit_entry = next(e for e in payload["entries"] if e["name"] == "fit/ensemble")
        # The identity assert ran in-harness; the entry records the contract.
        assert "identical" in fit_entry["identity"]


class TestStreamChaosBenchQuick:
    def test_quick_stream_chaos_bench_runs_and_verifies(self):
        """The quick chaos suite asserts the kill-anywhere resume contract
        and the corrupt-checkpoint fingerprint check in-harness; the
        entries carry the survival stats."""
        from repro.runtime.bench import run_stream_chaos_bench

        payload = run_stream_chaos_bench(quick=True)
        assert payload["suite"] == "stream-chaos"
        names = {e["name"] for e in payload["entries"]}
        assert names == {"stream/resume", "fleet/chaos"}
        for e in payload["entries"]:
            assert e["kind"] == "durability"
            assert e["optimized_seconds"] > 0
        chaos = next(e for e in payload["entries"] if e["name"] == "fleet/chaos")
        # The injected chaos actually landed and was survived.
        assert chaos["quarantined"] > 0
        assert chaos["sealed"]  # the crashed lane was sealed, with a reason
        assert set(chaos["sealed"].values()) <= {"stalled", "crashed"}


class TestFleetBenchQuick:
    def test_quick_fleet_bench_runs_and_verifies(self):
        """The quick fleet suite asserts per-lane bit-identity against the
        one-shot batch score matrix before any timing is reported."""
        from repro.runtime.bench import run_fleet_bench

        payload = run_fleet_bench(quick=True)
        assert payload["suite"] == "fleet"
        names = {e["name"] for e in payload["entries"]}
        assert names == {"fleet/1streams", "fleet/64streams", "fleet/1024streams"}
        for e in payload["entries"]:
            assert e["kind"] == "multiplex"
            assert e["windows"] == e["n_streams"] * e["ticks"]
            assert e["optimized_seconds"] > 0
            assert "bit-identical" in e["identity"]
            # The capped baseline is honest about extrapolating.
            assert e["baseline_extrapolated"] == (
                e["baseline_measured_windows"] < e["windows"]
            )
