"""Unit tests for the profiling observability layer (bench --profile
tables and the :class:`Session` stage hook)."""

import cProfile

import pytest

from repro.runtime.profiling import (
    StageProfiler,
    profile_call,
    profile_top,
    render_profile,
)
from repro.runtime.session import Session


def _busy(n=50_000):
    return sum(range(n))


class TestProfileTop:
    def test_rows_sorted_by_cumulative(self):
        _result, rows = profile_call(_busy)
        assert rows, "profile produced no rows"
        cums = [r["cumulative_seconds"] for r in rows]
        assert cums == sorted(cums, reverse=True)

    def test_row_shape(self):
        _result, rows = profile_call(_busy)
        for row in rows:
            assert set(row) == {
                "function", "ncalls", "primitive_calls",
                "self_seconds", "cumulative_seconds",
            }
            assert row["ncalls"] >= row["primitive_calls"] >= 1

    def test_top_truncates(self):
        profiler = cProfile.Profile()
        profiler.enable()
        _busy()
        profiler.disable()
        assert len(profile_top(profiler, top=2)) <= 2

    def test_profile_call_returns_result(self):
        result, _rows = profile_call(_busy, 10)
        assert result == sum(range(10))


class TestRenderProfile:
    def test_render_is_aligned_text(self):
        _result, rows = profile_call(_busy)
        text = render_profile(rows)
        lines = text.splitlines()
        assert "function" in lines[0] and "cum(s)" in lines[0]
        # one header + one line per row
        assert len(lines) == 1 + len(rows)

    def test_render_json_round_trip(self):
        """Rows survive a JSON round trip (they ride BENCH payloads)."""
        import json

        _result, rows = profile_call(_busy)
        assert json.loads(json.dumps(rows)) == rows


class TestStageProfiler:
    def test_stages_accumulate_by_name(self):
        prof = StageProfiler()
        with prof.stage("fit"):
            _busy()
        with prof.stage("fit"):
            _busy()
        with prof.stage("score"):
            _busy()
        assert prof.stages == ["fit", "score"]
        assert prof.table("fit")
        assert prof.table("missing") == []

    def test_render_all_stages(self):
        prof = StageProfiler()
        with prof.stage("simulate"):
            _busy()
        text = prof.render()
        assert "stage simulate:" in text

    def test_render_empty(self):
        assert StageProfiler().render() == "(no stages profiled)"


class TestSessionStageHook:
    def test_disabled_by_default(self, tmp_path):
        session = Session(cache_dir=tmp_path, profile_stages=False)
        assert session.profiler is None
        with session._stage("fit") as timer:
            _busy()
        assert timer.elapsed > 0
        assert session.metrics.stage_seconds["fit"] == timer.elapsed

    def test_enabled_collects_tables(self, tmp_path):
        session = Session(cache_dir=tmp_path, profile_stages=True)
        with session._stage("fit"):
            _busy()
        assert session.profiler is not None
        assert session.profiler.stages == ["fit"]
        assert "fit" in session.metrics.stage_seconds

    def test_env_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_STAGES", "1")
        assert Session(cache_dir=tmp_path).profiler is not None
        monkeypatch.setenv("REPRO_PROFILE_STAGES", "0")
        assert Session(cache_dir=tmp_path).profiler is None

    def test_stage_hook_fires_in_pipeline(self, tmp_path):
        """An end-to-end bundle() records simulate/extract stage tables."""
        from repro.eval.experiments import ExperimentPlan

        plan = ExperimentPlan(
            protocol="aodv",
            n_nodes=10,
            duration=10.0,
            max_connections=5,
            train_seeds=(1,),
            calibration_seed=2,
            normal_seeds=(3,),
            attack_seeds=(4,),
        )
        session = Session(cache_dir=tmp_path, profile_stages=True)
        session.bundle(plan)
        assert "simulate" in session.profiler.stages
        assert "extract" in session.profiler.stages
        assert render_profile(session.profiler.table("simulate"))
