"""Session facade: caching round-trips, determinism, sweeps, legacy API."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.eval.experiments import ExperimentPlan, plan_sim_key
from repro.runtime import RuntimeMetrics, Session, TraceEvent

TINY_PLAN = ExperimentPlan(
    n_nodes=6,
    duration=120.0,
    max_connections=5,
    train_seeds=(1,),
    calibration_seed=2,
    normal_seeds=(3,),
    attack_seeds=(4,),
    warmup=20.0,
    periods=(5.0, 30.0),
)
N_TRACES = 4  # train + calibration + normal + attack


def bundle_arrays(bundle):
    datasets = [bundle.train, bundle.calibration,
                *bundle.normal_evals, *bundle.abnormal_evals]
    return [(ds.X, ds.times, ds.labels) for ds in datasets]


def assert_bundles_identical(a, b):
    for (xa, ta, la), (xb, tb, lb) in zip(bundle_arrays(a), bundle_arrays(b)):
        assert xa.tobytes() == xb.tobytes()  # byte-identical, not just close
        assert np.array_equal(ta, tb)
        assert np.array_equal(la, lb)


class TestCacheRoundTrip:
    def test_warm_session_simulates_nothing_and_matches(self, tmp_path):
        cold = Session(cache_dir=tmp_path, jobs=1)
        fresh = cold.bundle(TINY_PLAN)
        assert cold.metrics.simulations == N_TRACES
        assert cold.metrics.cache_misses == N_TRACES
        assert cold.metrics.cache_hits == 0

        warm = Session(cache_dir=tmp_path, jobs=1)
        loaded = warm.bundle(TINY_PLAN)
        assert warm.metrics.simulations == 0  # zero simulations on warm start
        assert warm.metrics.cache_hits == N_TRACES
        assert_bundles_identical(fresh, loaded)

    def test_detection_scores_identical_from_disk(self, tmp_path):
        r1 = Session(cache_dir=tmp_path).detect(TINY_PLAN, classifier="nbc")
        r2 = Session(cache_dir=tmp_path).detect(TINY_PLAN, classifier="nbc")
        assert r1.scores.tobytes() == r2.scores.tobytes()
        assert r1.auc == r2.auc
        assert r1.threshold == r2.threshold

    def test_corrupt_cache_falls_back_to_simulation(self, tmp_path):
        cold = Session(cache_dir=tmp_path, jobs=1)
        fresh = cold.bundle(TINY_PLAN)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"garbage")
        healed = Session(cache_dir=tmp_path, jobs=1)
        again = healed.bundle(TINY_PLAN)
        assert healed.metrics.simulations == N_TRACES  # all re-simulated
        assert healed.metrics.cache_hits == 0
        assert_bundles_identical(fresh, again)

    def test_cache_disabled_still_memoises_in_memory(self, tmp_path):
        session = Session(cache_dir=tmp_path, cache=False)
        a = session.bundle(TINY_PLAN)
        b = session.bundle(TINY_PLAN)
        assert a is b
        assert session.metrics.cache_hits == session.metrics.cache_misses == 0
        assert list(tmp_path.glob("*.pkl")) == []


class TestDeterminism:
    def test_parallel_and_serial_sessions_agree(self, tmp_path):
        serial = Session(cache_dir=tmp_path / "s", jobs=1)
        parallel = Session(cache_dir=tmp_path / "p", jobs=4)
        assert_bundles_identical(serial.bundle(TINY_PLAN), parallel.bundle(TINY_PLAN))
        rs = serial.detect(TINY_PLAN, classifier="nbc")
        rp = parallel.detect(TINY_PLAN, classifier="nbc")
        assert rs.auc == rp.auc
        assert rs.threshold == rp.threshold
        assert rs.scores.tobytes() == rp.scores.tobytes()


class TestSessionSharing:
    def test_extraction_knobs_share_simulations(self, tmp_path):
        from dataclasses import replace

        session = Session(cache_dir=tmp_path)
        a = session.raw_traces(TINY_PLAN)
        b = session.raw_traces(replace(TINY_PLAN, warmup=0.0, monitor=2))
        assert a.train[0] is b.train[0]
        assert session.metrics.simulations == N_TRACES

    def test_sim_key_normalises_extraction_fields_only(self):
        from dataclasses import replace

        assert plan_sim_key(TINY_PLAN) == plan_sim_key(
            replace(TINY_PLAN, warmup=0.0, monitor=3, periods=(60.0,))
        )
        assert plan_sim_key(TINY_PLAN) != plan_sim_key(
            replace(TINY_PLAN, duration=150.0)
        )

    def test_monitor_override_does_not_resimulate(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        b0 = session.bundle(TINY_PLAN)
        b2 = session.bundle(TINY_PLAN, monitor=2)
        assert session.metrics.simulations == N_TRACES
        assert b2.train.monitor == 2
        assert b0.train.monitor == TINY_PLAN.monitor


class TestSweep:
    def test_mapping_sweep_shares_fanout(self, tmp_path):
        from dataclasses import replace

        plans = {
            "aodv": TINY_PLAN,
            "dsr": replace(TINY_PLAN, protocol="dsr"),
        }
        session = Session(cache_dir=tmp_path, jobs=2)
        results = session.sweep(plans, classifier="nbc")
        assert set(results) == {"aodv", "dsr"}
        assert session.metrics.simulations == 2 * N_TRACES
        assert results["aodv"].auc == session.detect(TINY_PLAN, classifier="nbc").auc

    def test_sequence_sweep_returns_ordered_list(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        results = session.sweep([TINY_PLAN], classifier="nbc")
        assert len(results) == 1
        assert results[0].plan == TINY_PLAN


class TestMetricsHook:
    def test_progress_events_stream_to_callback(self, tmp_path):
        events: list[TraceEvent] = []
        session = Session(cache_dir=tmp_path, jobs=1,
                          metrics=RuntimeMetrics(on_event=events.append))
        session.bundle(TINY_PLAN)
        kinds = [e.kind for e in events]
        assert kinds.count("cache_miss") == N_TRACES
        assert kinds.count("simulated") == N_TRACES
        simulated = [e for e in events if e.kind == "simulated"]
        assert all(e.seconds >= 0 for e in simulated)
        assert any("attack" in e.label for e in simulated)


class TestRemovedLegacyWrappers:
    """The pre-Session helpers are gone; importing them names the migration."""

    @pytest.mark.parametrize("name", ["cached_bundle", "cached_result",
                                      "simulate_bundle"])
    def test_removed_helper_import_names_the_replacement(self, name):
        import repro.eval.experiments as experiments

        with pytest.raises(ImportError, match="Session"):
            getattr(experiments, name)

    def test_from_import_raises_import_error_too(self):
        with pytest.raises(ImportError, match="Session"):
            from repro.eval.experiments import cached_bundle  # noqa: F401

    def test_unknown_attribute_still_raises_attribute_error(self):
        import repro.eval.experiments as experiments

        with pytest.raises(AttributeError, match="no attribute"):
            experiments.not_a_helper

    def test_surviving_helpers_share_the_default_session(self):
        from repro.eval.experiments import cached_raw_traces
        from repro.runtime import default_session

        raw = cached_raw_traces(TINY_PLAN)
        again = default_session().raw_traces(TINY_PLAN)
        assert raw.train[0] is again.train[0]  # same memoised simulations


class TestRuntimeConfiguration:
    def test_invalid_env_jobs_warns_with_value(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="'many'"):
            session = Session(cache_dir=tmp_path)
        assert session.jobs == 1

    def test_nonpositive_env_jobs_warns_with_value(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.warns(RuntimeWarning, match="'0'"):
            session = Session(cache_dir=tmp_path)
        assert session.jobs == 1

    def test_valid_env_jobs_is_silent(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            session = Session(cache_dir=tmp_path)
        assert session.jobs == 3

    def test_task_key_without_cache_raises_runtime_error(self, tmp_path):
        """An explicit error, not an assert — asserts vanish under -O."""
        from repro.runtime.executor import TraceTask
        from tests.conftest import small_config

        session = Session(cache_dir=tmp_path, cache=False)
        with pytest.raises(RuntimeError, match="cache=False"):
            session._task_key(TraceTask(small_config(), (), "t"))

    def test_timeout_and_retry_knobs_reach_the_policy(self, tmp_path):
        session = Session(cache_dir=tmp_path, task_timeout=7.5, max_retries=5)
        assert session.policy.task_timeout == 7.5
        assert session.policy.max_retries == 5
        assert session.executor.policy is session.policy

    def test_prefetch_deduplicates_equivalent_plans(self, tmp_path):
        """Many extraction-only variants of one sim key collapse to a
        single fan-out (and the dedup scan is not quadratic)."""
        from dataclasses import replace

        session = Session(cache_dir=tmp_path, jobs=1)
        variants = [replace(TINY_PLAN, warmup=float(w)) for w in range(30)]
        session.prefetch(variants)
        assert session.metrics.simulations == N_TRACES


class TestJournal:
    def test_clean_run_journals_every_trace(self, tmp_path):
        session = Session(cache_dir=tmp_path, jobs=1)
        session.bundle(TINY_PLAN)
        assert len(session.journal.load()) == N_TRACES

    def test_warm_session_counts_resumed_traces(self, tmp_path):
        Session(cache_dir=tmp_path, jobs=1).bundle(TINY_PLAN)
        warm = Session(cache_dir=tmp_path, jobs=1)
        warm.bundle(TINY_PLAN)
        assert warm.metrics.resumed == N_TRACES
        assert warm.metrics.simulations == 0

    def test_within_session_hits_are_not_resumed(self, tmp_path):
        """`resumed` means recovered from a *previous* run's journal —
        re-reading a trace this session just wrote is a plain hit."""
        session = Session(cache_dir=tmp_path, jobs=1)
        session.bundle(TINY_PLAN)
        session._raw.clear()  # force the cache path, not the memos
        session._bundles.clear()
        session.bundle(TINY_PLAN)
        assert session.metrics.cache_hits == N_TRACES
        assert session.metrics.resumed == 0

    def test_no_cache_session_has_no_journal(self, tmp_path):
        session = Session(cache_dir=tmp_path, cache=False)
        assert session.journal is None
        session.bundle(TINY_PLAN)
        assert not (tmp_path / "sweep.journal").exists()
