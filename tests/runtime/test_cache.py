"""Artifact cache: keying, round-trips, corruption tolerance, eviction."""

from __future__ import annotations

import os
import time
from dataclasses import replace

import pytest

from repro.runtime.cache import (
    ArtifactCache,
    attack_signature,
    canonicalize,
    code_version,
    default_cache_dir,
    stable_key,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.simulation.scenario import ScenarioConfig


class TestStableKey:
    def test_deterministic_across_calls(self):
        cfg = ScenarioConfig(n_nodes=8, duration=100.0)
        assert stable_key(("trace", cfg)) == stable_key(("trace", cfg))

    def test_equal_configs_share_keys(self):
        a = ScenarioConfig(n_nodes=8, duration=100.0)
        b = ScenarioConfig(n_nodes=8, duration=100.0)
        assert a is not b
        assert stable_key(a) == stable_key(b)

    def test_any_field_change_changes_key(self):
        base = ScenarioConfig(n_nodes=8, duration=100.0)
        for other in (
            replace(base, seed=2),
            replace(base, duration=101.0),
            replace(base, protocol="dsr"),
            replace(base, loss_rate=0.01),
        ):
            assert stable_key(other) != stable_key(base)

    def test_code_version_participates(self):
        cfg = ScenarioConfig()
        assert stable_key(cfg, version="aaaa") != stable_key(cfg, version="bbbb")

    def test_code_version_is_stable_hex(self):
        v = code_version()
        assert v == code_version()
        int(v, 16)  # hex digest prefix

    def test_uncanonicalisable_objects_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_float_canonical_form_round_trips(self):
        assert canonicalize(0.1) == format(0.1, ".17g")
        assert float(canonicalize(1 / 3)) == 1 / 3


class TestAttackSignature:
    def test_signature_ignores_runtime_wiring(self):
        from repro.attacks import BlackholeAttack

        a = BlackholeAttack(attacker=5, sessions=[(10.0, 20.0)])
        b = BlackholeAttack(attacker=5, sessions=[(10.0, 20.0)])
        b.sim = object()  # pretend b was installed
        assert attack_signature(a) == attack_signature(b)

    def test_signature_sees_composition_changes(self):
        from repro.attacks import DropMode, PacketDroppingAttack

        a = PacketDroppingAttack(attacker=5, sessions=[(10.0, 20.0)],
                                 mode=DropMode.CONSTANT)
        b = PacketDroppingAttack(attacker=5, sessions=[(10.0, 20.0)],
                                 mode=DropMode.RANDOM, drop_prob=0.3)
        assert attack_signature(a) != attack_signature(b)


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key(("unit", 1))
        assert cache.get(key) is None
        assert cache.put(key, {"payload": [1, 2, 3]})
        assert cache.get(key) == {"payload": [1, 2, 3]}

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("corrupt-me")
        cache.put(key, "fine")
        path = cache._path(key)
        path.write_bytes(b"\x00not a pickle at all")
        assert cache.get(key) is None
        assert not path.exists()  # the bad entry was deleted
        cache.put(key, "fresh")  # slot is usable again
        assert cache.get(key) == "fresh"

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("truncate-me")
        cache.put(key, list(range(1000)))
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:10])  # simulate a killed writer
        assert cache.get(key) is None

    def test_entry_count_eviction_drops_oldest(self, tmp_path):
        metrics = RuntimeMetrics()
        cache = ArtifactCache(tmp_path, max_entries=2, metrics=metrics)
        keys = [cache.key(f"entry-{i}") for i in range(3)]
        now = time.time()
        cache.put(keys[0], 0)
        os.utime(cache._path(keys[0]), (now - 300, now - 300))
        cache.put(keys[1], 1)
        os.utime(cache._path(keys[1]), (now - 200, now - 200))
        cache.put(keys[2], 2)  # exceeds max_entries: oldest must go
        n, _ = cache.stats()
        assert n == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) == 2
        assert metrics.evictions == 1

    def test_byte_budget_eviction(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1, max_entries=100)
        cache.put(cache.key("a"), "x" * 4096)
        cache.put(cache.key("b"), "y" * 4096)
        n, size = cache.stats()
        assert n <= 1  # over-budget entries were dropped

    def test_hits_refresh_lru_position(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_entries=2)
        k1, k2, k3 = (cache.key(i) for i in range(3))
        now = time.time()
        cache.put(k1, 1)
        os.utime(cache._path(k1), (now - 60, now - 60))
        cache.put(k2, 2)
        os.utime(cache._path(k2), (now - 30, now - 30))
        assert cache.get(k1) == 1  # touch k1: now newer than k2
        cache.put(k3, 3)
        assert cache.get(k2) is None  # k2 was the LRU entry
        assert cache.get(k1) == 1

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put(cache.key(i), i)
        assert cache.clear() == 3
        assert cache.stats() == (0, 0)

    def test_env_var_controls_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        assert default_cache_dir() == tmp_path / "via-env"
        cache = ArtifactCache()
        assert cache.dir == tmp_path / "via-env"
        assert cache.dir.is_dir()
