"""Artifact cache: keying, round-trips, corruption tolerance, eviction."""

from __future__ import annotations

import os
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.runtime.cache import (
    ArtifactCache,
    ResumeJournal,
    attack_signature,
    canonicalize,
    code_version,
    default_cache_dir,
    stable_key,
)
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.metrics import RuntimeMetrics
from repro.simulation.scenario import ScenarioConfig


class TestStableKey:
    def test_deterministic_across_calls(self):
        cfg = ScenarioConfig(n_nodes=8, duration=100.0)
        assert stable_key(("trace", cfg)) == stable_key(("trace", cfg))

    def test_equal_configs_share_keys(self):
        a = ScenarioConfig(n_nodes=8, duration=100.0)
        b = ScenarioConfig(n_nodes=8, duration=100.0)
        assert a is not b
        assert stable_key(a) == stable_key(b)

    def test_any_field_change_changes_key(self):
        base = ScenarioConfig(n_nodes=8, duration=100.0)
        for other in (
            replace(base, seed=2),
            replace(base, duration=101.0),
            replace(base, protocol="dsr"),
            replace(base, loss_rate=0.01),
        ):
            assert stable_key(other) != stable_key(base)

    def test_code_version_participates(self):
        cfg = ScenarioConfig()
        assert stable_key(cfg, version="aaaa") != stable_key(cfg, version="bbbb")

    def test_code_version_is_stable_hex(self):
        v = code_version()
        assert v == code_version()
        int(v, 16)  # hex digest prefix

    def test_uncanonicalisable_objects_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_float_canonical_form_round_trips(self):
        assert canonicalize(0.1) == format(0.1, ".17g")
        assert float(canonicalize(1 / 3)) == 1 / 3


class TestAttackSignature:
    def test_signature_ignores_runtime_wiring(self):
        from repro.attacks import BlackholeAttack

        a = BlackholeAttack(attacker=5, sessions=[(10.0, 20.0)])
        b = BlackholeAttack(attacker=5, sessions=[(10.0, 20.0)])
        b.sim = object()  # pretend b was installed
        assert attack_signature(a) == attack_signature(b)

    def test_signature_sees_composition_changes(self):
        from repro.attacks import DropMode, PacketDroppingAttack

        a = PacketDroppingAttack(attacker=5, sessions=[(10.0, 20.0)],
                                 mode=DropMode.CONSTANT)
        b = PacketDroppingAttack(attacker=5, sessions=[(10.0, 20.0)],
                                 mode=DropMode.RANDOM, drop_prob=0.3)
        assert attack_signature(a) != attack_signature(b)


class TestArtifactCache:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key(("unit", 1))
        assert cache.get(key) is None
        assert cache.put(key, {"payload": [1, 2, 3]})
        assert cache.get(key) == {"payload": [1, 2, 3]}

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("corrupt-me")
        cache.put(key, "fine")
        path = cache._path(key)
        path.write_bytes(b"\x00not a pickle at all")
        assert cache.get(key) is None
        assert not path.exists()  # the bad entry was deleted
        cache.put(key, "fresh")  # slot is usable again
        assert cache.get(key) == "fresh"

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("truncate-me")
        cache.put(key, list(range(1000)))
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:10])  # simulate a killed writer
        assert cache.get(key) is None

    def test_entry_count_eviction_drops_oldest(self, tmp_path):
        metrics = RuntimeMetrics()
        cache = ArtifactCache(tmp_path, max_entries=2, metrics=metrics)
        keys = [cache.key(f"entry-{i}") for i in range(3)]
        now = time.time()
        cache.put(keys[0], 0)
        os.utime(cache._path(keys[0]), (now - 300, now - 300))
        cache.put(keys[1], 1)
        os.utime(cache._path(keys[1]), (now - 200, now - 200))
        cache.put(keys[2], 2)  # exceeds max_entries: oldest must go
        n, _ = cache.stats()
        assert n == 2
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[2]) == 2
        assert metrics.evictions == 1

    def test_byte_budget_eviction(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=1, max_entries=100)
        cache.put(cache.key("a"), "x" * 4096)
        cache.put(cache.key("b"), "y" * 4096)
        n, size = cache.stats()
        assert n <= 1  # over-budget entries were dropped

    def test_hits_refresh_lru_position(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_entries=2)
        k1, k2, k3 = (cache.key(i) for i in range(3))
        now = time.time()
        cache.put(k1, 1)
        os.utime(cache._path(k1), (now - 60, now - 60))
        cache.put(k2, 2)
        os.utime(cache._path(k2), (now - 30, now - 30))
        assert cache.get(k1) == 1  # touch k1: now newer than k2
        cache.put(k3, 3)
        assert cache.get(k2) is None  # k2 was the LRU entry
        assert cache.get(k1) == 1

    def test_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(3):
            cache.put(cache.key(i), i)
        assert cache.clear() == 3
        assert cache.stats() == (0, 0)

    def test_env_var_controls_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        assert default_cache_dir() == tmp_path / "via-env"
        cache = ArtifactCache()
        assert cache.dir == tmp_path / "via-env"
        assert cache.dir.is_dir()


class TestWriteDegradation:
    def test_read_only_dir_degrades_to_cache_off(self, tmp_path, monkeypatch):
        """Refused writes never crash the run; after the threshold the
        cache stops touching the dead disk, but reads stay live.

        (Simulated at the syscall layer — directory permission bits are
        no obstacle when the test suite runs as root.)
        """
        metrics = RuntimeMetrics()
        cache = ArtifactCache(tmp_path, metrics=metrics)
        good = cache.key("written-before-disk-died")
        assert cache.put(good, "payload")

        def read_only_fs(*args, **kwargs):
            raise OSError(30, "Read-only file system")  # EROFS

        monkeypatch.setattr(os, "replace", read_only_fs)
        for i in range(ArtifactCache._DISABLE_WRITES_AFTER + 2):
            assert cache.put(cache.key(f"refused-{i}"), i) is False
        assert cache.writes_disabled
        # Only threshold-many writes actually hit the disk.
        assert metrics.cache_write_failures == ArtifactCache._DISABLE_WRITES_AFTER
        assert cache.get(good) == "payload"  # reads still work

    def test_success_resets_the_failure_streak(self, tmp_path):
        """Only *consecutive* failures disable writes — a flaky disk that
        recovers keeps its cache."""
        metrics = RuntimeMetrics()
        # cache-kind fault indices are put *ordinals*: fail puts 0, 1, 3.
        cache = ArtifactCache(
            tmp_path, metrics=metrics,
            faults=FaultPlan((FaultSpec("cache-enospc", 0),
                              FaultSpec("cache-enospc", 1),
                              FaultSpec("cache-enospc", 3))),
        )
        assert not cache.put(cache.key(0), 0)   # fail
        assert not cache.put(cache.key(1), 1)   # fail
        assert cache.put(cache.key(2), 2)       # success: streak resets
        assert not cache.put(cache.key(3), 3)   # fail again (streak = 1)
        assert not cache.writes_disabled
        assert metrics.cache_write_failures == 3

    def test_uncreatable_cache_dir_degrades_not_crashes(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where the cache dir should go")
        cache = ArtifactCache(blocker / "cache")
        assert cache.writes_disabled
        assert cache.put(cache.key("x"), "x") is False
        assert cache.get(cache.key("x")) is None


class TestConcurrentAccess:
    def test_read_races_a_writer_mid_replace(self, tmp_path):
        """A reader that interleaves with a second process's atomic
        replace sees either the old or the new artifact — never garbage,
        and a concurrent writer's temp file is never visible as an entry."""
        cache = ArtifactCache(tmp_path)
        key = cache.key("contested")
        cache.put(key, "old")
        # Another process's in-flight temp file sits in the directory.
        (tmp_path / f".{key}.9999.tmp").write_bytes(b"\x00half a pickle")
        assert cache.get(key) == "old"
        n, _ = cache.stats()
        assert n == 1  # the temp file is not an entry
        # The other process lands its replace; we see the new value.
        ArtifactCache(tmp_path).put(key, "new")
        assert cache.get(key) == "new"

    def test_truncated_read_during_concurrent_writer_heals(self, tmp_path):
        """A torn entry is a miss + delete even while a second process
        keeps writing other keys (the delete must not disturb them)."""
        ours, theirs = ArtifactCache(tmp_path), ArtifactCache(tmp_path)
        torn = ours.key("torn")
        ours.put(torn, list(range(1000)))
        ours._path(torn).write_bytes(ours._path(torn).read_bytes()[:7])
        other = theirs.key("other")
        theirs.put(other, "intact")
        assert ours.get(torn) is None
        assert not ours._path(torn).exists()
        assert ours.get(other) == "intact"

    def test_eviction_races_second_process_deleting(self, tmp_path):
        """Eviction tolerates entries vanishing underneath it — a second
        process evicting (or clearing) concurrently must not crash puts."""
        cache = ArtifactCache(tmp_path, max_entries=1)
        victim = cache.key("victim")
        now = time.time()
        cache.put(victim, "evictable")
        os.utime(cache._path(victim), (now - 300, now - 300))
        # The "other process" wins the race: the entry _evict is about to
        # delete is already gone when the next put triggers eviction.
        os.unlink(cache._path(victim))
        assert cache.put(cache.key("fresh"), "fresh")
        assert cache.get(cache.key("fresh")) == "fresh"

    def test_stat_race_in_entry_scan(self, tmp_path, monkeypatch):
        """An entry deleted between glob and stat is skipped, not fatal."""
        cache = ArtifactCache(tmp_path)
        cache.put(cache.key("a"), "a")
        doomed = cache._path(cache.key("b"))
        cache.put(cache.key("b"), "b")

        original_stat = Path.stat
        raced = []

        def racing_stat(self, **kwargs):
            if self == doomed and not raced:
                raced.append(self)
                os.unlink(self)  # second process wins the race
            return original_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        n, _ = cache.stats()
        assert n == 1  # the survivor; no exception raised


class TestResumeJournal:
    def test_round_trip(self, tmp_path):
        journal = ResumeJournal(tmp_path / "sweep.journal")
        assert journal.load() == frozenset()
        keys = [format(i, "064x") for i in range(3)]
        for key in keys:
            journal.record(key)
        assert journal.load() == frozenset(keys)

    def test_torn_final_line_is_ignored(self, tmp_path):
        """A process killed mid-append loses at most that one key."""
        path = tmp_path / "sweep.journal"
        journal = ResumeJournal(path)
        whole = format(1, "064x")
        journal.record(whole)
        with open(path, "a") as fh:
            fh.write(format(2, "064x")[:31])  # torn: no newline, half a key
        assert journal.load() == frozenset({whole})

    def test_garbage_lines_are_ignored(self, tmp_path):
        path = tmp_path / "sweep.journal"
        good = format(7, "064x")
        path.write_text(
            "# a comment\n" + "z" * 64 + "\n" + good + "\nshort\n"
        )
        assert ResumeJournal(path).load() == frozenset({good})

    def test_clear_forgets_everything(self, tmp_path):
        journal = ResumeJournal(tmp_path / "sweep.journal")
        journal.record(format(3, "064x"))
        journal.clear()
        assert journal.load() == frozenset()
        journal.clear()  # idempotent on a missing file

    def test_unwritable_journal_degrades_silently(self, tmp_path):
        journal = ResumeJournal(tmp_path / "no-such-dir" / "sweep.journal")
        journal.record(format(1, "064x"))  # must not raise
        assert journal.load() == frozenset()
