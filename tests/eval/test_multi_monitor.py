"""Multi-monitor extraction and raw-trace caching tests (small scale)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.eval.experiments import (
    ExperimentPlan,
    cached_raw_traces,
    extract_bundle,
    per_monitor_results,
)

PLAN = ExperimentPlan(
    n_nodes=10,
    duration=250.0,
    max_connections=15,
    train_seeds=(1,),
    calibration_seed=2,
    normal_seeds=(3,),
    attack_seeds=(4,),
    warmup=50.0,
    periods=(5.0, 60.0),
)


class TestRawTraceCaching:
    def test_same_plan_same_traces(self):
        a = cached_raw_traces(PLAN)
        b = cached_raw_traces(PLAN)
        assert a.train[0] is b.train[0]

    def test_extraction_knobs_share_simulations(self):
        """Plans differing only in monitor/warmup/periods reuse traces."""
        a = cached_raw_traces(PLAN)
        b = cached_raw_traces(replace(PLAN, monitor=3, warmup=0.0))
        assert a.train[0] is b.train[0]

    def test_simulation_knobs_do_not_share(self):
        a = cached_raw_traces(PLAN)
        b = cached_raw_traces(replace(PLAN, duration=300.0))
        assert a.train[0] is not b.train[0]


class TestExtractBundle:
    def test_monitor_override(self):
        raw = cached_raw_traces(PLAN)
        b0 = extract_bundle(raw, monitor=0)
        b3 = extract_bundle(raw, monitor=3)
        assert b0.train.monitor == 0
        assert b3.train.monitor == 3
        assert not np.allclose(b0.train.X, b3.train.X)

    def test_attacker_as_monitor_rejected(self):
        raw = cached_raw_traces(PLAN)
        with pytest.raises(ValueError):
            extract_bundle(raw, monitor=PLAN.attacker)


class TestPerMonitorResults:
    def test_results_per_vantage_point(self):
        results = per_monitor_results(PLAN, monitors=(0, 3), classifier="nbc")
        assert set(results) == {0, 3}
        for res in results.values():
            assert np.isfinite(res.scores).all()
            assert res.labels.any()
