"""Recall-precision, AUC and density/timeseries metric tests."""

import numpy as np
import pytest

from repro.eval.density import score_density, separation_summary
from repro.eval.metrics import (
    area_above_diagonal,
    optimal_point,
    precision_recall_curve,
    recall_precision_at,
)
from repro.eval.timeseries import averaged_score_series, smoothed


def perfect_scores():
    """Anomalies all score below every normal event."""
    scores = np.array([0.1, 0.2, 0.3, 0.8, 0.9, 1.0])
    labels = np.array([True, True, True, False, False, False])
    return scores, labels


def random_scores(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=n), rng.random(n) < 0.5


class TestPrCurve:
    def test_perfect_separation_reaches_one_one(self):
        curve = precision_recall_curve(*perfect_scores())
        r, p, thr = optimal_point(curve)
        assert r == 1.0 and p == 1.0
        assert 0.3 < thr <= 0.8

    def test_recall_monotone_in_threshold(self):
        scores, labels = random_scores()
        curve = precision_recall_curve(scores, labels)
        assert (np.diff(curve.recalls) >= 0).all()
        assert (np.diff(curve.thresholds) > 0).all()

    def test_alarm_semantics_below_threshold(self):
        scores = np.array([0.1, 0.9])
        labels = np.array([True, False])
        r, p = recall_precision_at(scores, labels, threshold=0.5)
        assert r == 1.0 and p == 1.0

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            precision_recall_curve(np.array([0.1]), np.array([True]))
        with pytest.raises(ValueError):
            precision_recall_curve(np.array([0.1]), np.array([False]))

    def test_recall_precision_at_requires_intrusions(self):
        # Regression: labels without a single intrusion used to yield a
        # silent recall of 0.0 — indistinguishable from a total miss.
        scores = np.array([0.1, 0.9])
        labels = np.array([False, False])
        with pytest.raises(ValueError, match="intrusion"):
            recall_precision_at(scores, labels, threshold=0.5)

    def test_duplicate_scores_collapse_to_one_point(self):
        scores = np.array([0.5, 0.5, 0.5, 0.9])
        labels = np.array([True, True, False, False])
        curve = precision_recall_curve(scores, labels)
        assert len(curve) == 2


class TestAuc:
    def test_perfect_curve_near_half(self):
        curve = precision_recall_curve(*perfect_scores())
        assert area_above_diagonal(curve) == pytest.approx(0.5, abs=0.05)

    def test_random_scores_near_zero(self):
        curve = precision_recall_curve(*random_scores())
        assert abs(area_above_diagonal(curve)) < 0.05

    def test_inverted_scores_negative(self):
        scores, labels = perfect_scores()
        curve = precision_recall_curve(-scores, labels)
        assert area_above_diagonal(curve) <= -0.19


class TestDensity:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(1)
        d = score_density(rng.uniform(size=500))
        widths = np.diff(d.bin_edges)
        assert float((d.density * widths).sum()) == pytest.approx(1.0)

    def test_mass_below_plus_above_is_one(self):
        rng = np.random.default_rng(2)
        d = score_density(rng.uniform(size=500))
        assert d.mass_below(0.4) + d.mass_above(0.4) == pytest.approx(1.0)

    def test_mass_below_matches_empirical_cdf(self):
        rng = np.random.default_rng(3)
        scores = rng.uniform(size=4000)
        d = score_density(scores, n_bins=40)
        assert d.mass_below(0.35) == pytest.approx((scores < 0.35).mean(), abs=0.03)

    def test_separation_summary(self):
        normal = score_density(np.full(100, 0.9))
        abnormal = score_density(np.full(100, 0.1))
        summary = separation_summary(normal, abnormal, threshold=0.5)
        assert summary["false_alarm_mass"] == pytest.approx(0.0)
        assert summary["missed_anomaly_mass"] == pytest.approx(0.0)

    def test_scores_clipped_into_range(self):
        d = score_density(np.array([-0.5, 1.5, 0.5]))
        widths = np.diff(d.bin_edges)
        assert float((d.density * widths).sum()) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            score_density(np.array([]))


class TestTimeseries:
    def test_averaging_multiple_runs(self):
        times = np.array([5.0, 10.0, 15.0])
        series = averaged_score_series(times, [np.array([0.0, 1.0, 0.5]),
                                               np.array([1.0, 0.0, 0.5])])
        np.testing.assert_allclose(series.scores, [0.5, 0.5, 0.5])

    def test_mean_in_window(self):
        times = np.array([5.0, 10.0, 15.0, 20.0])
        series = averaged_score_series(times, [np.array([1.0, 2.0, 3.0, 4.0])])
        assert series.mean_in(10.0, 20.0) == pytest.approx(2.5)

    def test_mean_in_empty_window_rejected(self):
        times = np.array([5.0])
        series = averaged_score_series(times, [np.array([1.0])])
        with pytest.raises(ValueError):
            series.mean_in(100.0, 200.0)

    def test_mean_in_empty_window_names_coverage(self):
        # Regression: the error used to say only "no windows in [a, b)",
        # leaving the caller no clue where the series actually lives.
        times = np.array([5.0, 10.0, 15.0])
        series = averaged_score_series(times, [np.array([1.0, 2.0, 3.0])])
        with pytest.raises(ValueError, match=r"covers \[5, 15\] \(3 windows\)"):
            series.mean_in(100.0, 200.0)

    def test_mean_in_empty_series_message(self):
        series = averaged_score_series(np.array([5.0]), [np.array([1.0])])
        empty = type(series)(times=np.array([]), scores=np.array([]))
        with pytest.raises(ValueError, match="empty"):
            empty.mean_in(0.0, 10.0)

    def test_mean_in_half_open_start_inclusive(self):
        times = np.array([5.0, 10.0, 15.0, 20.0])
        series = averaged_score_series(times, [np.array([1.0, 2.0, 3.0, 4.0])])
        # A window ending exactly at `start` is included...
        assert series.mean_in(15.0, 100.0) == pytest.approx(3.5)

    def test_mean_in_half_open_end_exclusive(self):
        times = np.array([5.0, 10.0, 15.0, 20.0])
        series = averaged_score_series(times, [np.array([1.0, 2.0, 3.0, 4.0])])
        # ...one ending exactly at `end` is not.
        assert series.mean_in(0.0, 15.0) == pytest.approx(1.5)
        with pytest.raises(ValueError, match="covers"):
            series.mean_in(0.0, 5.0)

    def test_misaligned_runs_rejected(self):
        with pytest.raises(ValueError):
            averaged_score_series(np.array([5.0, 10.0]), [np.array([1.0])])

    def test_no_runs_rejected(self):
        with pytest.raises(ValueError):
            averaged_score_series(np.array([5.0]), [])

    def test_smoothing_preserves_length_and_range(self):
        times = np.arange(0, 100, 5.0)
        rng = np.random.default_rng(4)
        series = averaged_score_series(times, [rng.uniform(size=20)])
        smooth = smoothed(series, window=5)
        assert len(smooth.scores) == 20
        assert smooth.scores.std() <= series.scores.std()

    def test_smoothing_rejects_even_window(self):
        # Regression: an even window used to shift the curve half a
        # sample against its time axis instead of staying centred.
        times = np.arange(0, 50, 5.0)
        series = averaged_score_series(times, [np.linspace(0.0, 1.0, 10)])
        with pytest.raises(ValueError, match="odd"):
            smoothed(series, window=4)

    def test_smoothing_keeps_pulse_centred(self):
        times = np.arange(0, 55, 5.0)
        scores = np.zeros(11)
        scores[5] = 1.0
        series = averaged_score_series(times, [scores])
        smooth = smoothed(series, window=3)
        # Symmetric input stays symmetric around the pulse — an off-centre
        # kernel would smear it toward one side.
        np.testing.assert_allclose(smooth.scores, smooth.scores[::-1])
        assert smooth.scores[5] == pytest.approx(1.0 / 3.0)
