"""Report-formatting tests."""

import numpy as np
import pytest

from repro.eval.experiments import DetectionResult, ExperimentPlan
from repro.eval.metrics import PrCurve
from repro.eval.report import format_detection_report, format_result_row, scenario_report


def fake_result(auc=0.42, optimal=(0.9, 0.95, 0.5)):
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    labels = np.array([True, True, False, False])
    return DetectionResult(
        plan=ExperimentPlan(),
        classifier="c45",
        method="calibrated_probability",
        threshold=0.5,
        curve=PrCurve(np.array([0.5]), np.array([1.0]), np.array([1.0])),
        auc=auc,
        optimal=optimal,
        scores=scores,
        labels=labels,
    )


class TestFormatting:
    def test_row_contains_metrics(self):
        row = format_result_row("c45", fake_result())
        assert "c45" in row
        assert "0.420" in row
        assert "(0.90, 0.95)" in row

    def test_report_has_header_and_rows(self):
        report = format_detection_report(
            {"c45": fake_result(), "nbc": fake_result(auc=0.1)},
            title="Demo",
        )
        lines = report.splitlines()
        assert lines[0] == "Demo"
        assert "classifier" in lines[2]
        assert len(lines) == 5

    def test_report_without_title(self):
        report = format_detection_report({"c45": fake_result()})
        assert report.splitlines()[0].startswith("classifier")


class TestScenarioReport:
    def test_end_to_end_small(self):
        plan = ExperimentPlan(
            n_nodes=10, duration=250.0, max_connections=15,
            train_seeds=(1,), calibration_seed=2, normal_seeds=(3,),
            attack_seeds=(4,), warmup=50.0, periods=(5.0, 60.0),
        )
        report = scenario_report(plan, classifiers=("nbc",))
        assert "AODV/UDP" in report
        assert "nbc" in report
