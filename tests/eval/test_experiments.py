"""Experiment-plan and pipeline tests (small scale)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.eval.experiments import (
    ExperimentPlan,
    four_scenarios,
    run_detection_experiment,
)
from repro.runtime import Session

SMALL_PLAN = ExperimentPlan(
    n_nodes=10,
    duration=300.0,
    max_connections=20,
    train_seeds=(1,),
    calibration_seed=2,
    normal_seeds=(3,),
    attack_seeds=(4,),
    warmup=50.0,
    periods=(5.0, 60.0),
)


@pytest.fixture(scope="module")
def small_bundle():
    return Session().bundle(SMALL_PLAN)


class TestPlan:
    def test_attacker_is_last_node(self):
        assert SMALL_PLAN.attacker == 9

    def test_monitor_must_differ_from_attacker(self):
        with pytest.raises(ValueError):
            ExperimentPlan(n_nodes=5, monitor=4)

    def test_degenerate_node_counts_rejected(self):
        """Regression: n_nodes < 2 must fail loudly, not via the
        monitor/attacker clash (n_nodes=1) or silently (n_nodes=0,
        where attacker=-1 used to slip past __post_init__)."""
        for n in (0, 1, -3):
            with pytest.raises(ValueError, match="n_nodes"):
                ExperimentPlan(n_nodes=n)

    def test_unknown_attack_kind_rejected(self):
        with pytest.raises(ValueError):
            ExperimentPlan(attack_kind="teleport")

    def test_plans_hashable_for_caching(self):
        assert hash(SMALL_PLAN) == hash(replace(SMALL_PLAN))
        assert SMALL_PLAN != replace(SMALL_PLAN, duration=400.0)

    def test_mixed_attack_composition(self):
        attacks = SMALL_PLAN.build_attacks()
        assert len(attacks) == 2  # black hole + dropping
        starts = [a.sessions[0][0] for a in attacks]
        assert starts == [0.25 * 300.0, 0.5 * 300.0]

    def test_single_attack_compositions(self):
        for kind in ("blackhole", "dropping"):
            plan = replace(SMALL_PLAN, attack_kind=kind)
            attacks = plan.build_attacks()
            assert len(attacks) == 1
            assert len(attacks[0].sessions) == 3  # 25% / 50% / 75%

    def test_four_scenarios(self):
        plans = four_scenarios(SMALL_PLAN)
        assert set(plans) == {"aodv/tcp", "aodv/udp", "dsr/tcp", "dsr/udp"}
        assert plans["dsr/tcp"].protocol == "dsr"
        assert plans["dsr/tcp"].duration == SMALL_PLAN.duration


class TestBundle:
    def test_structure(self, small_bundle):
        assert len(small_bundle.normal_evals) == 1
        assert len(small_bundle.abnormal_evals) == 1
        assert not small_bundle.train.labels.any()
        assert not small_bundle.calibration.labels.any()
        assert small_bundle.abnormal_evals[0].labels.any()

    def test_train_concatenates_seeds(self):
        session = Session()
        plan = replace(SMALL_PLAN, train_seeds=(1, 5))
        bundle = session.bundle(plan)
        single = session.bundle(SMALL_PLAN)
        assert len(bundle.train) == 2 * len(single.train)


class TestDetectionExperiment:
    def test_result_invariants(self, small_bundle):
        result = run_detection_experiment(small_bundle, classifier="nbc")
        assert len(result.scores) == len(result.labels)
        assert result.labels.any() and not result.labels.all()
        assert -0.5 <= result.auc <= 0.5
        r, p, thr = result.optimal
        assert 0 <= r <= 1 and 0 <= p <= 1
        assert len(result.series) == 2

    def test_unknown_classifier_rejected(self, small_bundle):
        with pytest.raises(ValueError):
            run_detection_experiment(small_bundle, classifier="svm")

    def test_paper_methods_also_run(self, small_bundle):
        for method in ("avg_probability", "match_count"):
            result = run_detection_experiment(
                small_bundle, classifier="nbc", method=method
            )
            assert np.isfinite(result.scores).all()

    def test_max_models_reduces_ensemble(self, small_bundle):
        result = run_detection_experiment(small_bundle, classifier="nbc", max_models=10)
        assert np.isfinite(result.scores).all()
