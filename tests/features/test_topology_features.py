"""Feature Set I tests (Table 4)."""

import numpy as np
import pytest

from repro.features.topology import TOPOLOGY_FEATURE_NAMES, topology_features
from repro.simulation.stats import NodeStats, RouteEventKind


def stats_with_route_events():
    s = NodeStats(0)
    s.log_route_event(1.0, RouteEventKind.ADD)
    s.log_route_event(2.0, RouteEventKind.ADD)
    s.log_route_event(3.0, RouteEventKind.REMOVAL)
    s.log_route_event(4.0, RouteEventKind.FIND)
    s.log_route_event(7.0, RouteEventKind.NOTICE)
    s.log_route_event(8.0, RouteEventKind.REPAIR)
    s.log_route_length(2.0, 3)
    s.log_route_length(4.0, 5)
    return s


class TestTopologyFeatures:
    def test_names_match_table4(self):
        assert TOPOLOGY_FEATURE_NAMES == [
            "absolute_velocity",
            "route_add_count",
            "route_removal_count",
            "route_find_count",
            "route_notice_count",
            "route_repair_count",
            "total_route_change",
            "average_route_length",
        ]

    def test_counts_per_window(self):
        s = stats_with_route_events()
        ticks = np.array([5.0, 10.0])
        speeds = np.array([1.5, 0.0])
        X, names = topology_features(s, ticks, speeds, period=5.0)
        assert X.shape == (2, 8)
        row0 = dict(zip(names, X[0]))
        assert row0["absolute_velocity"] == 1.5
        assert row0["route_add_count"] == 2
        assert row0["route_removal_count"] == 1
        assert row0["route_find_count"] == 1
        assert row0["route_notice_count"] == 0
        assert row0["route_repair_count"] == 0
        row1 = dict(zip(names, X[1]))
        assert row1["route_notice_count"] == 1
        assert row1["route_repair_count"] == 1

    def test_total_route_change_is_add_plus_removal(self):
        s = stats_with_route_events()
        X, names = topology_features(s, np.array([5.0]), np.array([0.0]))
        row = dict(zip(names, X[0]))
        assert row["total_route_change"] == row["route_add_count"] + row["route_removal_count"]

    def test_average_route_length_in_window(self):
        s = stats_with_route_events()
        X, names = topology_features(s, np.array([5.0]), np.array([0.0]))
        assert dict(zip(names, X[0]))["average_route_length"] == pytest.approx(4.0)

    def test_route_length_carries_forward_when_no_use(self):
        s = stats_with_route_events()
        X, names = topology_features(s, np.array([5.0, 10.0]), np.array([0.0, 0.0]))
        assert X[1, names.index("average_route_length")] == pytest.approx(4.0)

    def test_route_length_zero_before_any_use(self):
        s = NodeStats(0)
        X, names = topology_features(s, np.array([5.0]), np.array([0.0]))
        assert X[0, names.index("average_route_length")] == 0.0

    def test_speed_shape_mismatch_rejected(self):
        s = NodeStats(0)
        with pytest.raises(ValueError):
            topology_features(s, np.array([5.0, 10.0]), np.array([0.0]))
