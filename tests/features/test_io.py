"""Dataset persistence round-trip tests."""

import numpy as np
import pytest

from repro.features.extraction import FeatureDataset
from repro.features.io import load_dataset, save_dataset


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return FeatureDataset(
        X=rng.uniform(size=(20, 5)),
        feature_names=[f"f{i}" for i in range(5)],
        times=np.arange(5.0, 105.0, 5.0),
        labels=rng.random(20) < 0.3,
        monitor=3,
    )


class TestRoundTrip:
    def test_save_load_identity(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "trace")
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.X, dataset.X)
        np.testing.assert_array_equal(loaded.times, dataset.times)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        assert loaded.feature_names == dataset.feature_names
        assert loaded.monitor == dataset.monitor

    def test_suffix_appended(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "trace")
        assert path.suffix == ".npz"

    def test_existing_npz_suffix_kept(self, dataset, tmp_path):
        path = save_dataset(dataset, tmp_path / "trace.npz")
        assert path.name == "trace.npz"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.npz")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_real_extraction_round_trips(self, aodv_udp_trace, tmp_path):
        from repro.features.extraction import extract_features

        ds = extract_features(aodv_udp_trace, monitor=0)
        loaded = load_dataset(save_dataset(ds, tmp_path / "real"))
        np.testing.assert_array_equal(loaded.X, ds.X)
        assert loaded.feature_names == ds.feature_names
