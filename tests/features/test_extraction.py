"""Feature-extraction pipeline tests on real (small) simulation traces."""

import numpy as np
import pytest

from repro.attacks import BlackholeAttack
from repro.features.extraction import FeatureDataset, extract_features
from repro.simulation.scenario import run_scenario

from tests.conftest import small_config


class TestExtraction:
    def test_full_feature_count(self, aodv_udp_trace):
        ds = extract_features(aodv_udp_trace, monitor=0)
        assert ds.n_features == 8 + 132  # Feature Set I + II

    def test_row_per_sampling_window(self, aodv_udp_trace):
        ds = extract_features(aodv_udp_trace, monitor=0)
        assert len(ds) == len(aodv_udp_trace.tick_times)
        assert np.all(np.diff(ds.times) == pytest.approx(5.0))

    def test_normal_trace_has_no_intrusion_labels(self, aodv_udp_trace):
        ds = extract_features(aodv_udp_trace, monitor=0)
        assert not ds.labels.any()

    def test_warmup_drops_early_windows(self, aodv_udp_trace):
        ds = extract_features(aodv_udp_trace, monitor=0, warmup=50.0)
        assert ds.times.min() >= 50.0

    def test_monitor_out_of_range_rejected(self, aodv_udp_trace):
        with pytest.raises(ValueError):
            extract_features(aodv_udp_trace, monitor=99)

    def test_features_differ_between_monitors(self, aodv_udp_trace):
        a = extract_features(aodv_udp_trace, monitor=0)
        b = extract_features(aodv_udp_trace, monitor=1)
        assert not np.allclose(a.X, b.X)

    def test_all_features_finite_and_nonnegative(self, aodv_udp_trace):
        ds = extract_features(aodv_udp_trace, monitor=0)
        assert np.isfinite(ds.X).all()
        assert (ds.X >= 0).all()

    def test_attack_trace_labels(self):
        cfg = small_config(seed=5)
        attack = BlackholeAttack(attacker=9, sessions=[(100.0, 150.0)])
        trace = run_scenario(cfg, attacks=[attack])
        ds = extract_features(trace, monitor=0, label_policy="session")
        in_session = (ds.times > 100.0) & (ds.times <= 150.0)
        assert ds.labels[in_session].all()
        assert not ds.labels[ds.times <= 100.0].any()

    def test_post_attack_policy_labels_everything_after_start(self):
        cfg = small_config(seed=5)
        attack = BlackholeAttack(attacker=9, sessions=[(100.0, 150.0)])
        trace = run_scenario(cfg, attacks=[attack])
        ds = extract_features(trace, monitor=0, label_policy="post_attack")
        assert ds.labels[ds.times > 100.0].all()
        assert not ds.labels[ds.times <= 100.0].any()


class TestFeatureDataset:
    def test_normal_only_filters(self):
        ds = FeatureDataset(
            X=np.arange(8, dtype=float).reshape(4, 2),
            feature_names=["a", "b"],
            times=np.array([5.0, 10.0, 15.0, 20.0]),
            labels=np.array([False, True, False, True]),
            monitor=0,
        )
        normal = ds.normal_only()
        assert len(normal) == 2
        assert not normal.labels.any()

    def test_slice_time(self):
        ds = FeatureDataset(
            X=np.zeros((4, 1)),
            feature_names=["a"],
            times=np.array([5.0, 10.0, 15.0, 20.0]),
            labels=np.zeros(4, dtype=bool),
            monitor=0,
        )
        part = ds.slice_time(10.0, 20.0)
        assert part.times.tolist() == [10.0, 15.0]

    def test_concat(self):
        mk = lambda t0: FeatureDataset(
            X=np.ones((2, 1)) * t0,
            feature_names=["a"],
            times=np.array([t0, t0 + 5.0]),
            labels=np.zeros(2, dtype=bool),
            monitor=0,
        )
        combined = FeatureDataset.concat([mk(5.0), mk(50.0)])
        assert len(combined) == 4

    def test_concat_rejects_mismatched_features(self):
        a = FeatureDataset(np.zeros((1, 1)), ["a"], np.array([5.0]),
                           np.array([False]), 0)
        b = FeatureDataset(np.zeros((1, 1)), ["b"], np.array([5.0]),
                           np.array([False]), 0)
        with pytest.raises(ValueError):
            FeatureDataset.concat([a, b])

    def test_concat_rejects_mismatched_monitors(self):
        # Regression: rows observed at node 3 used to be silently stamped
        # with the first dataset's monitor id.
        a = FeatureDataset(np.zeros((1, 1)), ["a"], np.array([5.0]),
                           np.array([False]), 0)
        b = FeatureDataset(np.zeros((1, 1)), ["a"], np.array([5.0]),
                           np.array([False]), 3)
        with pytest.raises(ValueError, match="monitor"):
            FeatureDataset.concat([a, b])
