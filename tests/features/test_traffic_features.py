"""Feature Set II tests: the Table 5 grid and its window statistics."""

import numpy as np
import pytest

from repro.features.traffic import (
    DEFAULT_SAMPLING_PERIODS,
    EXCLUDED_COMBOS,
    TrafficFeatureSpec,
    _window_counts,
    _window_iat_std,
    traffic_feature_grid,
    traffic_features,
)
from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import NodeStats


class TestGrid:
    def test_exactly_132_features(self):
        """(6 x 4 - 2) x 3 x 2 = 132, straight from the paper."""
        assert len(traffic_feature_grid()) == 132

    def test_excluded_combinations_absent(self):
        specs = traffic_feature_grid()
        combos = {(s.packet_type, s.direction) for s in specs}
        assert ("data", "forwarded") not in combos
        assert ("data", "dropped") not in combos
        assert len(combos) == 22

    def test_feature_names_unique(self):
        names = [s.name for s in traffic_feature_grid()]
        assert len(set(names)) == len(names)

    def test_paper_encoding_example(self):
        """'std of inter-packet intervals of received ROUTE REQUEST packets
        every 5 seconds' encodes as <2, 0, 0, 1> (paper §4.1)."""
        spec = TrafficFeatureSpec("rreq", "received", 5.0, "iat_std")
        assert spec.encode() == (2, 0, 0, 1)

    def test_all_periods_present_per_combo(self):
        specs = traffic_feature_grid()
        for period in DEFAULT_SAMPLING_PERIODS:
            assert sum(1 for s in specs if s.period == period) == 44

    def test_custom_periods(self):
        specs = traffic_feature_grid(periods=(5.0,))
        assert len(specs) == 44


class TestWindowCounts:
    def test_counts_in_half_open_windows(self):
        times = np.array([1.0, 2.0, 5.0, 6.0, 10.0])
        ticks = np.array([5.0, 10.0])
        counts = _window_counts(times, ticks, period=5.0)
        # (0,5] -> {1,2,5}; (5,10] -> {6,10}
        assert counts.tolist() == [3.0, 2.0]

    def test_empty_stream(self):
        counts = _window_counts(np.array([]), np.array([5.0, 10.0]), 5.0)
        assert counts.tolist() == [0.0, 0.0]


class TestIatStd:
    def test_uniform_intervals_have_zero_std(self):
        times = np.arange(0.0, 50.0, 2.0)
        ticks = np.array([40.0])
        std = _window_iat_std(times, ticks, period=40.0)
        assert std[0] == pytest.approx(0.0, abs=1e-12)

    def test_matches_numpy_std_of_diffs(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 100, size=200))
        ticks = np.array([60.0, 100.0])
        result = _window_iat_std(times, ticks, period=50.0)
        for k, t in enumerate(ticks):
            in_window = times[(times > t - 50.0) & (times <= t)]
            expected = np.std(np.diff(in_window))
            assert result[k] == pytest.approx(expected, rel=1e-9)

    def test_fewer_than_three_events_gives_zero(self):
        assert _window_iat_std(np.array([1.0, 2.0]), np.array([5.0]), 5.0)[0] == 0.0
        assert _window_iat_std(np.array([1.0]), np.array([5.0]), 5.0)[0] == 0.0


class TestTrafficFeatures:
    def _stats_with_events(self):
        s = NodeStats(0)
        for t in (1.0, 2.0, 3.5, 4.0):
            s.log_packet(t, PacketType.RREQ, Direction.RECEIVED)
        s.log_packet(2.5, PacketType.DATA, Direction.SENT)
        s.log_packet(3.0, PacketType.DATA, Direction.FORWARDED)
        s.log_packet(4.5, PacketType.RREP, Direction.FORWARDED)
        return s

    def test_matrix_shape(self):
        s = self._stats_with_events()
        X, specs = traffic_features(s, np.array([5.0, 10.0]))
        assert X.shape == (2, 132)
        assert len(specs) == 132

    def test_rreq_received_count(self):
        s = self._stats_with_events()
        X, specs = traffic_features(s, np.array([5.0]))
        j = [sp.name for sp in specs].index("rreq_received_5s_count")
        assert X[0, j] == 4.0

    def test_route_all_folds_in_transit_data(self):
        """Forwarded data counts under route (all), per the paper's
        encapsulation argument."""
        s = self._stats_with_events()
        X, specs = traffic_features(s, np.array([5.0]))
        names = [sp.name for sp in specs]
        j = names.index("route_all_forwarded_5s_count")
        # 1 forwarded RREP + 1 forwarded DATA.
        assert X[0, j] == 2.0

    def test_route_all_received_excludes_endpoint_data(self):
        s = self._stats_with_events()
        X, specs = traffic_features(s, np.array([5.0]))
        names = [sp.name for sp in specs]
        j = names.index("route_all_received_5s_count")
        assert X[0, j] == 4.0  # the RREQs only, not endpoint data

    def test_longer_period_accumulates(self):
        s = NodeStats(0)
        for t in range(1, 100):
            s.log_packet(float(t), PacketType.HELLO, Direction.SENT)
        X, specs = traffic_features(s, np.array([95.0]), periods=(5.0, 60.0, 900.0))
        names = [sp.name for sp in specs]
        c5 = X[0, names.index("hello_sent_5s_count")]
        c60 = X[0, names.index("hello_sent_60s_count")]
        c900 = X[0, names.index("hello_sent_900s_count")]
        assert c5 == 5.0
        assert c60 == 60.0
        assert c900 == 95.0  # capped by trace length
        assert c5 <= c60 <= c900
