"""Unit tests for trace logging."""

from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.stats import NodeStats, RouteEventKind, TraceRecorder


class TestNodeStats:
    def test_packet_count_by_type_and_direction(self):
        s = NodeStats(0)
        s.log_packet(1.0, PacketType.DATA, Direction.SENT)
        s.log_packet(2.0, PacketType.DATA, Direction.SENT)
        s.log_packet(3.0, PacketType.RREQ, Direction.RECEIVED)
        assert s.packet_count(PacketType.DATA, Direction.SENT) == 2
        assert s.packet_count(PacketType.RREQ, Direction.RECEIVED) == 1
        assert s.packet_count(PacketType.RREP, Direction.SENT) == 0

    def test_packet_count_wildcards(self):
        s = NodeStats(0)
        s.log_packet(1.0, PacketType.DATA, Direction.SENT)
        s.log_packet(2.0, PacketType.RREQ, Direction.SENT)
        s.log_packet(3.0, PacketType.RREQ, Direction.RECEIVED)
        assert s.packet_count(direction=Direction.SENT) == 2
        assert s.packet_count(ptype=PacketType.RREQ) == 2
        assert s.packet_count() == 3

    def test_window_is_half_open(self):
        """Windows are (start, end]: the start instant is excluded."""
        s = NodeStats(0)
        s.log_packet(5.0, PacketType.DATA, Direction.SENT)
        s.log_packet(10.0, PacketType.DATA, Direction.SENT)
        assert s.packet_count(PacketType.DATA, Direction.SENT, start=5.0, end=10.0) == 1

    def test_route_event_count_in_window(self):
        s = NodeStats(0)
        for t in (1.0, 2.0, 8.0):
            s.log_route_event(t, RouteEventKind.ADD)
        assert s.route_event_count(RouteEventKind.ADD, 0.0, 5.0) == 2
        assert s.route_event_count(RouteEventKind.ADD) == 3
        assert s.route_event_count(RouteEventKind.REMOVAL) == 0

    def test_route_length_samples_recorded(self):
        s = NodeStats(0)
        s.log_route_length(1.0, 3)
        s.log_route_length(2.0, 5)
        assert s.route_length_samples == [(1.0, 3), (2.0, 5)]

    def test_all_kind_streams_exist(self):
        s = NodeStats(0)
        for kind in RouteEventKind:
            assert s.route_event_count(kind) == 0
        for ptype in PacketType:
            for direction in Direction:
                assert s.packet_count(ptype, direction) == 0


class TestTraceRecorder:
    def test_indexing_and_len(self):
        rec = TraceRecorder(4)
        assert len(rec) == 4
        assert rec[2].node_id == 2

    def test_total_packets_sums_all_nodes(self):
        rec = TraceRecorder(2)
        rec[0].log_packet(1.0, PacketType.DATA, Direction.SENT)
        rec[1].log_packet(1.0, PacketType.DATA, Direction.RECEIVED)
        rec[1].log_packet(2.0, PacketType.HELLO, Direction.SENT)
        assert rec.total_packets() == 3
