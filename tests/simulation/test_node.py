"""Node plumbing tests: wiring, agent demux, attack hooks."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.medium import WirelessMedium
from repro.simulation.mobility import StaticMobility
from repro.simulation.node import Node
from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.stats import NodeStats

from tests.routing.helpers import line


def bare_node():
    sim = Simulator()
    medium = WirelessMedium(sim, StaticMobility([(0.0, 0.0)]))
    return Node(0, sim, medium, NodeStats(0)), sim


class TestWiring:
    def test_send_without_routing_rejected(self):
        node, _ = bare_node()
        with pytest.raises(RuntimeError):
            node.send_data(1)

    def test_double_routing_install_rejected(self):
        net = line(2)
        from repro.routing.aodv import AodvProtocol
        with pytest.raises(RuntimeError):
            AodvProtocol(net.nodes[0])

    def test_position_and_speed_passthrough(self):
        node, _ = bare_node()
        assert node.position == (0.0, 0.0)
        assert node.speed == 0.0


class TestDataAccounting:
    def test_send_logs_data_sent(self):
        net = line(2)
        net.send(0, 1)
        net.run(2.0)
        assert net.stats(0).packet_count(PacketType.DATA, Direction.SENT) == 1
        assert net.nodes[0].data_originated == 1

    def test_deliver_logs_data_received(self):
        net = line(2)
        net.send(0, 1)
        net.run(2.0)
        assert net.stats(1).packet_count(PacketType.DATA, Direction.RECEIVED) == 1
        assert net.nodes[1].data_delivered == 1

    def test_info_passed_through_to_packet(self):
        net = line(2)
        received = []

        class Agent:
            def on_receive(self, packet):
                received.append(packet.info.get("tcp_seq"))

        net.nodes[1].register_agent(7, Agent())
        net.nodes[0].send_data(1, flow_id=7, info={"tcp_seq": 42})
        net.run(2.0)
        assert received == [42]

    def test_unknown_flow_delivered_without_agent(self):
        net = line(2)
        net.nodes[0].send_data(1, flow_id=99)
        net.run(2.0)
        assert net.nodes[1].data_delivered == 1  # no agent, still counted


class TestDropFilterHook:
    def test_should_drop_defaults_false(self):
        node, _ = bare_node()
        packet = Packet(ptype=PacketType.DATA, origin=0, dest=1)
        assert not node.should_drop(packet)

    def test_filter_consulted(self):
        node, _ = bare_node()
        node.drop_filter = lambda p: p.dest == 3
        assert node.should_drop(Packet(ptype=PacketType.DATA, origin=0, dest=3))
        assert not node.should_drop(Packet(ptype=PacketType.DATA, origin=0, dest=4))

    def test_filter_removable(self):
        node, _ = bare_node()
        node.drop_filter = lambda p: True
        node.drop_filter = None
        assert not node.should_drop(Packet(ptype=PacketType.DATA, origin=0, dest=1))
