"""End-to-end trace equivalence: fast-pathed kernel vs naive reference.

The PR's hard constraint: the fast-pathed kernel must produce traces that
are *byte-identical* to the pre-optimization reference — every packet
event, every sampling tick, every RNG-dependent jitter.  Three kill
switches gate the fast paths independently:

* ``REPRO_SPATIAL_INDEX`` — grid neighbor index vs naive O(N) scan;
* ``REPRO_EVENT_BATCH`` — macro-event delivery fan-out + bucketed
  scheduling + packet pooling vs per-receiver heap scheduling;
* ``REPRO_ROUTING_FAST`` — flattened hot routing handlers + per-origin
  duplicate-RREQ seen structures vs the reference handler bodies.

Each test runs the same seeded scenario under the pure reference mode
(all switches off) and the fully optimized mode (all on) and compares
the complete serialized trace via the shared
:func:`~repro.simulation.scenario.trace_fingerprint` digest — the same
digest the benchmark harness asserts in-run.  The 30-node matrix
additionally runs every mixed mode (all 2^3 = 8 switch combinations) so
each switch is validated in isolation *and* against every interaction
with the other two.  Note the index/batch fast paths resolve their env
default to the reference behaviour below ``SMALL_N_CUTOFF`` (48) nodes —
at 30 nodes the mode matrix covers the bucketed run loop, the flattened
handlers and the default-resolution plumbing, while the 64- and 100-node
tests are the ones that actually drive the grid index and the macro
fan-out through the batched pre-classification path.
"""

import pytest

from repro.attacks import BlackholeAttack, DropMode, PacketDroppingAttack
from repro.simulation.scenario import (
    ScenarioConfig,
    run_scenario,
    trace_fingerprint,
)

#: Mode tuples: (REPRO_SPATIAL_INDEX, REPRO_EVENT_BATCH, REPRO_ROUTING_FAST).
REFERENCE = ("0", "0", "0")
OPTIMIZED = ("1", "1", "1")
#: Every combination with at least one switch flipped either way — with
#: REFERENCE and OPTIMIZED this is the full 8-mode matrix.
MIXED = tuple(
    (index, batch, routing)
    for index in ("0", "1")
    for batch in ("0", "1")
    for routing in ("0", "1")
    if (index, batch, routing) not in (REFERENCE, OPTIMIZED)
)


def run_modes(config, attacks, monkeypatch, modes):
    traces = []
    for index, batch, routing in modes:
        monkeypatch.setenv("REPRO_SPATIAL_INDEX", index)
        monkeypatch.setenv("REPRO_EVENT_BATCH", batch)
        monkeypatch.setenv("REPRO_ROUTING_FAST", routing)
        traces.append(run_scenario(config, attacks))
    return traces


def assert_equivalent(reference, other):
    # Counters first: a cheap mismatch gives a readable failure before
    # the byte-level comparison.
    assert reference.recorder.total_packets() == other.recorder.total_packets()
    assert reference.data_originated == other.data_originated
    assert reference.data_delivered == other.data_delivered
    assert reference.tick_times == other.tick_times
    assert trace_fingerprint(reference) == trace_fingerprint(other)


def make_attacks(kind: str, n_nodes: int, duration: float):
    if kind == "none":
        return []
    attacker = n_nodes - 1
    sessions = [(0.3 * duration, 0.6 * duration)]
    if kind == "blackhole":
        return [BlackholeAttack(attacker=attacker, sessions=sessions)]
    return [
        PacketDroppingAttack(
            attacker=attacker, sessions=sessions, mode=DropMode.CONSTANT
        )
    ]


@pytest.mark.parametrize("protocol", ["aodv", "dsr", "olsr"])
@pytest.mark.parametrize("attack", ["none", "blackhole"])
def test_30_node_trace_equivalence(protocol, attack, monkeypatch):
    """30-node scenarios: every kill-switch combination (8 modes) agrees."""
    config = ScenarioConfig(
        protocol=protocol, n_nodes=30, duration=60.0, max_connections=20, seed=11
    )
    attacks = make_attacks(attack, 30, 60.0)
    reference, optimized, *mixed = run_modes(
        config, attacks, monkeypatch, (REFERENCE, OPTIMIZED, *MIXED)
    )
    assert_equivalent(reference, optimized)
    for trace in mixed:
        assert_equivalent(reference, trace)
    # The scenarios must actually exercise the medium.
    assert optimized.recorder.total_packets() > 0


@pytest.mark.parametrize(
    "protocol,attack",
    [("aodv", "dropping"), ("dsr", "blackhole"), ("olsr", "dropping")],
)
def test_100_node_trace_equivalence(protocol, attack, monkeypatch):
    """100-node scenarios: the scale where the grid actually prunes.

    DSR runs promiscuous taps, exercising the skipped-bystander-sweep
    fast path; the dropping attack exercises unicast failure feedback;
    OLSR covers the proactive (TC/HELLO-flood) control plane that the
    reactive-protocol rows never touch.  Lossy variants of these run in
    ``test_medium.py``; here the macro batches are full-size (no loss
    culling).  Beyond the full-off/full-on pair, the routing-fast-only
    mode pins the flattened handlers against the reference kernel at a
    scale where the duplicate-RREQ pre-classification dominates.
    """
    config = ScenarioConfig(
        protocol=protocol, n_nodes=100, duration=12.0, max_connections=30, seed=23
    )
    attacks = make_attacks(attack, 100, 12.0)
    reference, optimized, routing_only = run_modes(
        config, attacks, monkeypatch, (REFERENCE, OPTIMIZED, ("0", "0", "1"))
    )
    assert_equivalent(reference, optimized)
    assert_equivalent(reference, routing_only)


def test_lossy_medium_equivalence(monkeypatch):
    """Packet loss culls macro-batch entries mid-draw; RNG order must hold.

    64 nodes: above ``SMALL_N_CUTOFF``, so the env-default resolution
    actually engages the macro fan-out being tested.
    """
    config = ScenarioConfig(
        protocol="aodv", n_nodes=64, duration=30.0, max_connections=20,
        loss_rate=0.15, seed=47,
    )
    reference, optimized = run_modes(
        config, [], monkeypatch, (REFERENCE, OPTIMIZED)
    )
    assert_equivalent(reference, optimized)


def test_tcp_transport_equivalence(monkeypatch):
    """TCP feedback loops amplify any RNG drift; keep them covered."""
    config = ScenarioConfig(
        protocol="dsr", transport="tcp", n_nodes=25, duration=50.0,
        max_connections=15, seed=31,
    )
    reference, optimized = run_modes(config, [], monkeypatch, (REFERENCE, OPTIMIZED))
    assert_equivalent(reference, optimized)
