"""End-to-end trace equivalence: spatial index vs naive reference scan.

The PR's hard constraint: the fast-pathed kernel must produce traces that
are *byte-identical* to the pre-optimization reference — every packet
event, every sampling tick, every RNG-dependent jitter.  Each test runs
the same seeded scenario twice (``REPRO_SPATIAL_INDEX=0`` → naive scan,
``=1`` → grid index) and compares the complete serialized trace.
"""

import pickle

import pytest

from repro.attacks import BlackholeAttack, DropMode, PacketDroppingAttack
from repro.simulation.scenario import ScenarioConfig, run_scenario


def trace_fingerprint(trace) -> bytes:
    """Serialize everything observable about a trace, bit for bit."""
    recorder_state = [
        {
            "packets": trace.recorder[i].packet_times,
            "routes": trace.recorder[i].route_times,
            "lengths": trace.recorder[i].route_length_samples,
        }
        for i in range(trace.n_nodes)
    ]
    return pickle.dumps((
        recorder_state,
        trace.tick_times,
        trace.speeds,
        trace.attack_intervals,
        trace.data_originated,
        trace.data_delivered,
    ))


def run_both_modes(config, attacks, monkeypatch):
    monkeypatch.setenv("REPRO_SPATIAL_INDEX", "0")
    naive = run_scenario(config, attacks)
    monkeypatch.setenv("REPRO_SPATIAL_INDEX", "1")
    indexed = run_scenario(config, attacks)
    return naive, indexed


def assert_equivalent(naive, indexed):
    # Counters first: a cheap mismatch gives a readable failure before
    # the byte-level comparison.
    assert naive.recorder.total_packets() == indexed.recorder.total_packets()
    assert naive.data_originated == indexed.data_originated
    assert naive.data_delivered == indexed.data_delivered
    assert naive.tick_times == indexed.tick_times
    assert trace_fingerprint(naive) == trace_fingerprint(indexed)


def make_attacks(kind: str, n_nodes: int, duration: float):
    if kind == "none":
        return []
    attacker = n_nodes - 1
    sessions = [(0.3 * duration, 0.6 * duration)]
    if kind == "blackhole":
        return [BlackholeAttack(attacker=attacker, sessions=sessions)]
    return [
        PacketDroppingAttack(
            attacker=attacker, sessions=sessions, mode=DropMode.CONSTANT
        )
    ]


@pytest.mark.parametrize("protocol", ["aodv", "dsr"])
@pytest.mark.parametrize("attack", ["none", "blackhole"])
def test_30_node_trace_equivalence(protocol, attack, monkeypatch):
    """30-node scenarios, both protocols, with and without an attack."""
    config = ScenarioConfig(
        protocol=protocol, n_nodes=30, duration=60.0, max_connections=20, seed=11
    )
    naive, indexed = run_both_modes(
        config, make_attacks(attack, 30, 60.0), monkeypatch
    )
    assert_equivalent(naive, indexed)
    # The scenarios must actually exercise the medium.
    assert indexed.recorder.total_packets() > 0


@pytest.mark.parametrize(
    "protocol,attack",
    [("aodv", "dropping"), ("dsr", "blackhole")],
)
def test_100_node_trace_equivalence(protocol, attack, monkeypatch):
    """100-node scenarios: the scale where the grid actually prunes.

    DSR runs promiscuous taps, exercising the skipped-bystander-sweep
    fast path; the dropping attack exercises unicast failure feedback.
    """
    config = ScenarioConfig(
        protocol=protocol, n_nodes=100, duration=12.0, max_connections=30, seed=23
    )
    naive, indexed = run_both_modes(
        config, make_attacks(attack, 100, 12.0), monkeypatch
    )
    assert_equivalent(naive, indexed)


def test_tcp_transport_equivalence(monkeypatch):
    """TCP feedback loops amplify any RNG drift; keep them covered."""
    config = ScenarioConfig(
        protocol="dsr", transport="tcp", n_nodes=25, duration=50.0,
        max_connections=15, seed=31,
    )
    naive, indexed = run_both_modes(config, [], monkeypatch)
    assert_equivalent(naive, indexed)
