"""OLSR scenario integration: the proactive protocol under the full stack."""

import pytest

from repro.attacks import BlackholeAttack
from repro.features.extraction import extract_features
from repro.simulation.packet import Direction, PacketType
from repro.simulation.scenario import run_scenario

from tests.conftest import small_config


@pytest.fixture(scope="module")
def olsr_trace():
    return run_scenario(small_config(protocol="olsr"))


class TestOlsrScenario:
    def test_traffic_flows(self, olsr_trace):
        assert olsr_trace.data_originated > 50
        assert olsr_trace.delivery_ratio() > 0.2

    def test_proactive_control_traffic_present(self, olsr_trace):
        hellos = sum(
            s.packet_count(PacketType.HELLO, Direction.SENT)
            for s in olsr_trace.recorder.nodes
        )
        tcs = sum(
            s.packet_count(PacketType.TC, Direction.SENT)
            for s in olsr_trace.recorder.nodes
        )
        # Periodic HELLOs from every node for the whole run; TCs from the
        # MPR backbone.
        assert hellos > olsr_trace.config.n_nodes * 50
        assert tcs > 10

    def test_no_on_demand_messages(self, olsr_trace):
        """OLSR never emits RREQ/RREP — the traffic shape that makes it a
        genuinely different observation domain for the detector."""
        for s in olsr_trace.recorder.nodes:
            assert s.packet_count(PacketType.RREQ) == 0
            assert s.packet_count(PacketType.RREP) == 0

    def test_feature_extraction_works_unchanged(self, olsr_trace):
        ds = extract_features(olsr_trace, monitor=0)
        assert ds.n_features == 140
        # TC traffic is folded into route (all).
        j = ds.feature_names.index("route_all_sent_5s_count")
        assert ds.X[:, j].sum() > 0

    def test_blackhole_damages_olsr(self):
        cfg = small_config(protocol="olsr", seed=5)
        clean = run_scenario(cfg)
        attack = BlackholeAttack(attacker=9, sessions=[(50.0, 200.0)])
        attacked = run_scenario(cfg, attacks=[attack])
        assert attack.absorbed > 5
        assert attacked.delivery_ratio() < clean.delivery_ratio()
