"""Unit tests for random-waypoint mobility."""

import math
import random

import pytest

from repro.simulation.mobility import RandomWaypointMobility, StaticMobility


@pytest.fixture
def model():
    return RandomWaypointMobility(
        n_nodes=5, area=(1000.0, 1000.0), max_speed=20.0, pause_time=10.0,
        rng=random.Random(3),
    )


class TestRandomWaypoint:
    def test_positions_stay_inside_area(self, model):
        for t in range(0, 2000, 7):
            for node in range(5):
                x, y = model.position(node, float(t))
                assert 0 <= x <= 1000
                assert 0 <= y <= 1000

    def test_speed_bounded_by_max(self, model):
        for t in range(0, 2000, 13):
            for node in range(5):
                assert 0.0 <= model.speed(node, float(t)) <= 20.0

    def test_position_continuous_over_time(self, model):
        """Displacement between close instants is bounded by max speed."""
        for node in range(5):
            prev = model.position(node, 100.0)
            for k in range(1, 50):
                t = 100.0 + 0.5 * k
                cur = model.position(node, t)
                dist = math.hypot(cur[0] - prev[0], cur[1] - prev[1])
                assert dist <= 20.0 * 0.5 + 1e-9
                prev = cur

    def test_node_eventually_moves(self, model):
        start = model.position(0, 0.0)
        later = model.position(0, 500.0)
        assert start != later

    def test_speed_zero_while_paused(self):
        # With a huge pause time the node finishes one leg (bounded by the
        # field diagonal over the minimum speed) and then pauses forever.
        m = RandomWaypointMobility(n_nodes=1, pause_time=1e9, rng=random.Random(0))
        t_late = 2 * 1500.0 / 0.5  # diagonal / min_speed, with margin
        assert m.speed(0, t_late) == 0.0
        assert m.position(0, t_late) == m.position(0, t_late + 1000.0)

    def test_queries_must_not_go_backwards_incoherently(self, model):
        """Lazy advancement: repeated queries at the same time agree."""
        p1 = model.position(2, 300.0)
        p2 = model.position(2, 300.0)
        assert p1 == p2

    def test_distance_symmetric(self, model):
        assert model.distance(0, 1, 50.0) == pytest.approx(model.distance(1, 0, 50.0))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(n_nodes=0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(n_nodes=2, min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(n_nodes=2, min_speed=5.0, max_speed=1.0)


class TestStaticMobility:
    def test_positions_fixed(self):
        m = StaticMobility([(0.0, 0.0), (100.0, 0.0)])
        assert m.position(0, 0.0) == (0.0, 0.0)
        assert m.position(0, 1e6) == (0.0, 0.0)
        assert m.speed(1, 50.0) == 0.0

    def test_move_teleports(self):
        m = StaticMobility([(0.0, 0.0), (100.0, 0.0)])
        m.move(1, (500.0, 500.0))
        assert m.position(1, 0.0) == (500.0, 500.0)

    def test_distance(self):
        m = StaticMobility([(0.0, 0.0), (3.0, 4.0)])
        assert m.distance(0, 1, 0.0) == pytest.approx(5.0)

    def test_empty_positions_rejected(self):
        with pytest.raises(ValueError):
            StaticMobility([])
