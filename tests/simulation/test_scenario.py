"""Scenario assembly tests: configuration, determinism, trace invariants."""

import numpy as np
import pytest

from repro.attacks import BlackholeAttack
from repro.simulation.scenario import ScenarioConfig, run_scenario

from tests.conftest import small_config


class TestConfigValidation:
    def test_defaults_match_paper_parameters(self):
        cfg = ScenarioConfig()
        assert cfg.area == (1000.0, 1000.0)
        assert cfg.max_connections == 100
        assert cfg.traffic_rate == 0.25
        assert cfg.pause_time == 10.0
        assert cfg.max_speed == 20.0
        assert cfg.sampling_period == 5.0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(protocol="zrp")

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(transport="sctp")

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n_nodes=1)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration=0.0)


class TestRunScenario:
    def test_sampling_grid(self, aodv_udp_trace):
        ticks = np.asarray(aodv_udp_trace.tick_times)
        assert ticks[0] == 5.0
        assert np.allclose(np.diff(ticks), 5.0)
        assert ticks[-1] <= aodv_udp_trace.config.duration

    def test_speed_samples_shape(self, aodv_udp_trace):
        assert len(aodv_udp_trace.speeds) == len(aodv_udp_trace.tick_times)
        assert len(aodv_udp_trace.speeds[0]) == aodv_udp_trace.config.n_nodes

    def test_speeds_bounded(self, aodv_udp_trace):
        speeds = np.asarray(aodv_udp_trace.speeds)
        assert (speeds >= 0).all()
        assert (speeds <= aodv_udp_trace.config.max_speed).all()

    def test_traffic_flows(self, aodv_udp_trace):
        assert aodv_udp_trace.data_originated > 50
        assert 0.3 < aodv_udp_trace.delivery_ratio() <= 1.0

    def test_all_nodes_log_something(self, aodv_udp_trace):
        for node_stats in aodv_udp_trace.recorder.nodes:
            assert any(len(v) for v in node_stats.packet_times.values())

    def test_deterministic_given_seed(self):
        a = run_scenario(small_config(duration=100.0))
        b = run_scenario(small_config(duration=100.0))
        assert a.data_originated == b.data_originated
        assert a.data_delivered == b.data_delivered
        assert a.recorder.total_packets() == b.recorder.total_packets()

    def test_different_seed_different_trace(self):
        a = run_scenario(small_config(duration=100.0, seed=1))
        b = run_scenario(small_config(duration=100.0, seed=2))
        assert a.recorder.total_packets() != b.recorder.total_packets()

    def test_traffic_seed_fixes_connection_pattern(self):
        """Same traffic seed + different mobility seed: comparable load."""
        a = run_scenario(small_config(duration=150.0, seed=1, traffic_seed=9))
        b = run_scenario(small_config(duration=150.0, seed=2, traffic_seed=9))
        # The flows are identical, so the originated counts are close even
        # though mobility (and thus delivery) differs.
        assert abs(a.data_originated - b.data_originated) < 0.2 * a.data_originated

    def test_tcp_transport_runs(self, aodv_tcp_trace):
        assert aodv_tcp_trace.data_originated > 100
        assert aodv_tcp_trace.delivery_ratio() > 0.5


class TestGroundTruth:
    def test_attack_intervals_recorded(self):
        attack = BlackholeAttack(attacker=9, sessions=[(50.0, 80.0), (120.0, 150.0)])
        trace = run_scenario(small_config(seed=3), attacks=[attack])
        assert trace.attack_intervals == [(50.0, 80.0), (120.0, 150.0)]

    def test_is_attack_time(self):
        attack = BlackholeAttack(attacker=9, sessions=[(50.0, 80.0)])
        trace = run_scenario(small_config(seed=3), attacks=[attack])
        assert trace.is_attack_time(60.0)
        assert not trace.is_attack_time(90.0)

    def test_window_labels_session_policy(self):
        attack = BlackholeAttack(attacker=9, sessions=[(50.0, 80.0)])
        trace = run_scenario(small_config(seed=3), attacks=[attack])
        labels = trace.window_labels("session")
        ticks = trace.tick_times
        for t, label in zip(ticks, labels):
            expected = 50.0 < t <= 85.0 or (t - 5.0) < 80.0 <= t or (50.0 <= t - 5.0 < 80.0)
            # Simpler: window (t-5, t] overlaps (50, 80)
            expected = (t - 5.0) < 80.0 and t > 50.0
            assert label == expected, t

    def test_unknown_label_policy_rejected(self):
        trace = run_scenario(small_config(seed=3))
        with pytest.raises(ValueError):
            trace.window_labels("bogus")

    def test_normal_trace_all_windows_normal(self, aodv_udp_trace):
        assert not any(aodv_udp_trace.window_labels())
        assert not any(aodv_udp_trace.window_labels("post_attack"))
