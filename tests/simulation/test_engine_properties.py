"""Hypothesis properties of the event kernel and routing data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.aodv import AodvRouteEntry
from repro.routing.dsr import RouteCache
from repro.simulation.engine import Simulator


@st.composite
def kernel_programs(draw):
    """A small scripted event program exercising every kernel entry point.

    Top-level events are scheduled with a mix of relative and absolute
    calls; when fired, an event may schedule children, fire transient
    (pooled) callbacks, cancel another top-level handle, or stop the
    run.  The program is replayed verbatim on both kernel modes.
    """
    n = draw(st.integers(min_value=1, max_value=10))
    times = st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False)
    events = []
    for _ in range(n):
        events.append({
            "delay": draw(times),
            "absolute": draw(st.booleans()),
            "children": draw(st.lists(st.floats(0.0, 3.0, allow_nan=False),
                                      max_size=2)),
            "transients": draw(st.lists(st.floats(0.0, 3.0, allow_nan=False),
                                        max_size=2)),
            "cancel": draw(st.one_of(st.none(),
                                     st.integers(0, n - 1))),
        })
    return {
        "events": events,
        # At most one event calls sim.stop(); the harness resumes after.
        "stop_index": draw(st.one_of(st.none(), st.integers(0, n - 1))),
        # run(until=...) segment boundaries before the final drain.
        "segments": sorted(draw(st.lists(st.floats(0.0, 12.0,
                                                   allow_nan=False),
                                         max_size=2))),
        "lane_quantum": draw(st.sampled_from([0.004, 0.3, 100.0])),
    }


def _execute(program, event_batch):
    """Run a kernel program; return its complete observable behaviour."""
    sim = Simulator(
        seed=0, event_batch=event_batch, lane_quantum=program["lane_quantum"]
    )
    log = []
    handles = []

    def leaf(tag):
        log.append((sim.now, tag))

    def fire(i):
        log.append((sim.now, ("top", i)))
        spec = program["events"][i]
        for j, delay in enumerate(spec["children"]):
            sim.schedule(delay, leaf, ("child", i, j))
        for j, delay in enumerate(spec["transients"]):
            sim.schedule_transient(delay, leaf, ("transient", i, j))
        if spec["cancel"] is not None:
            handles[spec["cancel"]].cancel()
        if program["stop_index"] == i:
            sim.stop()

    for i, spec in enumerate(program["events"]):
        if spec["absolute"]:
            handles.append(sim.schedule_at(spec["delay"], fire, i))
        else:
            handles.append(sim.schedule(spec["delay"], fire, i))
    for until in program["segments"]:
        sim.run(until=until)
    sim.run()
    return log, sim.processed_events, sim.pending_events, sim.now


class TestKernelModeEquivalence:
    """Bucketed lane vs pure-heap reference: identical execution order.

    The bucketed kernel must be observationally indistinguishable from
    the reference loop — same events in the same ``(time, seq)`` order
    at the same clock readings, same live pending count, same processed
    total — under cancellation, nested scheduling, transient pooling,
    ``stop()`` and segmented ``run(until=...)`` resumption.
    """

    @given(program=kernel_programs())
    @settings(max_examples=200, deadline=None)
    def test_bucketed_matches_reference(self, program):
        reference = _execute(program, event_batch=False)
        bucketed = _execute(program, event_batch=True)
        assert bucketed == reference

    @given(program=kernel_programs())
    @settings(max_examples=50, deadline=None)
    def test_reference_log_is_time_ordered(self, program):
        log, _, _, _ = _execute(program, event_batch=False)
        assert [t for t, _ in log] == sorted(t for t, _ in log)


class TestEngineProperties:
    @given(delays=st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=1,
                           max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_execution_order_is_time_order(self, delays):
        sim = Simulator()
        fired = []
        for k, delay in enumerate(delays):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=2,
                        max_size=30),
        cancel_mask=st.lists(st.booleans(), min_size=2, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_cancellation_removes_exactly_the_cancelled(self, delays, cancel_mask):
        sim = Simulator()
        fired = []
        events = [sim.schedule(d, lambda i=i: fired.append(i))
                  for i, d in enumerate(delays)]
        cancelled = set()
        for i, (event, cancel) in enumerate(zip(events, cancel_mask)):
            if cancel:
                event.cancel()
                cancelled.add(i)
        sim.run()
        assert set(fired) == set(range(len(delays))) - cancelled

    @given(until=st.floats(0.0, 500.0, allow_nan=False),
           delays=st.lists(st.floats(0.0, 1000.0, allow_nan=False), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_run_until_boundary(self, until, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run(until=until)
        assert all(d <= until for d in fired)
        assert sim.now >= until or not delays


class TestRouteCacheProperties:
    @given(
        paths=st.lists(
            st.lists(st.integers(1, 9), min_size=1, max_size=5, unique=True),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_get_returns_shortest_cached(self, paths):
        cache = RouteCache(owner=0, max_paths_per_dest=100)
        by_dest = {}
        for path in paths:
            dest = path[-1]
            cache.add(dest, tuple(path), now=0.0)
            by_dest.setdefault(dest, []).append(tuple(path))
        for dest, candidates in by_dest.items():
            got = cache.get(dest, now=1.0)
            assert got in candidates
            assert len(got) == min(len(p) for p in candidates)

    @given(
        path=st.lists(st.integers(1, 9), min_size=2, max_size=5, unique=True),
        link_index=st.integers(0, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_remove_link_removes_paths_using_it(self, path, link_index):
        cache = RouteCache(owner=0)
        dest = path[-1]
        cache.add(dest, tuple(path), now=0.0)
        full = (0, *path)
        link_index = min(link_index, len(full) - 2)
        cache.remove_link(full[link_index], full[link_index + 1])
        assert cache.get(dest, now=1.0) is None


class TestAodvEntryProperties:
    @given(seq_a=st.integers(0, 100), seq_b=st.integers(0, 100),
           hops_a=st.integers(1, 10), hops_b=st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_freshness_is_antisymmetric_for_valid_entries(
        self, seq_a, seq_b, hops_a, hops_b
    ):
        a = AodvRouteEntry(dest=1, next_hop=2, hops=hops_a, seq=seq_a, expires=10.0)
        if a.fresher_than(seq_b, hops_b):
            # A strictly fresher entry's parameters must not also beat A,
            # except for the reflexive tie (equal seq and hops).
            b = AodvRouteEntry(dest=1, next_hop=3, hops=hops_b, seq=seq_b, expires=10.0)
            if not (seq_a == seq_b and hops_a == hops_b):
                assert not (b.fresher_than(seq_a, hops_a)
                            and (seq_b, hops_b) != (seq_a, hops_a)) or (
                    seq_a == seq_b
                )

    @given(seq=st.integers(0, 100), hops=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_equal_update_never_beats_valid_entry(self, seq, hops):
        entry = AodvRouteEntry(dest=1, next_hop=2, hops=hops, seq=seq, expires=10.0)
        assert entry.fresher_than(seq, hops)
