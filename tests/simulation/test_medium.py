"""Unit tests for the wireless medium."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.medium import WirelessMedium
from repro.simulation.mobility import StaticMobility
from repro.simulation.packet import Packet, PacketType
from repro.simulation.stats import NodeStats


class RecordingNode:
    """A minimal medium-compatible node that records deliveries."""

    def __init__(self, node_id, medium, promiscuous=False):
        self.node_id = node_id
        self.promiscuous = promiscuous
        self.received = []
        self.overheard = []
        medium.attach(self)

    def on_receive(self, packet, from_id):
        self.received.append((packet, from_id))

    def on_overhear(self, packet, from_id):
        self.overheard.append((packet, from_id))


def build(positions, promiscuous=(), **medium_kwargs):
    sim = Simulator(seed=0)
    mobility = StaticMobility(positions)
    medium = WirelessMedium(sim, mobility, tx_range=250.0, **medium_kwargs)
    nodes = [
        RecordingNode(i, medium, promiscuous=(i in promiscuous))
        for i in range(len(positions))
    ]
    return sim, medium, nodes


def data_packet(origin=0, dest=1):
    return Packet(ptype=PacketType.DATA, origin=origin, dest=dest, size=100)


class TestConnectivity:
    def test_neighbors_within_range(self):
        sim, medium, nodes = build([(0, 0), (100, 0), (600, 0)])
        assert medium.neighbors(0) == [1]
        assert medium.neighbors(1) == [0]
        assert medium.neighbors(2) == []

    def test_in_range_boundary(self):
        sim, medium, nodes = build([(0, 0), (250, 0), (250.1, 0)])
        assert medium.in_range(0, 1)
        assert not medium.in_range(0, 2)

    def test_attach_out_of_order_rejected(self):
        sim = Simulator()
        medium = WirelessMedium(sim, StaticMobility([(0, 0), (1, 0)]))

        class Fake:
            node_id = 5
            promiscuous = False

        with pytest.raises(ValueError):
            medium.attach(Fake())


class TestBroadcast:
    def test_broadcast_reaches_all_in_range(self):
        sim, medium, nodes = build([(0, 0), (100, 0), (200, 0), (600, 0)])
        medium.broadcast(0, data_packet())
        sim.run()
        assert len(nodes[1].received) == 1
        assert len(nodes[2].received) == 1
        assert len(nodes[3].received) == 0

    def test_sender_does_not_receive_own_broadcast(self):
        sim, medium, nodes = build([(0, 0), (100, 0)])
        medium.broadcast(0, data_packet())
        sim.run()
        assert nodes[0].received == []

    def test_broadcast_carries_sender_id(self):
        sim, medium, nodes = build([(0, 0), (100, 0)])
        medium.broadcast(0, data_packet())
        sim.run()
        assert nodes[1].received[0][1] == 0

    def test_total_loss_suppresses_delivery(self):
        sim, medium, nodes = build([(0, 0), (100, 0)], loss_rate=1.0)
        medium.broadcast(0, data_packet())
        sim.run()
        assert nodes[1].received == []


class TestUnicast:
    def test_unicast_delivers_to_target_only(self):
        sim, medium, nodes = build([(0, 0), (100, 0), (150, 0)])
        medium.unicast(0, data_packet(), 1)
        sim.run()
        assert len(nodes[1].received) == 1
        assert nodes[2].received == []

    def test_unicast_out_of_range_invokes_on_fail(self):
        sim, medium, nodes = build([(0, 0), (600, 0)])
        failures = []
        medium.unicast(0, data_packet(), 1, on_fail=lambda p, nh: failures.append(nh))
        sim.run()
        assert failures == [1]
        assert nodes[1].received == []

    def test_unicast_success_does_not_invoke_on_fail(self):
        sim, medium, nodes = build([(0, 0), (100, 0)])
        failures = []
        medium.unicast(0, data_packet(), 1, on_fail=lambda p, nh: failures.append(nh))
        sim.run()
        assert failures == []

    def test_failure_checked_at_delivery_time(self):
        """A receiver that moves away during queueing is a link failure."""
        sim = Simulator(seed=0)
        mobility = StaticMobility([(0, 0), (100, 0)])
        medium = WirelessMedium(sim, mobility)
        nodes = [RecordingNode(i, medium) for i in range(2)]
        failures = []
        medium.unicast(0, data_packet(), 1, on_fail=lambda p, nh: failures.append(nh))
        mobility.move(1, (900.0, 900.0))  # move before the airtime completes
        sim.run()
        assert failures == [1]

    def test_promiscuous_bystander_overhears_unicast(self):
        sim, medium, nodes = build([(0, 0), (100, 0), (50, 50)], promiscuous={2})
        medium.unicast(0, data_packet(), 1)
        sim.run()
        assert len(nodes[2].overheard) == 1
        assert nodes[2].received == []

    def test_non_promiscuous_bystander_does_not_overhear(self):
        sim, medium, nodes = build([(0, 0), (100, 0), (50, 50)])
        medium.unicast(0, data_packet(), 1)
        sim.run()
        assert nodes[2].overheard == []


class TestSerialization:
    def test_transmissions_serialize_on_one_interface(self):
        sim, medium, nodes = build([(0, 0), (100, 0)])
        n = 5
        for _ in range(n):
            medium.unicast(0, data_packet(), 1)
        sim.run()
        assert len(nodes[1].received) == n
        # Serialized transmissions cannot finish faster than n * tx_time.
        assert sim.now >= n * medium._tx_time(data_packet()) * 0.9

    def test_queue_overflow_drops(self):
        sim, medium, nodes = build([(0, 0), (100, 0)], max_queue_delay=0.001)
        sent = sum(medium.broadcast(0, data_packet()) for _ in range(100))
        sim.run()
        assert medium.congestion_drops > 0
        assert sent < 100
        assert len(nodes[1].received) == sent
