"""Unit tests for the packet model."""

from repro.simulation.packet import BROADCAST, Direction, Packet, PacketType


class TestPacket:
    def test_uids_unique(self):
        a = Packet(ptype=PacketType.DATA, origin=0, dest=1)
        b = Packet(ptype=PacketType.DATA, origin=0, dest=1)
        assert a.uid != b.uid

    def test_copy_gets_fresh_uid_and_independent_info(self):
        a = Packet(ptype=PacketType.RREQ, origin=0, dest=BROADCAST, info={"route": [0]})
        b = a.copy()
        assert b.uid != a.uid
        b.info["route"] = [0, 1]
        assert a.info["route"] == [0]

    def test_copy_preserves_header_fields(self):
        a = Packet(ptype=PacketType.RREP, origin=3, dest=7, size=44, ttl=9,
                   hops=2, flow_id=12)
        b = a.copy()
        assert (b.ptype, b.origin, b.dest, b.size, b.ttl, b.hops, b.flow_id) == (
            PacketType.RREP, 3, 7, 44, 9, 2, 12)

    def test_is_control(self):
        assert not Packet(ptype=PacketType.DATA, origin=0, dest=1).is_control
        for pt in (PacketType.RREQ, PacketType.RREP, PacketType.RERR, PacketType.HELLO):
            assert Packet(ptype=pt, origin=0, dest=1).is_control

    def test_type_and_direction_vocabulary_matches_paper(self):
        """Table 5's concrete types are all present (TC is the OLSR
        extension, folded into 'route (all)'), with 4 flow directions."""
        assert {p.name for p in PacketType} >= {"DATA", "RREQ", "RREP", "RERR", "HELLO"}
        assert len(Direction) == 4
        assert {d.name for d in Direction} == {"RECEIVED", "SENT", "FORWARDED", "DROPPED"}
