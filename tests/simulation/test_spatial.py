"""Unit tests for the spatial neighbor index.

The index is an optimization with a hard contract: every query answers
exactly what the naive O(N) scan answers, in the same order, while
consuming the same shared-RNG draw sequence.  These tests pin the
contract piece by piece; ``test_trace_equivalence.py`` checks it
end to end.
"""

import math
import random

import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.simulation.medium import WirelessMedium
from repro.simulation.mobility import RandomWaypointMobility, StaticMobility
from repro.simulation.node import Node
from repro.simulation.spatial import SpatialNeighborIndex
from repro.simulation.stats import TraceRecorder


def build_stack(n_nodes, seed, use_index):
    sim = Simulator(seed=seed)
    mobility = RandomWaypointMobility(n_nodes=n_nodes, rng=sim.rng)
    medium = WirelessMedium(sim, mobility, use_index=use_index)
    recorder = TraceRecorder(n_nodes)
    for i in range(n_nodes):
        Node(i, sim, medium, recorder[i])
    return sim, mobility, medium


class TestVectorizedPositions:
    def test_positions_at_bit_equal_to_scalar(self):
        """The vectorized evaluator must agree with position() to the bit."""
        mobility = RandomWaypointMobility(n_nodes=40, rng=random.Random(7))
        for t in (0.0, 3.7, 12.0, 55.5, 200.25, 1000.0):
            xs, ys = mobility.positions_at(t)
            for i in range(40):
                x, y = mobility.position(i, t)
                assert xs[i] == x and ys[i] == y, f"node {i} at t={t}"

    def test_positions_of_subset(self):
        mobility = RandomWaypointMobility(n_nodes=20, rng=random.Random(3))
        t = 17.5
        mobility.advance_all(t)
        ids = np.array([2, 5, 11, 19], dtype=np.int64)
        xs, ys = mobility.positions_of(ids, t)
        for k, i in enumerate(ids):
            x, y = mobility.position(int(i), t)
            assert xs[k] == x and ys[k] == y

    def test_speeds_at_matches_scalar(self):
        mobility = RandomWaypointMobility(n_nodes=15, rng=random.Random(5))
        for t in (0.0, 8.0, 30.0, 120.0):
            speeds = mobility.speeds_at(t)
            assert speeds == [mobility.speed(i, t) for i in range(15)]

    def test_positions_cache_returns_same_arrays(self):
        mobility = RandomWaypointMobility(n_nodes=10, rng=random.Random(1))
        a = mobility.positions_at(5.0)
        b = mobility.positions_at(5.0)
        assert a[0] is b[0] and a[1] is b[1]


class TestIndexVsNaiveScan:
    def test_neighbors_identical_over_time(self):
        """Same seed, same query stream: identical neighbor lists."""
        sim_a, _, medium_a = build_stack(40, seed=9, use_index=False)
        sim_b, _, medium_b = build_stack(40, seed=9, use_index=True)
        workload = random.Random(123)
        t = 0.0
        for _ in range(400):
            t += workload.uniform(0.005, 0.4)
            node = workload.randrange(40)
            sim_a.now = sim_b.now = t
            assert medium_a.neighbors(node) == medium_b.neighbors(node)

    def test_rng_stream_stays_aligned(self):
        """Both modes must consume identical shared-RNG draw sequences."""
        sim_a, _, medium_a = build_stack(25, seed=4, use_index=False)
        sim_b, _, medium_b = build_stack(25, seed=4, use_index=True)
        t = 0.0
        for step in range(200):
            t += 0.31
            sim_a.now = sim_b.now = t
            medium_a.neighbors(step % 25)
            medium_b.neighbors(step % 25)
            assert sim_a.rng.getstate() == sim_b.rng.getstate(), f"step {step}"

    def test_in_range_parity(self):
        sim_a, mob_a, medium_a = build_stack(12, seed=2, use_index=False)
        sim_b, _, medium_b = build_stack(12, seed=2, use_index=True)
        sim_a.now = sim_b.now = 42.0
        for a in range(12):
            for b in range(12):
                assert medium_a.in_range(a, b) == medium_b.in_range(a, b)


class TestFilterInRange:
    def test_boundary_exactness(self):
        """Candidates on the disc boundary use the literal hypot test."""
        positions = [(0.0, 0.0), (250.0, 0.0), (250.0000001, 0.0), (176.7766952966369, 176.7766952966369)]
        mobility = StaticMobility(positions)
        index = SpatialNeighborIndex(mobility, tx_range=250.0)
        ids = np.arange(1, 4, dtype=np.int64)
        kept = index.filter_in_range(ids, 0.0, 0.0, 0.0).tolist()
        expected = [
            i for i in (1, 2, 3)
            if math.hypot(positions[i][0], positions[i][1]) <= 250.0
        ]
        assert kept == expected

    def test_preserves_id_order(self):
        mobility = StaticMobility([(0.0, 0.0)] + [(float(i), 0.0) for i in range(1, 9)])
        index = SpatialNeighborIndex(mobility, tx_range=250.0)
        ids = np.array([3, 1, 7, 2], dtype=np.int64)
        assert index.filter_in_range(ids, 0.0, 0.0, 0.0).tolist() == [3, 1, 7, 2]


class TestRebuildPolicy:
    def test_lazy_rebuild_on_quantum(self):
        mobility = RandomWaypointMobility(n_nodes=10, rng=random.Random(8))
        index = SpatialNeighborIndex(mobility, tx_range=250.0, rebuild_quantum=1.0)
        index.neighbors(0, 0.0)
        index.neighbors(1, 0.5)
        assert index.rebuilds == 1  # within the quantum: snapshot reused
        index.neighbors(2, 1.6)
        assert index.rebuilds == 2

    def test_version_bump_invalidates(self):
        """A teleport must invalidate the snapshot immediately."""
        mobility = StaticMobility([(0.0, 0.0), (100.0, 0.0), (600.0, 0.0)])
        index = SpatialNeighborIndex(mobility, tx_range=250.0, rebuild_quantum=10.0)
        assert index.neighbors(0, 0.0) == [1]
        mobility.move(2, (50.0, 0.0))
        assert index.neighbors(0, 0.1) == [1, 2]

    def test_cell_size_covers_drift(self):
        mobility = RandomWaypointMobility(n_nodes=5, rng=random.Random(0), max_speed=20.0)
        index = SpatialNeighborIndex(mobility, tx_range=250.0, rebuild_quantum=0.25)
        # Block reach (radius x cell side) covers range + worst-case drift.
        assert index._block_radius * index.cell_size == pytest.approx(255.0)

    def test_rejects_bad_parameters(self):
        mobility = StaticMobility([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError):
            SpatialNeighborIndex(mobility, tx_range=0.0)
        with pytest.raises(ValueError):
            SpatialNeighborIndex(mobility, tx_range=250.0, rebuild_quantum=-1.0)


class TestMediumFallback:
    def test_partial_stack_uses_naive_scan(self):
        """Fewer attached nodes than mobility knows => reference path."""
        sim = Simulator(seed=0)
        mobility = RandomWaypointMobility(n_nodes=10, rng=sim.rng)
        medium = WirelessMedium(sim, mobility, use_index=True)
        recorder = TraceRecorder(3)
        for i in range(3):
            Node(i, sim, medium, recorder[i])
        assert not medium._index_usable()
        assert isinstance(medium.neighbors(0), list)

    def test_env_var_disables_index(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPATIAL_INDEX", "0")
        sim = Simulator(seed=0)
        mobility = RandomWaypointMobility(n_nodes=4, rng=sim.rng)
        medium = WirelessMedium(sim, mobility)
        assert medium.index is None

    def test_promiscuous_registry_tracks_setter(self):
        sim = Simulator(seed=0)
        mobility = RandomWaypointMobility(n_nodes=3, rng=sim.rng)
        medium = WirelessMedium(sim, mobility, use_index=True)
        recorder = TraceRecorder(3)
        nodes = [Node(i, sim, medium, recorder[i]) for i in range(3)]
        assert medium._promiscuous_ids.size == 0
        nodes[1].promiscuous = True
        assert medium._promiscuous_ids.tolist() == [1]
        nodes[1].promiscuous = False
        assert medium._promiscuous_ids.size == 0
