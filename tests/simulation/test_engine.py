"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simulation.engine import Simulator


class TestScheduling:
    def test_runs_events_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert seen == [0.0, 1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1


class TestPendingCounter:
    """``pending_events`` is a live O(1) counter, exact in both modes."""

    @pytest.mark.parametrize("event_batch", [False, True])
    def test_tracks_schedule_dispatch_and_cancel(self, event_batch):
        sim = Simulator(event_batch=event_batch)
        observed = []
        assert sim.pending_events == 0
        sim.schedule(1.0, lambda: observed.append(sim.pending_events))
        sim.schedule_at(2.0, lambda: observed.append(sim.pending_events))
        sim.schedule_transient(3.0, lambda: observed.append(sim.pending_events))
        victim = sim.schedule(4.0, lambda: observed.append("never"))
        assert sim.pending_events == 4
        victim.cancel()
        assert sim.pending_events == 3
        victim.cancel()  # idempotent: no double decrement
        assert sim.pending_events == 3
        sim.run()
        # Each callback saw the count *after* its own dispatch decrement.
        assert observed == [2, 1, 0]
        assert sim.pending_events == 0

    @pytest.mark.parametrize("event_batch", [False, True])
    def test_counts_events_scheduled_from_callbacks(self, event_batch):
        sim = Simulator(event_batch=event_batch)
        seen = []

        def parent():
            sim.schedule(0.5, seen.append, sim.pending_events)
            seen.append(sim.pending_events)

        sim.schedule(1.0, parent)
        assert sim.pending_events == 1
        sim.run(until=1.0)
        # parent dispatched (−1) then scheduled a child (+1).
        assert seen == [1]
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0
        assert seen == [1, 0]

    def test_interrupted_run_preserves_count(self):
        sim = Simulator(event_batch=True, lane_quantum=100.0)
        # All three land in one bucket window; stop() after the first.
        sim.schedule(1.0, sim.stop)
        sim.schedule(1.5, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0


class TestRunUntil:
    def test_until_leaves_later_events_queued(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(10.0, seen.append, "late")
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert seen == ["early", "late"]

    def test_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_stop_halts_processing(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append("a"), sim.stop()))
        sim.schedule(2.0, seen.append, "b")
        sim.run()
        assert seen == ["a"]

    def test_processed_events_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 5


class TestDeterminism:
    def test_same_seed_same_random_stream(self):
        a, b = Simulator(seed=99), Simulator(seed=99)
        assert [a.rng.random() for _ in range(10)] == [b.rng.random() for _ in range(10)]

    def test_different_seed_different_stream(self):
        a, b = Simulator(seed=1), Simulator(seed=2)
        assert [a.rng.random() for _ in range(5)] != [b.rng.random() for _ in range(5)]
