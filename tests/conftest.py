"""Shared fixtures: small, session-cached simulation traces.

Full scenario runs are the expensive part of this suite, so the fixtures
here are deliberately tiny (few nodes, short durations) and session-scoped;
tests that need bigger runs build their own.

The suite also redirects the runtime layer's persistent artifact cache
(``$REPRO_CACHE_DIR``) into a per-run temporary directory, so tests never
read or pollute the user's ``~/.cache/repro`` and every run starts cold.
"""

from __future__ import annotations

import os

import pytest

from repro.simulation.scenario import ScenarioConfig, SimulationTrace, run_scenario


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Point the default artifact cache at a throwaway directory."""
    from repro.runtime.session import set_default_session

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("artifact-cache"))
    set_default_session(None)  # drop any session built against the old dir
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    set_default_session(None)


def small_config(**overrides) -> ScenarioConfig:
    """A fast scenario: 10 nodes, 200 s, light traffic."""
    defaults = dict(
        protocol="aodv",
        transport="udp",
        n_nodes=10,
        duration=200.0,
        max_connections=10,
        seed=42,
        traffic_seed=7,
        traffic_start_window=50.0,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


@pytest.fixture(scope="session")
def aodv_udp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="aodv", transport="udp"))


@pytest.fixture(scope="session")
def dsr_udp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="dsr", transport="udp"))


@pytest.fixture(scope="session")
def aodv_tcp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="aodv", transport="tcp"))


@pytest.fixture(scope="session")
def dsr_tcp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="dsr", transport="tcp"))
