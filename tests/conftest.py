"""Shared fixtures: small, session-cached simulation traces.

Full scenario runs are the expensive part of this suite, so the fixtures
here are deliberately tiny (few nodes, short durations) and session-scoped;
tests that need bigger runs build their own.
"""

from __future__ import annotations

import pytest

from repro.simulation.scenario import ScenarioConfig, SimulationTrace, run_scenario


def small_config(**overrides) -> ScenarioConfig:
    """A fast scenario: 10 nodes, 200 s, light traffic."""
    defaults = dict(
        protocol="aodv",
        transport="udp",
        n_nodes=10,
        duration=200.0,
        max_connections=10,
        seed=42,
        traffic_seed=7,
        traffic_start_window=50.0,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


@pytest.fixture(scope="session")
def aodv_udp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="aodv", transport="udp"))


@pytest.fixture(scope="session")
def dsr_udp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="dsr", transport="udp"))


@pytest.fixture(scope="session")
def aodv_tcp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="aodv", transport="tcp"))


@pytest.fixture(scope="session")
def dsr_tcp_trace() -> SimulationTrace:
    return run_scenario(small_config(protocol="dsr", transport="tcp"))
