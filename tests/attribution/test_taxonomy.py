"""Taxonomy: fine groups, signed activities, signature matching.

The registry is fit-free data, so these tests pin its *behaviour*:
every attack type's own profiled fingerprint must classify as itself
(the smoke test that keeps a hand-edit from silently reshuffling the
taxonomy), flat or alien vectors must fall to ``unknown``, and the
shares fallback must stay deterministic.
"""

import numpy as np
import pytest

from repro.attribution.taxonomy import (
    ACTIVITY_MIN_MATCH,
    ANOMALY_TYPES,
    GROUPS,
    UNKNOWN,
    AnomalyType,
    classify_activity,
    classify_shares,
    feature_group,
    fine_group,
    group_shares,
    signed_activity,
)


class TestFineGroup:
    @pytest.mark.parametrize("name,expected", [
        ("rreq_received_5s_count", "rreq_received"),
        ("data_sent_900s_count", "data_sent"),
        ("route_all_forwarded_60s_count", "route_all_forwarded"),
        ("hello_dropped_5s_count", "hello_dropped"),
        ("total_route_change", "route_churn"),
        ("route_repair_count", "route_churn"),
        ("average_route_length", "route_shape"),
        ("route_find_count", "route_shape"),
        ("absolute_velocity", "mobility"),
    ])
    def test_vocabulary_mapping(self, name, expected):
        assert fine_group(name) == expected

    @pytest.mark.parametrize("name", [
        "rreq_received_5s_iat_std",   # IAT deviation sign is noise
        "data_sent_60s_iat_std",
        "something_else",
        7,                            # unnamed feature (index label)
        None,
    ])
    def test_directionless_features_excluded(self, name):
        assert fine_group(name) is None

    def test_every_fine_feature_has_a_coarse_group(self):
        # The two vocabularies agree: a feature with a fine group never
        # falls into the coarse "other" bucket.
        for name in ("rreq_sent_5s_count", "rerr_received_60s_count",
                     "total_route_change", "absolute_velocity"):
            assert fine_group(name) is not None
            assert feature_group(name) != "other"


class TestSignedActivity:
    GROUPS_4 = ["rreq_received", "rreq_received", "data_received", None]

    def test_direction_and_pooling(self):
        history = np.tile([10.0, 100.0, 50.0, 1.0], (10, 1))
        history += np.outer(np.linspace(-1, 1, 10), [1.0, 5.0, 2.0, 0.1])
        row = np.array([50.0, 100.0, 10.0, 1.0])
        act = signed_activity(row, history, self.GROUPS_4)
        assert set(act) == {"rreq_received", "data_received"}
        # Column 0 far above normal, column 1 on it: the pooled rreq
        # activity is positive but diluted by the quiet column.
        assert 0.0 < act["rreq_received"] < 1.0
        assert act["data_received"] < 0.0  # collapsed below its history

    def test_on_baseline_row_is_flat(self):
        rng = np.random.default_rng(0)
        history = rng.normal(10.0, 1.0, size=(24, 4))
        act = signed_activity(history.mean(axis=0), history, self.GROUPS_4)
        for value in act.values():
            assert abs(value) < 1e-9

    def test_bounded_by_tanh(self):
        history = np.tile([1.0, 1.0, 1.0, 1.0], (8, 1))
        act = signed_activity(
            np.array([1e9, 1e9, -1e9, 0.0]), history, self.GROUPS_4
        )
        assert act["rreq_received"] == pytest.approx(1.0)
        assert act["data_received"] == pytest.approx(-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            signed_activity(np.zeros(3), np.zeros((5, 3)), self.GROUPS_4)


def all_fine_groups():
    """Every group named by any registered variant."""
    groups = set()
    for atype in ANOMALY_TYPES.values():
        for variant in atype.variants:
            groups.update(variant)
    return sorted(groups)


class TestMatchActivity:
    def test_own_variant_matches_almost_perfectly(self):
        # Stored variants are rounded, so they are not exactly
        # zero-mean; re-centring the observed copy costs a hair.
        atype = ANOMALY_TYPES["flooding"]
        variant = dict(atype.variants[0])
        assert atype.match_activity(variant) == pytest.approx(1.0, abs=1e-3)

    def test_flat_activity_matches_nothing(self):
        flat = {g: 0.4 for g in all_fine_groups()}
        for atype in ANOMALY_TYPES.values():
            assert atype.match_activity(flat) == pytest.approx(0.0, abs=1e-9)

    def test_no_variants_scores_zero(self):
        bare = AnomalyType(name="bare", description="", signature={"other": 1.0})
        assert bare.match_activity({"rreq_received": 1.0}) == 0.0

    def test_best_variant_wins(self):
        atype = ANOMALY_TYPES["blackhole"]
        aodv, dsr = (dict(v) for v in atype.variants)
        assert atype.match_activity(aodv) > atype.match_activity(
            {g: -w for g, w in aodv.items()}
        )
        assert atype.match_activity(dsr) == pytest.approx(1.0, abs=1e-3)


class TestClassifyActivity:
    @pytest.mark.parametrize("kind", [
        "flooding", "blackhole", "dropping", "impersonation",
        "route_instability",
    ])
    @pytest.mark.parametrize("variant_index", [0, 1])
    def test_each_attack_fingerprint_classifies_as_itself(
        self, kind, variant_index
    ):
        """Smoke test per attack module: every profiled protocol variant
        (AODV and DSR) is its own class's nearest signature."""
        variants = ANOMALY_TYPES[kind].variants
        if variant_index >= len(variants):
            pytest.skip("single-variant type")
        name, match = classify_activity(dict(variants[variant_index]))
        assert name == kind
        assert match == pytest.approx(1.0, abs=1e-3)

    def test_noisy_fingerprint_still_classifies(self):
        rng = np.random.default_rng(7)
        for kind in ("flooding", "blackhole", "dropping", "impersonation"):
            noisy = {
                g: w + rng.normal(0, 0.03)
                for g, w in ANOMALY_TYPES[kind].variants[0].items()
            }
            assert classify_activity(noisy)[0] == kind

    def test_flat_vector_is_unknown(self):
        name, match = classify_activity({g: 0.5 for g in all_fine_groups()})
        assert name == UNKNOWN
        assert match < ACTIVITY_MIN_MATCH

    def test_registry_order_breaks_ties(self):
        probe = {"x": 1.0, "y": -1.0}
        taxonomy = {
            "second": AnomalyType("second", "", variants=(probe,)),
            "first": AnomalyType("first", "", variants=(dict(probe),)),
        }
        assert classify_activity(probe, taxonomy)[0] == "second"

    def test_custom_floor(self):
        probe = dict(ANOMALY_TYPES["flooding"].variants[0])
        assert classify_activity(probe, min_match=1.1)[0] == UNKNOWN


class TestSharesFallback:
    def test_group_shares_normalised_and_size_free(self):
        # Two groups, one with many quiet members: the loud small group
        # must win because shares use per-member means.
        groups = ["rreq_storm"] * 8 + ["route_error"]
        contribs = np.array([0.1] * 8 + [0.8])
        shares = group_shares(contribs, groups)
        assert shares["route_error"] > shares["rreq_storm"]
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_group_shares_length_mismatch(self):
        with pytest.raises(ValueError):
            group_shares(np.ones(3), ["rreq_storm"] * 2)

    def test_classify_shares_unknown_floor(self):
        flat = {g: 1.0 / len(GROUPS) for g in GROUPS}
        name, _ = classify_shares(flat, min_match=0.99)
        assert name == UNKNOWN

    def test_classify_shares_prefers_concentrated_signature(self):
        shares = {g: 0.0 for g in GROUPS}
        shares["route_error"] = 0.8
        shares["data_delivery"] = 0.2
        assert classify_shares(shares)[0] == "impersonation"
