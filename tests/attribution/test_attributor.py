"""AlarmAttributor mechanics: verdicts, episodes, durability, fusion."""

import numpy as np
import pytest

from repro.attribution import (
    AlarmAttributor,
    AnomalyType,
    Verdict,
    attribution_enabled,
    fuse_verdicts,
    resolve_attributor,
)
from repro.attribution.taxonomy import ANOMALY_TYPES, UNKNOWN
from repro.core.model import CrossFeatureModel

NAMES = ["load", "double_load", "load_pow", "noise"]


def correlated_normal(n=300, seed=0):
    rng = np.random.default_rng(seed)
    activity = rng.uniform(0, 10, size=n)
    return np.column_stack([
        activity + rng.normal(0, 0.3, n),
        2 * activity + rng.normal(0, 0.5, n),
        activity ** 1.5 + rng.normal(0, 0.5, n),
        rng.uniform(0, 1, n),
    ])


@pytest.fixture(scope="module")
def model():
    m = CrossFeatureModel()
    m.fit(correlated_normal(), feature_names=NAMES)
    m.calibrate(correlated_normal(seed=1))
    return m


NORMAL = np.array([5.0, 10.0, 11.0, 0.5])
BROKEN = np.array([5.0, 10.0, 1e6, 0.5])


def make(model, **kw):
    return AlarmAttributor(model, threshold=0.5, **kw)


class TestAttribute:
    def test_requires_fitted_model(self):
        with pytest.raises(ValueError):
            AlarmAttributor(CrossFeatureModel(), threshold=0.5)

    def test_no_verdict_on_healthy_windows(self, model):
        attributor = make(model)
        for k in range(5):
            v = attributor.attribute(5.0 * (k + 1), 0.9, NORMAL, alarming=False)
            assert v is None
        assert attributor.verdicts == 0

    def test_verdict_on_every_alarming_window(self, model):
        attributor = make(model)
        v = attributor.attribute(5.0, 0.1, BROKEN, alarming=True)
        assert isinstance(v, Verdict)
        assert v.windows == 1 and attributor.verdicts == 1
        assert "load_pow" in v.features
        assert len(v.features) == len(v.targets) == len(v.contributions)
        assert all(isinstance(t, int) for t in v.targets)
        assert list(v.contributions) == sorted(v.contributions, reverse=True)

    def test_blame_aggregates_over_the_episode(self, model):
        attributor = make(model)
        v1 = attributor.attribute(5.0, 0.1, BROKEN, alarming=True)
        v2 = attributor.attribute(10.0, 0.1, BROKEN, alarming=True)
        assert (v1.windows, v2.windows) == (1, 2)

    def test_healed_episode_clears_blame(self, model):
        attributor = make(model)
        attributor.attribute(5.0, 0.1, BROKEN, alarming=True)
        # Healthy windows drain the CUSUM statistic back to zero…
        for k in range(10):
            attributor.attribute(10.0 + 5.0 * k, 2.0, NORMAL, alarming=False)
        assert attributor.cusum.stat == 0.0
        # …so the next episode starts from a clean slate.
        v = attributor.attribute(100.0, 0.1, BROKEN, alarming=True)
        assert v.windows == 1

    def test_onset_rides_the_verdict(self, model):
        attributor = make(model)
        attributor.attribute(5.0, 0.9, NORMAL, alarming=False)
        v1 = attributor.attribute(10.0, 0.0, BROKEN, alarming=True)
        assert v1.onset == 10.0  # score 0 crosses the decision level at once
        v2 = attributor.attribute(15.0, 0.0, BROKEN, alarming=True)
        assert v2.onset == 10.0  # frozen for the episode

    def test_residual_flags_after_enough_history(self, model):
        attributor = make(model, residual_min_history=4)
        rng = np.random.default_rng(2)
        for k in range(8):
            row = NORMAL + rng.normal(0, 0.05, size=4)
            attributor.attribute(5.0 * (k + 1), 0.9, row, alarming=False)
        v = attributor.attribute(45.0, 0.1, BROKEN, alarming=True)
        assert len(v.residual) == len(v.features)
        flagged = {f for f, r in zip(v.features, v.residual) if r}
        assert "load_pow" in flagged

    def test_residual_empty_without_history(self, model):
        attributor = make(model)
        v = attributor.attribute(5.0, 0.1, BROKEN, alarming=True)
        assert v.residual == ()

    def test_precomputed_contribution_row_matches_internal(self, model):
        from repro.attribution import contribution_matrix

        a1, a2 = make(model), make(model)
        contribution = contribution_matrix(model, BROKEN)[0]
        v1 = a1.attribute(5.0, 0.1, BROKEN, alarming=True)
        v2 = a2.attribute(5.0, 0.1, BROKEN, alarming=True,
                          contribution=contribution)
        assert v1 == v2

    def test_summary_fragment(self, model):
        attributor = make(model)
        v = attributor.attribute(5.0, 0.0, BROKEN, alarming=True)
        assert v.summary().startswith(f"type={v.anomaly_type} features=")
        assert "onset=5s" in v.summary()


class TestDurability:
    def test_snapshot_restore_resumes_bit_identically(self, model):
        rng = np.random.default_rng(3)
        rows = [NORMAL + rng.normal(0, 0.05, 4) for _ in range(12)]
        scores = [0.9] * 8 + [0.1, 0.9, 0.1, 0.1]

        live = make(model, residual_min_history=4)
        for k in range(6):
            live.attribute(5.0 * (k + 1), scores[k], rows[k], alarming=scores[k] < 0.5)
        clone = make(model, residual_min_history=4)
        clone.restore(live.snapshot())
        for k in range(6, 12):
            alarming = scores[k] < 0.5
            v_live = live.attribute(5.0 * (k + 1), scores[k], rows[k], alarming=alarming)
            v_clone = clone.attribute(5.0 * (k + 1), scores[k], rows[k], alarming=alarming)
            assert v_live == v_clone
        assert clone.snapshot() == live.snapshot()

    def test_snapshot_is_json_safe(self, model):
        import json

        attributor = make(model)
        attributor.attribute(5.0, 0.1, BROKEN, alarming=True)
        state = attributor.snapshot()
        assert json.loads(json.dumps(state)) == state


class TestResolve:
    def test_false_and_none_disable(self, model):
        assert resolve_attributor(model, 0.5, False) is None
        assert resolve_attributor(model, 0.5, None) is None

    def test_true_builds_default(self, model):
        attributor = resolve_attributor(model, 0.5, True)
        assert isinstance(attributor, AlarmAttributor)
        assert attributor.threshold == 0.5

    def test_instance_passes_through(self, model):
        custom = make(model, top_k=3)
        assert resolve_attributor(model, 0.5, custom) is custom

    def test_kill_switch_wins(self, model, monkeypatch):
        monkeypatch.setenv("REPRO_ATTRIBUTION", "0")
        assert not attribution_enabled()
        assert resolve_attributor(model, 0.5, True) is None
        monkeypatch.setenv("REPRO_ATTRIBUTION", "1")
        assert attribution_enabled()
        assert resolve_attributor(model, 0.5, True) is not None


def verdict(atype, match=0.5, features=("a", "b"), targets=(0, 1),
            contributions=(0.9, 0.4), onset=None, windows=1):
    return Verdict(anomaly_type=atype, match=match, features=tuple(features),
                   targets=tuple(targets), contributions=tuple(contributions),
                   residual=(), onset=onset, windows=windows)


class TestFuseVerdicts:
    def test_empty_and_all_none(self):
        assert fuse_verdicts([]) is None
        assert fuse_verdicts([None, None]) is None

    def test_majority_wins(self):
        fused = fuse_verdicts([
            verdict("flooding"), verdict("flooding"), verdict("dropping"),
        ])
        assert fused.anomaly_type == "flooding"
        assert fused.windows == 3

    def test_tie_resolves_to_registry_order(self):
        names = list(ANOMALY_TYPES)
        fused = fuse_verdicts([verdict(names[1]), verdict(names[0])])
        assert fused.anomaly_type == names[0]

    def test_unknown_loses_any_tie(self):
        fused = fuse_verdicts([verdict(UNKNOWN), verdict("dropping")])
        assert fused.anomaly_type == "dropping"

    def test_blame_summed_across_all_votes(self):
        fused = fuse_verdicts([
            verdict("flooding", features=("a", "b"), targets=(0, 1),
                    contributions=(0.5, 0.2)),
            verdict("dropping", features=("b", "c"), targets=(1, 2),
                    contributions=(0.9, 0.1)),
        ])
        assert fused.features[0] == "b"  # 0.2 + 0.9 beats 0.5
        assert fused.contributions[0] == pytest.approx(1.1)

    def test_onset_is_earliest_witness(self):
        fused = fuse_verdicts([
            verdict("flooding", onset=30.0),
            verdict("flooding", onset=10.0),
            verdict("flooding", onset=None),
        ])
        assert fused.onset == 10.0

    def test_match_averages_winning_votes_only(self):
        fused = fuse_verdicts([
            verdict("flooding", match=0.8), verdict("flooding", match=0.4),
            verdict("dropping", match=0.99),
        ])
        assert fused.match == pytest.approx(0.6)

    def test_custom_taxonomy_precedence(self):
        custom = {
            "late": AnomalyType("late", "", {"other": 1.0}),
            "early": AnomalyType("early", "", {"other": 1.0}),
        }
        fused = fuse_verdicts([verdict("early"), verdict("late")],
                              taxonomy=custom)
        assert fused.anomaly_type == "late"
