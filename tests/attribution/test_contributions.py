"""Blame extraction: contribution matrices, labels, and stable ranking."""

import numpy as np
import pytest

from repro.attribution.contributions import (
    contribution_matrix,
    feature_labels,
    target_indices,
    top_contributors,
)
from repro.core.model import CrossFeatureModel
from repro.ml import CLASSIFIERS

NAMES = ["load", "double_load", "load_pow", "noise"]


def correlated_normal(n=300, seed=0):
    rng = np.random.default_rng(seed)
    activity = rng.uniform(0, 10, size=n)
    return np.column_stack([
        activity + rng.normal(0, 0.3, n),
        2 * activity + rng.normal(0, 0.5, n),
        activity ** 1.5 + rng.normal(0, 0.5, n),
        rng.uniform(0, 1, n),
    ])


def fitted_model(classifier="c45", calibrate=True):
    model = CrossFeatureModel(classifier_factory=CLASSIFIERS[classifier])
    model.fit(correlated_normal(), feature_names=NAMES)
    if calibrate:
        model.calibrate(correlated_normal(seed=1))
    return model


class TestContributionMatrix:
    def test_matches_explain_blame(self):
        """Contribution is exactly ``1 - calibrated`` from explain()."""
        model = fitted_model()
        row = np.array([5.0, 10.0, 1e6, 0.5])
        contrib = contribution_matrix(model, row)[0]
        by_target = {e["target"]: e["calibrated"] for e in model.explain(row)}
        for m, target in enumerate(model.targets_):
            assert contrib[m] == 1.0 - by_target[target]

    def test_batch_rows_independent(self):
        model = fitted_model()
        X = correlated_normal(n=8, seed=5)
        batch = contribution_matrix(model, X)
        for k, row in enumerate(X):
            assert np.array_equal(batch[k], contribution_matrix(model, row)[0])

    def test_calibrated_vs_uncalibrated_ordering(self):
        """Calibration rescales blame but must not reorder a clear
        culprit: the broken feature tops both rankings."""
        broken = np.array([5.0, 10.0, 1e6, 0.5])
        for model in (fitted_model(calibrate=True), fitted_model(calibrate=False)):
            contrib = contribution_matrix(model, broken)[0]
            feats, _, contribs = top_contributors(
                contrib, feature_labels(model), target_indices(model)
            )
            assert feats[0] == "load_pow"
            assert list(contribs) == sorted(contribs, reverse=True)

    def test_uncalibrated_blame_is_one_minus_p_true(self):
        model = fitted_model(calibrate=False)
        row = np.array([5.0, 10.0, 11.0, 0.5])
        contrib = contribution_matrix(model, row)[0]
        _, p_true = model._sub_model_outputs(np.asarray([row]))
        assert np.array_equal(contrib, 1.0 - p_true[0])


class TestLabels:
    def test_named_labels_follow_ensemble_order(self):
        model = fitted_model()
        assert feature_labels(model) == [NAMES[t] for t in model.targets_]
        assert target_indices(model) == [int(t) for t in model.targets_]

    def test_unnamed_labels_are_indices(self):
        model = CrossFeatureModel()
        model.fit(correlated_normal())
        assert feature_labels(model) == target_indices(model)


class TestTopContributors:
    def test_ranking_and_truncation(self):
        feats, targets, contribs = top_contributors(
            np.array([0.1, 0.9, 0.5]), ["a", "b", "c"], [0, 1, 2], top_k=2
        )
        assert feats == ("b", "c")
        assert targets == (1, 2)
        assert contribs == (0.9, 0.5)

    def test_exact_ties_keep_ensemble_order(self):
        feats, _, _ = top_contributors(
            np.array([0.5, 0.5, 0.5, 0.5]), list("abcd"), [0, 1, 2, 3]
        )
        assert feats == ("a", "b", "c", "d")

    @pytest.mark.parametrize("classifier", ["c45", "nbc"])
    def test_tied_blame_stable_across_classifiers(self, classifier):
        """Constant columns tie every sub-model exactly; the ranking must
        fall back to ensemble order for C4.5 and NBC alike."""
        model = CrossFeatureModel(classifier_factory=CLASSIFIERS[classifier])
        X = np.tile([1.0, 2.0, 3.0, 4.0, 5.0], (60, 1))
        model.fit(X, feature_names=list("abcde"))
        contrib = contribution_matrix(model, X[0])[0]
        assert len(set(contrib.tolist())) == 1  # genuinely tied
        feats, targets, _ = top_contributors(
            contrib, feature_labels(model), target_indices(model)
        )
        assert list(feats) == [NAMES_ABCDE[t] for t in targets]
        assert feats == ("a", "b", "c", "d", "e")


NAMES_ABCDE = list("abcde")
