"""Temporal layer: CUSUM change points and forecast residuals."""

import numpy as np
import pytest

from repro.attribution.changepoint import (
    ChangePoint,
    ScoreCusum,
    residual_flags,
    residual_zscores,
    score_change_points,
)
from repro.eval.timeseries import ScoreSeries

REF = 1.0  # reference (threshold) score; drift 0.1, decision 0.5


def series(times, scores):
    return ScoreSeries(times=np.asarray(times, float),
                       scores=np.asarray(scores, float))


class TestScoreCusum:
    def test_reference_must_be_positive(self):
        with pytest.raises(ValueError):
            ScoreCusum(0.0)
        with pytest.raises(ValueError):
            ScoreCusum(-1.0)

    def test_healthy_scores_keep_statistic_at_zero(self):
        cusum = ScoreCusum(REF)
        for k in range(20):
            cusum.update(5.0 * k, 1.2)
            assert cusum.stat == 0.0
            assert cusum.onset is None

    def test_drift_allowance_drains_shallow_dips(self):
        # Scores just under the reference but above reference - drift
        # must not accumulate: a 2%-false-alarm threshold means ~2% of
        # normal windows sit slightly below it.
        cusum = ScoreCusum(REF)
        for k in range(50):
            cusum.update(5.0 * k, 0.95)
            assert cusum.stat == 0.0

    def test_onset_is_where_statistic_left_zero(self):
        cusum = ScoreCusum(REF)
        cusum.update(5.0, 1.2)      # healthy
        cusum.update(10.0, 0.6)     # collapse starts here (stat 0.3)
        assert cusum.onset is None  # not yet decided
        cusum.update(15.0, 0.6)     # stat 0.6 crosses the decision level
        assert cusum.onset == 10.0
        assert cusum.detected_at == 15.0

    def test_single_shallow_dip_never_decides(self):
        cusum = ScoreCusum(REF)
        cusum.update(5.0, 0.6)   # one isolated dip: stat = 0.3 < decision
        assert cusum.onset is None
        cusum.update(10.0, 1.5)  # healthy window drains it away
        assert cusum.stat == 0.0

    def test_self_healing_resets_the_episode(self):
        cusum = ScoreCusum(REF)
        cusum.update(5.0, 0.0)
        cusum.update(10.0, 0.0)
        assert cusum.onset == 5.0
        for k in range(10):  # recovery: high scores drain the statistic
            cusum.update(15.0 + 5.0 * k, 3.0)
        assert cusum.stat == 0.0 and cusum.onset is None
        cusum.update(100.0, 0.0)
        cusum.update(105.0, 0.0)
        assert cusum.onset == 100.0  # fresh episode, fresh onset

    def test_onset_frozen_once_decided(self):
        cusum = ScoreCusum(REF)
        for t in (5.0, 10.0, 15.0, 20.0):
            cusum.update(t, 0.1)
        assert cusum.onset == 5.0 and cusum.detected_at == 5.0

    def test_snapshot_roundtrip_is_exact(self):
        cusum = ScoreCusum(REF)
        for t, s in [(5.0, 1.2), (10.0, 0.4), (15.0, 0.6)]:
            cusum.update(t, s)
        clone = ScoreCusum(REF)
        clone.restore(cusum.snapshot())
        for t, s in [(20.0, 0.1), (25.0, 2.0), (30.0, 0.3)]:
            assert clone.update(t, s) == cusum.update(t, s)
            assert clone.snapshot() == cusum.snapshot()


class TestScoreChangePoints:
    def test_two_episodes_localised(self):
        times = np.arange(10, dtype=float) * 5.0
        scores = [1.2, 0.1, 0.1, 1.2, 3.0, 1.2, 1.2, 0.0, 0.0, 0.0]
        points = score_change_points(series(times, scores), REF)
        assert points == [
            ChangePoint(onset=5.0, detected_at=5.0),
            ChangePoint(onset=35.0, detected_at=35.0),
        ]

    def test_quiet_series_has_no_change_points(self):
        points = score_change_points(series([5.0, 10.0], [1.2, 1.1]), REF)
        assert points == []


class TestResiduals:
    def test_insufficient_history_returns_none(self):
        history = np.ones((7, 3))
        assert residual_zscores(history, np.ones(3)) is None
        assert residual_flags(history, np.ones(3)) is None

    def test_step_change_flags_only_the_stepped_feature(self):
        rng = np.random.default_rng(0)
        history = rng.normal(10.0, 1.0, size=(24, 4))
        current = history.mean(axis=0).copy()
        current[2] += 50.0  # dozens of sigmas
        flags = residual_flags(history, current)
        assert flags.tolist() == [False, False, True, False]

    def test_constant_history_makes_any_change_surprising(self):
        history = np.full((10, 2), 3.0)
        flags = residual_flags(history, np.array([3.0, 3.0 + 1e-6]))
        assert flags.tolist() == [False, True]

    def test_one_dimensional_history_promoted(self):
        assert residual_zscores(np.ones(3), np.ones(3), min_history=2) is None
