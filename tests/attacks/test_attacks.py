"""Attack-module tests: session scheduling and each attack's mechanism."""

import pytest

from repro.attacks.base import Attack, merge_intervals, periodic_sessions
from repro.attacks.blackhole import BlackholeAttack
from repro.attacks.dropping import DropMode, PacketDroppingAttack
from repro.attacks.flooding import UpdateStormAttack
from repro.simulation.packet import Direction, PacketType

from tests.routing.helpers import Net, line, received_count


class TestSessions:
    def test_periodic_sessions_equal_duration_and_gap(self):
        sessions = periodic_sessions(start=100.0, duration=50.0, until=400.0)
        assert sessions == [(100.0, 150.0), (200.0, 250.0), (300.0, 350.0)]

    def test_custom_gap(self):
        sessions = periodic_sessions(start=0.0, duration=10.0, until=100.0, gap=40.0)
        assert sessions == [(0.0, 10.0), (50.0, 60.0)]

    def test_last_session_clamped_to_until(self):
        sessions = periodic_sessions(start=90.0, duration=50.0, until=100.0)
        assert sessions == [(90.0, 100.0)]

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            periodic_sessions(0.0, 0.0, 100.0)

    def test_merge_intervals_coalesces_overlaps(self):
        merged = merge_intervals([(0, 10), (5, 15), (20, 30)])
        assert merged == [(0, 15), (20, 30)]

    def test_merge_intervals_empty(self):
        assert merge_intervals([]) == []

    def test_merge_adjacent_intervals(self):
        assert merge_intervals([(0, 10), (10, 20)]) == [(0, 20)]


class RecordingAttack(Attack):
    """Counts activate/deactivate calls for session-scheduling tests."""

    def __init__(self, attacker, sessions):
        super().__init__(attacker, sessions)
        self.events = []

    def activate(self):
        self.events.append(("on", self.sim.now))

    def deactivate(self):
        self.events.append(("off", self.sim.now))


class TestAttackScheduling:
    def test_sessions_fire_at_boundaries(self):
        net = line(2)
        attack = RecordingAttack(attacker=1, sessions=[(10.0, 20.0), (30.0, 40.0)])
        attack.install(net.sim, net.nodes)
        net.run(50.0)
        assert attack.events == [("on", 10.0), ("off", 20.0), ("on", 30.0), ("off", 40.0)]

    def test_active_flag_tracks_sessions(self):
        net = line(2)
        attack = RecordingAttack(attacker=1, sessions=[(10.0, 20.0)])
        attack.install(net.sim, net.nodes)
        net.run(15.0)
        assert attack.active
        net.run(10.0)
        assert not attack.active

    def test_attacker_out_of_range_rejected(self):
        net = line(2)
        attack = RecordingAttack(attacker=9, sessions=[(0.0, 1.0)])
        with pytest.raises(ValueError):
            attack.install(net.sim, net.nodes)

    def test_node_property_requires_install(self):
        attack = RecordingAttack(attacker=0, sessions=[])
        with pytest.raises(RuntimeError):
            _ = attack.node


class TestBlackhole:
    def test_absorbs_transit_data_while_active(self):
        net = line(3)
        attack = BlackholeAttack(attacker=1, sessions=[(5.0, 100.0)])
        attack.install(net.sim, net.nodes)
        net.send(0, 2)  # before the session: delivered
        net.run(5.5)
        assert net.delivered(2) == 1
        for _ in range(3):
            net.send(0, 2)
        net.run(20.0)
        assert net.delivered(2) == 1  # everything after is absorbed
        assert attack.absorbed >= 3

    def test_adverts_broadcast_while_active(self):
        net = line(3)
        attack = BlackholeAttack(attacker=1, sessions=[(5.0, 30.0)], advert_interval=5.0)
        attack.install(net.sim, net.nodes)
        net.send(0, 2)
        net.run(40.0)
        assert attack.adverts_sent >= 4  # 2 victims x several sweeps
        # The forged floods are visible in the attacker's trace...
        assert net.stats(1).packet_count(PacketType.RREQ, Direction.SENT) >= 4
        # ... and in bystanders' traces.
        assert received_count(net, 0, PacketType.RREQ) >= 2

    def test_stops_absorbing_after_session(self):
        net = line(3)
        attack = BlackholeAttack(attacker=1, sessions=[(5.0, 10.0)])
        attack.install(net.sim, net.nodes)
        net.run(12.0)
        assert net.nodes[1].drop_filter is None


class TestDropping:
    def _run_with_drop(self, mode, **kwargs):
        net = line(3)
        attack = PacketDroppingAttack(
            attacker=1, sessions=[(0.0, 1000.0)], mode=mode, **kwargs
        )
        attack.install(net.sim, net.nodes)
        net.run(1.0)
        for _ in range(10):
            net.send(0, 2)
            net.run(5.0)
        return net, attack

    def test_constant_drops_everything(self):
        net, attack = self._run_with_drop(DropMode.CONSTANT)
        assert net.delivered(2) == 0
        assert attack.dropped == 10

    def test_selective_only_drops_target_destination(self):
        net = Net([(0, 0), (200, 0), (400, 0), (200, 150)])
        attack = PacketDroppingAttack(
            attacker=1, sessions=[(0.0, 1000.0)], mode=DropMode.SELECTIVE, destination=2
        )
        attack.install(net.sim, net.nodes)
        net.run(1.0)
        for _ in range(5):
            net.send(0, 2)  # via attacker -> dropped
            net.send(0, 3)  # via attacker but another destination -> passes
            net.run(5.0)
        assert net.delivered(2) == 0
        assert net.delivered(3) == 5

    def test_random_drops_a_fraction(self):
        net, attack = self._run_with_drop(DropMode.RANDOM, drop_prob=0.5)
        assert 0 < net.delivered(2) < 10

    def test_periodic_duty_cycle(self):
        net, attack = self._run_with_drop(DropMode.PERIODIC, period=10.0, duty=0.5)
        assert 0 < net.delivered(2) < 10

    def test_control_packets_never_dropped(self):
        net, attack = self._run_with_drop(DropMode.CONSTANT)
        # Route discovery still works through the attacker (it only drops
        # data), so the source keeps finding "routes".
        assert net.protocols[0].table  # discovery succeeded at least once

    def test_selective_requires_destination(self):
        with pytest.raises(ValueError):
            PacketDroppingAttack(attacker=0, sessions=[], mode=DropMode.SELECTIVE)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            PacketDroppingAttack(attacker=0, sessions=[], mode=DropMode.RANDOM,
                                 drop_prob=1.5)


class TestUpdateStorm:
    def test_floods_at_configured_rate(self):
        net = line(3)
        attack = UpdateStormAttack(attacker=1, sessions=[(0.0, 10.0)], rate=10.0)
        attack.install(net.sim, net.nodes)
        net.run(15.0)
        assert 80 <= attack.floods_sent <= 110
        assert received_count(net, 0, PacketType.RREQ) >= 50

    def test_stops_after_session(self):
        net = line(3)
        attack = UpdateStormAttack(attacker=1, sessions=[(0.0, 5.0)], rate=10.0)
        attack.install(net.sim, net.nodes)
        net.run(20.0)
        flooded = attack.floods_sent
        net.run(20.0)
        assert attack.floods_sent == flooded

    def test_congests_the_network(self):
        """The storm delays/starves legitimate traffic (the §2.3 goal)."""
        quiet = line(4)
        for _ in range(20):
            quiet.send(0, 3)
            quiet.run(2.0)
        stormy = line(4)
        attack = UpdateStormAttack(attacker=1, sessions=[(0.0, 100.0)], rate=200.0)
        attack.install(stormy.sim, stormy.nodes)
        for _ in range(20):
            stormy.send(0, 3)
            stormy.run(2.0)
        assert stormy.delivered(3) <= quiet.delivered(3)
        assert stormy.medium.congestion_drops >= 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            UpdateStormAttack(attacker=0, sessions=[], rate=0.0)
