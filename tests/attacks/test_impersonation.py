"""Identity impersonation attack tests (§2.3 taxonomy)."""

import pytest

from repro.attacks.impersonation import ImpersonationAttack
from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import RouteEventKind

from tests.routing.helpers import line, received_count


class TestConstruction:
    def test_self_impersonation_rejected(self):
        with pytest.raises(ValueError):
            ImpersonationAttack(attacker=1, victim=1, sessions=[])

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ImpersonationAttack(attacker=1, victim=2, sessions=[], rate=0.0)


class TestAodvImpersonation:
    def build(self):
        net = line(4)
        # Warm up routes: 0 -> 3 through 1 and 2.
        net.send(0, 3)
        net.run(5.0)
        attack = ImpersonationAttack(attacker=2, victim=1,
                                     sessions=[(10.0, 40.0)], rate=4.0)
        attack.install(net.sim, net.nodes)
        return net, attack

    def test_forges_both_channels(self):
        net, attack = self.build()
        net.run(40.0)
        assert attack.forged_control > 10
        assert attack.forged_data > 10

    def test_forged_rerr_tears_down_routes_through_victim(self):
        net, attack = self.build()
        removals_before = net.stats(0).route_event_count(RouteEventKind.REMOVAL)
        net.run(40.0)
        # Node 0's route to 3 goes through node 1 (the victim) — the forged
        # errors keep invalidating it.
        assert net.stats(0).route_event_count(RouteEventKind.REMOVAL) > removals_before

    def test_forged_data_arrives_attributed_to_victim(self):
        net, attack = self.build()
        net.run(40.0)
        # Receivers see data "from" node 1 that node 1 never sent.
        received_total = sum(
            net.stats(i).packet_count(PacketType.DATA, Direction.RECEIVED)
            for i in range(4)
        )
        sent_by_victim = net.stats(1).packet_count(PacketType.DATA, Direction.SENT)
        assert received_total > sent_by_victim  # attribution is broken

    def test_stops_after_session(self):
        net, attack = self.build()
        net.run(40.0)
        forged = attack.forged_control + attack.forged_data
        net.run(30.0)
        assert attack.forged_control + attack.forged_data == forged


class TestDsrImpersonation:
    def test_runs_and_forges_on_dsr(self):
        net = line(4, protocol="dsr")
        net.send(0, 3)
        net.run(5.0)
        attack = ImpersonationAttack(attacker=2, victim=1,
                                     sessions=[(10.0, 30.0)], rate=4.0)
        attack.install(net.sim, net.nodes)
        net.run(40.0)
        assert attack.forged_control > 5
        # Neighbours heard forged RERRs.
        assert received_count(net, 1, PacketType.RERR) + received_count(
            net, 3, PacketType.RERR
        ) > 0
