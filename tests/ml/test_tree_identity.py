"""Tree-identity contract for the vectorized fits (C4.5 and NBC).

The shared-pass / vectorized training paths may change how the fit is
*computed*, never what it computes: the grown tree must match the
reference implementation split for split, count for count — which
implies bit-identical ``predict_proba``.  These tests exercise that
contract over random categorical data, the degenerate shapes that break
naive vectorizations, and the fallback / kill-switch paths.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.decision_tree import C45Classifier, trees_equal
from repro.ml.naive_bayes import NaiveBayesClassifier


def _assert_identical_fits(fast: C45Classifier, ref: C45Classifier, X) -> None:
    assert trees_equal(fast.root_, ref.root_), "fitted trees diverge structurally"
    np.testing.assert_array_equal(fast.predict_proba(X), ref.predict_proba(X))


def _rng_dataset(rng, n, d, k_x, k_y, correlated=True):
    X = rng.integers(0, k_x, size=(n, d))
    y = rng.integers(0, k_y, size=n)
    if correlated and d:
        # Give the tree something to find: tie a column to the label.
        X[:, rng.integers(0, d)] = y % k_x
    return X.astype(np.int64), y.astype(np.int64)


@st.composite
def categorical_dataset(draw):
    n = draw(st.integers(min_value=4, max_value=80))
    d = draw(st.integers(min_value=1, max_value=6))
    k_x = draw(st.integers(min_value=1, max_value=6))
    k_y = draw(st.integers(min_value=2, max_value=4))
    X = draw(arrays(np.int64, (n, d), elements=st.integers(0, k_x - 1)))
    y = draw(arrays(np.int64, (n,), elements=st.integers(0, k_y - 1)))
    return X, y


class TestC45Identity:
    @given(data=categorical_dataset(),
           prune=st.booleans(),
           max_depth=st.sampled_from([None, 1, 2, 5]))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_vectorized_grow_matches_reference(self, data, prune, max_depth):
        X, y = data
        fast = C45Classifier(prune=prune, max_depth=max_depth).fit(X, y)
        ref = C45Classifier(prune=prune, max_depth=max_depth)._fit_reference(X, y)
        _assert_identical_fits(fast, ref, X)

    @pytest.mark.parametrize("prune", [False, True])
    @pytest.mark.parametrize("max_depth", [None, 3])
    def test_randomized_trials(self, prune, max_depth):
        rng = np.random.default_rng(7)
        for _ in range(40):
            n = int(rng.integers(4, 200))
            d = int(rng.integers(1, 9))
            X, y = _rng_dataset(rng, n, d,
                                k_x=int(rng.integers(2, 7)),
                                k_y=int(rng.integers(2, 6)))
            fast = C45Classifier(prune=prune, max_depth=max_depth).fit(X, y)
            ref = C45Classifier(prune=prune, max_depth=max_depth)._fit_reference(X, y)
            _assert_identical_fits(fast, ref, X)

    def test_degenerate_single_value_columns(self):
        rng = np.random.default_rng(3)
        X, y = _rng_dataset(rng, 60, 4, k_x=5, k_y=3)
        X[:, 0] = 2          # constant column: n_values_[0] == 3 but 1 seen
        X[:, 2] = 0          # constant at zero: n_values_[2] == 1
        fast = C45Classifier().fit(X, y)
        ref = C45Classifier()._fit_reference(X, y)
        _assert_identical_fits(fast, ref, X)

    def test_all_columns_constant_yields_leaf(self):
        X = np.zeros((30, 3), dtype=np.int64)
        y = np.array([0, 1] * 15, dtype=np.int64)
        model = C45Classifier().fit(X, y)
        assert model.root_.is_leaf
        assert trees_equal(
            model.root_, C45Classifier()._fit_reference(X, y).root_
        )

    def test_high_cardinality_falls_back_to_reference(self):
        # >= 8 values / classes: the sequential-sum equivalence argument
        # no longer holds, so fit() must route through the reference.
        rng = np.random.default_rng(11)
        X, y = _rng_dataset(rng, 300, 5, k_x=12, k_y=9)
        model = C45Classifier()
        model.fit(X, y)
        assert not model._fast_fit_usable()
        ref = C45Classifier()._fit_reference(X, y)
        _assert_identical_fits(model, ref, X)

    def test_kill_switch_forces_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_FIT", "0")
        rng = np.random.default_rng(13)
        X, y = _rng_dataset(rng, 80, 4, k_x=4, k_y=3)
        model = C45Classifier()
        model.fit(X, y)
        assert not model._fast_fit_usable()
        ref = C45Classifier()._fit_reference(X, y)
        _assert_identical_fits(model, ref, X)

    def test_root_tables_reproduce_plain_fit(self):
        rng = np.random.default_rng(17)
        X, y = _rng_dataset(rng, 150, 6, k_x=5, k_y=4)
        plain = C45Classifier().fit(X, y)
        tables = [
            np.bincount(
                X[:, a] * plain.n_classes_ + y,
                minlength=int(plain.n_values_[a]) * plain.n_classes_,
            ).reshape(int(plain.n_values_[a]), plain.n_classes_)
            for a in range(X.shape[1])
        ]
        seeded = C45Classifier().fit(X, y, root_tables=tables)
        _assert_identical_fits(seeded, plain, X)

    def test_root_tables_length_mismatch_raises(self):
        rng = np.random.default_rng(19)
        X, y = _rng_dataset(rng, 40, 3, k_x=3, k_y=2)
        with pytest.raises(ValueError, match="root_tables"):
            C45Classifier().fit(X, y, root_tables=[np.zeros((3, 2), dtype=np.int64)])


class TestNaiveBayesIdentity:
    @staticmethod
    def _reference_tables(model, X, y):
        """The pre-fusion per-attribute counting loop."""
        k = model.n_classes_
        return [
            np.bincount(
                X[:, a] * k + y, minlength=int(model.n_values_[a]) * k
            ).reshape(int(model.n_values_[a]), k)
            for a in range(X.shape[1])
        ]

    @given(data=categorical_dataset())
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fused_count_matches_per_attribute_loop(self, data):
        X, y = data
        fused = NaiveBayesClassifier().fit(X, y)
        ref = NaiveBayesClassifier()
        Xr, yr = ref._setup_fit(X, y)
        ref.fit(X, y, root_tables=self._reference_tables(ref, Xr, yr))
        np.testing.assert_array_equal(fused.log_prior_, ref.log_prior_)
        assert len(fused.log_cond_) == len(ref.log_cond_)
        for a, b in zip(fused.log_cond_, ref.log_cond_):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            fused.predict_proba(X), ref.predict_proba(X)
        )

    def test_root_tables_length_mismatch_raises(self):
        X = np.zeros((10, 2), dtype=np.int64)
        y = np.array([0, 1] * 5, dtype=np.int64)
        with pytest.raises(ValueError, match="root_tables"):
            NaiveBayesClassifier().fit(X, y, root_tables=[np.zeros((1, 2))])
