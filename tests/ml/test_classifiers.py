"""Classifier tests: C4.5, RIPPER, naive Bayes on synthetic categorical data."""

import numpy as np
import pytest

from repro.ml import CLASSIFIERS
from repro.ml.base import check_categorical
from repro.ml.decision_tree import C45Classifier, _pessimistic_errors, _z_value
from repro.ml.naive_bayes import NaiveBayesClassifier
from repro.ml.ripper import RipperClassifier, Rule

ALL = [C45Classifier, RipperClassifier, NaiveBayesClassifier]


def xor_dataset(n=400, noise=0.0, seed=0):
    """y = x0 XOR x1 with distractor columns — nonlinear, needs real splits."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, 4))
    y = X[:, 0] ^ X[:, 1]
    if noise:
        flip = rng.random(n) < noise
        y = np.where(flip, 1 - y, y)
    return X, y


def single_attr_dataset(n=300, seed=1):
    """y fully determined by one 5-valued attribute."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 5, size=(n, 3))
    y = X[:, 1] % 3
    return X, y


class TestCheckCategorical:
    def test_accepts_float_integers(self):
        X, y = check_categorical(np.array([[1.0, 2.0]]), np.array([0]))
        assert X.dtype == np.int64

    def test_rejects_fractional(self):
        with pytest.raises(ValueError):
            check_categorical(np.array([[0.5]]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_categorical(np.array([[-1]]))

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            check_categorical(np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            check_categorical(np.array([[1], [2]]), np.array([0]))


@pytest.mark.parametrize("cls", ALL, ids=lambda c: c.__name__)
class TestCommonBehaviour:
    def test_learns_single_attribute_rule(self, cls):
        X, y = single_attr_dataset()
        model = cls().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_proba_rows_sum_to_one(self, cls):
        X, y = xor_dataset()
        model = cls().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)

    def test_proba_in_unit_interval(self, cls):
        X, y = xor_dataset(noise=0.1)
        proba = cls().fit(X, y).predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_predict_matches_argmax_proba(self, cls):
        X, y = xor_dataset(noise=0.05, seed=3)
        model = cls().fit(X, y)
        np.testing.assert_array_equal(
            model.predict(X), np.argmax(model.predict_proba(X), axis=1)
        )

    def test_single_class_training(self, cls):
        X = np.zeros((20, 3), dtype=int)
        y = np.zeros(20, dtype=int)
        model = cls().fit(X, y)
        proba = model.predict_proba(X[:2])
        assert proba.shape == (2, 1)
        np.testing.assert_allclose(proba, 1.0)

    def test_unseen_attribute_values_do_not_crash(self, cls):
        X, y = single_attr_dataset()
        model = cls().fit(X, y)
        X_far = X.copy()
        X_far[:, 0] = 99
        proba = model.predict_proba(X_far[:5])
        assert np.isfinite(proba).all()

    def test_empty_fit_rejected(self, cls):
        with pytest.raises(ValueError):
            cls().fit(np.empty((0, 3), dtype=int), np.empty(0, dtype=int))

    def test_predict_before_fit_rejected(self, cls):
        with pytest.raises(RuntimeError):
            cls().predict_proba(np.zeros((1, 3), dtype=int))


class TestC45:
    def test_solves_xor_unlike_naive_bayes(self):
        """XOR separates tree learners from NB — the paper's C4.5 > NBC."""
        X, y = xor_dataset()
        tree_acc = (C45Classifier().fit(X, y).predict(X) == y).mean()
        nb_acc = (NaiveBayesClassifier().fit(X, y).predict(X) == y).mean()
        assert tree_acc > 0.99
        assert nb_acc < tree_acc - 0.2  # NB cannot represent XOR

    def test_pruning_reduces_leaves_on_noise(self):
        X, y = xor_dataset(n=300, noise=0.25, seed=5)
        grown = C45Classifier(prune=False).fit(X, y)
        pruned = C45Classifier(prune=True).fit(X, y)
        assert pruned.n_leaves <= grown.n_leaves

    def test_max_depth_respected(self):
        X, y = xor_dataset()
        model = C45Classifier(max_depth=1, prune=False).fit(X, y)
        assert model.depth <= 1

    def test_leaf_probabilities_laplace_smoothed(self):
        X = np.array([[0], [0], [1], [1]])
        y = np.array([0, 0, 1, 1])
        proba = C45Classifier(prune=False).fit(X, y).predict_proba(np.array([[0]]))
        # Leaf has 2 examples of class 0: (2+1)/(2+2) = 0.75.
        assert proba[0, 0] == pytest.approx(0.75)

    def test_z_value_matches_reference(self):
        assert _z_value(0.25) == pytest.approx(0.6744897, rel=1e-5)
        assert _z_value(0.05) == pytest.approx(1.6448536, rel=1e-4)

    def test_pessimistic_errors_increase_with_confidence(self):
        assert _pessimistic_errors(100, 10, _z_value(0.05)) > _pessimistic_errors(
            100, 10, _z_value(0.25)
        )

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            C45Classifier(min_samples_split=1)
        with pytest.raises(ValueError):
            C45Classifier(cf=0.7)


class TestRipper:
    def test_rules_are_inspectable(self):
        X, y = single_attr_dataset()
        model = RipperClassifier().fit(X, y)
        assert model.n_rules >= 1
        for rule in model.rules_:
            assert str(rule).startswith("IF ")
            assert rule.class_counts is not None

    def test_rule_covers(self):
        rule = Rule(target=1, literals=[(0, 2), (1, 3)])
        X = np.array([[2, 3, 9], [2, 4, 9], [1, 3, 9]])
        assert rule.covers(X).tolist() == [True, False, False]

    def test_rarest_class_learned_first(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 3, size=(300, 3))
        y = np.where(X[:, 0] == 0, 1, 0)  # class 1 is the minority
        model = RipperClassifier().fit(X, y)
        assert model.rules_[0].target == 1

    def test_solves_xor(self):
        X, y = xor_dataset()
        model = RipperClassifier().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_max_rules_cap(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 5, size=(500, 6))
        y = rng.integers(0, 3, size=500)  # pure noise
        model = RipperClassifier(max_rules_per_class=2).fit(X, y)
        assert model.n_rules <= 2 * 3

    def test_invalid_prune_fraction(self):
        with pytest.raises(ValueError):
            RipperClassifier(prune_fraction=0.0)


class TestNaiveBayes:
    def test_matches_hand_computed_posterior(self):
        # P(y=0)=0.5; attribute 0 perfectly informative.
        X = np.array([[0], [0], [1], [1]])
        y = np.array([0, 0, 1, 1])
        model = NaiveBayesClassifier(alpha=1.0).fit(X, y)
        proba = model.predict_proba(np.array([[0]]))
        # p(x=0|y=0) = (2+1)/(2+2) = .75 ; p(x=0|y=1) = (0+1)/(2+2) = .25
        # priors equal -> posterior = .75 / (.75 + .25)
        assert proba[0, 0] == pytest.approx(0.75)

    def test_laplace_keeps_unseen_combinations_nonzero(self):
        X = np.array([[0, 0], [1, 1]])
        y = np.array([0, 1])
        proba = NaiveBayesClassifier().fit(X, y).predict_proba(np.array([[0, 1]]))
        assert (proba > 0).all()

    def test_stronger_smoothing_flattens(self):
        X, y = single_attr_dataset()
        sharp = NaiveBayesClassifier(alpha=0.1).fit(X, y).predict_proba(X)
        flat = NaiveBayesClassifier(alpha=100.0).fit(X, y).predict_proba(X)
        assert flat.max() < sharp.max()

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier(alpha=0.0)


class TestRegistry:
    def test_registry_contents(self):
        assert set(CLASSIFIERS) == {"c45", "ripper", "nbc"}
        for cls in CLASSIFIERS.values():
            X, y = single_attr_dataset()
            assert (cls().fit(X, y).predict(X) == y).mean() > 0.9
