"""Hypothesis property tests for the classifiers and core data structures."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.discretization import EqualFrequencyDiscretizer
from repro.core.scoring import average_match_count, average_probability
from repro.ml import CLASSIFIERS

CLASSIFIER_NAMES = sorted(CLASSIFIERS)


@st.composite
def categorical_dataset(draw):
    n = draw(st.integers(min_value=5, max_value=60))
    d = draw(st.integers(min_value=1, max_value=4))
    k_x = draw(st.integers(min_value=2, max_value=4))
    k_y = draw(st.integers(min_value=2, max_value=3))
    X = draw(arrays(np.int64, (n, d), elements=st.integers(0, k_x - 1)))
    y = draw(arrays(np.int64, (n,), elements=st.integers(0, k_y - 1)))
    return X, y


@pytest.mark.parametrize("name", CLASSIFIER_NAMES)
class TestClassifierProperties:
    @given(data=categorical_dataset())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_proba_is_distribution_on_arbitrary_data(self, name, data):
        X, y = data
        model = CLASSIFIERS[name]().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(X), int(y.max()) + 1)
        assert (proba >= 0).all()
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-8)

    @given(data=categorical_dataset())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fit_is_deterministic(self, name, data):
        X, y = data
        p1 = CLASSIFIERS[name]().fit(X, y).predict_proba(X)
        p2 = CLASSIFIERS[name]().fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(p1, p2)


class TestDiscretizerProperties:
    @given(
        X=arrays(
            np.float64,
            st.tuples(st.integers(10, 80), st.integers(1, 5)),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_codes_within_bucket_range(self, X):
        disc = EqualFrequencyDiscretizer(n_buckets=5)
        codes = disc.fit_transform(X)
        assert codes.shape == X.shape
        assert (codes >= 0).all()
        assert (codes < disc.n_values()[None, :]).all()

    @given(
        X=arrays(
            np.float64,
            st.tuples(st.integers(20, 60), st.integers(1, 3)),
            elements=st.floats(-1e4, 1e4, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_each_column(self, X):
        """Larger raw values never get smaller bucket codes."""
        disc = EqualFrequencyDiscretizer(n_buckets=5)
        codes = disc.fit_transform(X)
        for j in range(X.shape[1]):
            order = np.argsort(X[:, j], kind="stable")
            assert (np.diff(codes[order, j]) >= 0).all()

    @given(
        X=arrays(
            np.float64,
            st.tuples(st.integers(25, 60), st.integers(1, 3)),
            elements=st.floats(0, 1e3, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_training_rows_never_out_of_range(self, X):
        """The out-of-range bucket is empty on the data that defined it."""
        disc = EqualFrequencyDiscretizer(n_buckets=5)
        codes = disc.fit_transform(X)
        n_values = disc.n_values()
        for j in range(X.shape[1]):
            # The top (out-of-range) bucket exists but holds no training row.
            assert (codes[:, j] < n_values[j] - 1).all() or len(np.unique(X[:, j])) == 1


class TestScoringProperties:
    @given(
        p=arrays(
            np.float64,
            st.tuples(st.integers(1, 30), st.integers(1, 20)),
            elements=st.floats(0.0, 1.0, width=64),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_average_probability_bounded(self, p):
        scores = average_probability(p)
        assert (scores >= 0).all() and (scores <= 1).all()

    @given(
        m=arrays(
            np.int64,
            st.tuples(st.integers(1, 30), st.integers(1, 20)),
            elements=st.integers(0, 1),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_match_count_equals_probability_special_case(self, m):
        """Algorithm 2 == Algorithm 3 with 0/1 probabilities (paper §3)."""
        np.testing.assert_allclose(
            average_match_count(m), average_probability(m.astype(float))
        )

    @given(
        p=arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 15)),
            elements=st.floats(0.0, 1.0, width=64),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_monotonicity_in_submodel_outputs(self, p):
        """Raising any sub-model probability never lowers the score."""
        base = average_probability(p)
        boosted = p.copy()
        boosted[0] = np.minimum(boosted[0] + 0.1, 1.0)
        assert average_probability(boosted)[0] >= base[0] - 1e-12
