"""Traffic-agent tests: CBR, simplified TCP, connection patterns."""

import math
import random

import pytest

from repro.simulation.packet import PacketType
from repro.traffic.cbr import CbrSink, CbrSource
from repro.traffic.connections import generate_connections
from repro.traffic.tcp import TcpSink, TcpSource

from tests.routing.helpers import Net, line


class TestConnections:
    def test_count_respects_maximum(self):
        conns = generate_connections(10, 20, random.Random(0))
        assert len(conns) == 20

    def test_capped_by_possible_pairs(self):
        conns = generate_connections(3, 100, random.Random(0))
        assert len(conns) == 6  # 3 * 2 ordered pairs

    def test_pairs_distinct_and_loop_free(self):
        conns = generate_connections(8, 30, random.Random(1))
        pairs = [(c.src, c.dst) for c in conns]
        assert len(set(pairs)) == len(pairs)
        assert all(c.src != c.dst for c in conns)

    def test_start_times_within_window(self):
        conns = generate_connections(10, 20, random.Random(2), start_window=90.0)
        assert all(0 <= c.start <= 90.0 for c in conns)

    def test_flow_ids_unique(self):
        conns = generate_connections(10, 20, random.Random(3))
        ids = [c.flow_id for c in conns]
        assert len(set(ids)) == len(ids)

    def test_deterministic_for_seed(self):
        a = generate_connections(10, 15, random.Random(7))
        b = generate_connections(10, 15, random.Random(7))
        assert a == b

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            generate_connections(1, 5, random.Random(0))


class TestCbr:
    def test_rate_of_quarter_sends_every_four_seconds(self):
        net = line(2)
        src = CbrSource(net.nodes[0], dest=1, flow_id=0, rate=0.25, start=0.0,
                        stop=100.0, jitter=0.0)
        sink = CbrSink(net.nodes[1], flow_id=0)
        net.run(100.0)
        assert src.sent == pytest.approx(25, abs=2)
        assert sink.received == pytest.approx(src.sent, abs=3)

    def test_stop_time_honoured(self):
        net = line(2)
        src = CbrSource(net.nodes[0], dest=1, flow_id=0, rate=1.0, start=0.0, stop=10.0)
        CbrSink(net.nodes[1], flow_id=0)
        net.run(50.0)
        assert src.sent <= 11

    def test_invalid_rate_rejected(self):
        net = line(2)
        with pytest.raises(ValueError):
            CbrSource(net.nodes[0], dest=1, flow_id=0, rate=0.0)


class TestTcp:
    def test_bulk_transfer_delivers_in_order(self):
        net = line(3)
        TcpSource(net.nodes[0], dest=2, flow_id=0, start=0.0, stop=30.0)
        sink = TcpSink(net.nodes[2], peer=0, flow_id=0)
        net.run(40.0)
        assert sink.delivered > 10
        assert sink.expected == sink.delivered  # cumulative, in order

    def test_acks_flow_back(self):
        net = line(2)
        src = TcpSource(net.nodes[0], dest=1, flow_id=0, start=0.0, stop=20.0)
        TcpSink(net.nodes[1], peer=0, flow_id=0)
        net.run(30.0)
        assert src.send_base > 0  # ACKs advanced the window

    def test_retransmission_after_blackout(self):
        net = line(3)
        src = TcpSource(net.nodes[0], dest=2, flow_id=0, start=0.0, stop=60.0)
        sink = TcpSink(net.nodes[2], peer=0, flow_id=0)
        net.run(10.0)
        delivered_before = sink.delivered
        # Short blackout: relay vanishes, then comes back.
        net.mobility.move(1, (5000.0, 0.0))
        net.run(15.0)
        net.mobility.move(1, (200.0, 0.0))
        net.run(35.0)
        assert src.timeouts >= 1
        assert sink.delivered > delivered_before  # recovered and progressed

    def test_app_rate_limits_volume(self):
        net = line(2)
        src = TcpSource(net.nodes[0], dest=1, flow_id=0, start=0.0, stop=50.0,
                        app_rate=1.0)
        TcpSink(net.nodes[1], peer=0, flow_id=0)
        net.run(60.0)
        assert src.segments_sent <= 55  # ~1 pkt/s + retransmissions

    def test_cwnd_grows_from_slow_start(self):
        net = line(2)
        src = TcpSource(net.nodes[0], dest=1, flow_id=0, start=0.0, stop=30.0)
        TcpSink(net.nodes[1], peer=0, flow_id=0)
        net.run(30.0)
        assert src.cwnd > 1.0

    def test_invalid_app_rate_rejected(self):
        net = line(2)
        with pytest.raises(ValueError):
            TcpSource(net.nodes[0], dest=1, flow_id=0, app_rate=-1.0)
