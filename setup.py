"""Setup shim for legacy editable installs.

The environment ships setuptools 65 without the ``wheel`` package, so PEP
660 editable installs (``pip install -e .`` via pyproject alone) cannot
build.  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``pip install -e .`` on newer toolchains)
work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
