"""Synthetic datasets for exercising cross-feature analysis beyond MANET.

The paper's §6 reports "initial experiments using credit card fraud
detection have revealed promising results" — :mod:`repro.datasets.fraud`
provides a synthetic stand-in for that (proprietary) data so the
generality claim can be exercised end to end.
"""

from repro.datasets.fraud import FraudDataset, generate_fraud_dataset

__all__ = ["FraudDataset", "generate_fraud_dataset"]
