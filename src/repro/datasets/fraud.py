"""Synthetic credit-card transaction stream with fraud episodes.

The paper's §6 names credit-card fraud detection as the framework's first
application outside MANET routing ("only normal data could be trusted").
The real data is proprietary, so this module synthesises a transaction
stream with the property cross-feature analysis needs: **normal behaviour
has strong inter-feature correlation** (a cardholder's spending level
drives amount, merchant mix, velocity and geography together), while
fraud preserves individually plausible values but *breaks the joint
pattern* (e.g. high amounts at unusual hours with high transaction
velocity from a new location).

Features (all per-transaction aggregates over the trailing day):

=====================  ====================================================
feature                meaning
=====================  ====================================================
amount                 transaction amount
hour                   local hour of day (0-23)
n_last_day             cardholder's transactions in the last 24 h
avg_amount_last_day    mean amount over the last 24 h
merchant_risk          risk score of the merchant category (0-1)
distance_home          distance from the cardholder's home (km)
is_online              1 for card-not-present transactions
=====================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

FRAUD_FEATURE_NAMES = [
    "amount",
    "hour",
    "n_last_day",
    "avg_amount_last_day",
    "merchant_risk",
    "distance_home",
    "is_online",
]


@dataclass
class FraudDataset:
    """A labelled synthetic transaction set."""

    X: np.ndarray
    labels: np.ndarray  #: True = fraudulent
    feature_names: list[str]

    def normal_only(self) -> np.ndarray:
        """Feature rows of the legitimate transactions."""
        return self.X[~self.labels]

    def fraud_only(self) -> np.ndarray:
        """Feature rows of the fraudulent transactions."""
        return self.X[self.labels]

    def __len__(self) -> int:
        return len(self.X)


def _normal_transactions(n: int, rng: np.random.Generator) -> np.ndarray:
    """Cardholder behaviour driven by a latent spending profile."""
    profile = rng.uniform(0.2, 1.0, size=n)  # spending level of the moment
    hour = np.clip(rng.normal(14, 4, size=n), 0, 23)
    night = (hour < 7) | (hour > 22)
    amount = np.maximum(rng.lognormal(np.log(40), 0.4, n) * profile, 1.0)
    n_last_day = np.maximum(np.round(profile * 6 + rng.normal(0, 1, n)), 0)
    avg_amount = amount * np.clip(rng.normal(1.0, 0.15, n), 0.5, 1.5)
    merchant_risk = np.clip(rng.beta(2, 8, n) + 0.2 * night, 0, 1)
    distance = rng.exponential(5, n) * (1 + 2 * profile)
    is_online = (rng.random(n) < 0.2 + 0.3 * night).astype(float)
    # Online purchases have no physical distance.
    distance = np.where(is_online > 0, 0.0, distance)
    return np.column_stack(
        [amount, hour, n_last_day, avg_amount, merchant_risk, distance, is_online]
    )


def _fraud_transactions(n: int, rng: np.random.Generator) -> np.ndarray:
    """Fraud: each value plausible alone, the combination is wrong.

    High amounts with *low* recent average, bursts of transactions at odd
    hours, physical transactions far from home with high merchant risk.
    """
    hour = rng.uniform(0, 24, n)
    amount = rng.lognormal(np.log(250), 0.6, n)
    n_last_day = np.round(rng.uniform(5, 20, n))           # burst velocity
    avg_amount = rng.lognormal(np.log(30), 0.4, n)         # low history
    merchant_risk = np.clip(rng.beta(5, 3, n), 0, 1)
    is_online = (rng.random(n) < 0.6).astype(float)
    distance = np.where(is_online > 0, 0.0, rng.uniform(50, 2000, n))
    return np.column_stack(
        [amount, np.clip(hour, 0, 23), n_last_day, avg_amount,
         merchant_risk, distance, is_online]
    )


def generate_fraud_dataset(
    n_normal: int = 2000,
    n_fraud: int = 200,
    seed: int = 0,
) -> FraudDataset:
    """Generate a shuffled transaction stream with fraud episodes."""
    if n_normal <= 0 or n_fraud < 0:
        raise ValueError("need positive normal count and non-negative fraud count")
    rng = np.random.default_rng(seed)
    X = np.vstack([_normal_transactions(n_normal, rng),
                   _fraud_transactions(n_fraud, rng)])
    labels = np.concatenate([np.zeros(n_normal, bool), np.ones(n_fraud, bool)])
    order = rng.permutation(len(X))
    return FraudDataset(X=X[order], labels=labels[order],
                        feature_names=list(FRAUD_FEATURE_NAMES))
