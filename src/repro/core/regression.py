"""Regression-based cross-feature analysis (§3 generalization).

For continuous features, the paper proposes multiple linear regression
sub-models with the **log distance** ``|log(C_i(x) / f_i(x))|`` measuring
how far the prediction falls from the true value.  This module implements
that variant: one ordinary-least-squares sub-model per feature, the mean
log distance across sub-models as the deviation measure, and — to keep
the detector API uniform with the classification variant — the *negated*
mean log distance as the normality score (higher = more normal).

Counts can legitimately be zero, so the ratio is stabilised with a small
additive epsilon on both sides and negative predictions are clipped to
zero before the ratio is taken.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class RegressionCrossFeatureModel:
    """Cross-feature analysis with linear-regression sub-models.

    Parameters
    ----------
    epsilon:
        Additive stabiliser inside the log ratio.
    ridge:
        Small L2 regularisation keeping the normal equations well posed
        when features are collinear (common: count features at several
        sampling periods overlap).
    """

    def __init__(self, epsilon: float = 1e-3, ridge: float = 1e-6):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.epsilon = epsilon
        self.ridge = ridge
        self.coefs_: list[np.ndarray] | None = None
        self.scale_: np.ndarray | None = None
        self.feature_names_: list[str] | None = None

    # ------------------------------------------------------------------
    def fit(self, X_normal: np.ndarray, feature_names: Sequence[str] | None = None) -> "RegressionCrossFeatureModel":
        """Fit one OLS sub-model per feature on normal vectors."""
        X = np.asarray(X_normal, dtype=float)
        if X.ndim != 2:
            raise ValueError("X_normal must be 2-D")
        if X.shape[1] < 2:
            raise ValueError("cross-feature analysis needs at least 2 features")
        if len(X) <= X.shape[1]:
            raise ValueError(
                f"need more rows ({len(X)}) than features ({X.shape[1]}) for regression"
            )
        self.feature_names_ = list(feature_names) if feature_names is not None else None
        # Standardise attributes for conditioning; keep targets raw so the
        # log distance operates on the original value scale.
        self.scale_ = X.std(axis=0)
        self.scale_[self.scale_ == 0] = 1.0
        self.coefs_ = []
        n, d = X.shape
        Z = X / self.scale_
        for i in range(d):
            A = np.column_stack([np.delete(Z, i, axis=1), np.ones(n)])
            reg = self.ridge * np.eye(A.shape[1])
            reg[-1, -1] = 0.0  # never regularise the intercept
            coef = np.linalg.solve(A.T @ A + reg * n, A.T @ X[:, i])
            self.coefs_.append(coef)
        return self

    # ------------------------------------------------------------------
    def predictions(self, X: np.ndarray) -> np.ndarray:
        """Sub-model predictions, shape ``(n_events, n_features)``."""
        if self.coefs_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        Z = X / self.scale_
        n, d = X.shape
        out = np.empty((n, d))
        for i, coef in enumerate(self.coefs_):
            A = np.column_stack([np.delete(Z, i, axis=1), np.ones(n)])
            out[:, i] = A @ coef
        return out

    def log_distances(self, X: np.ndarray) -> np.ndarray:
        """Per-event, per-sub-model ``|log(C_i(x) / f_i(x))|``."""
        X = np.asarray(X, dtype=float)
        preds = np.maximum(self.predictions(X), 0.0)
        true = np.maximum(X, 0.0)
        return np.abs(np.log((preds + self.epsilon) / (true + self.epsilon)))

    def deviation(self, X: np.ndarray) -> np.ndarray:
        """Mean log distance per event (higher = more anomalous)."""
        return self.log_distances(X).mean(axis=1)

    def normality_score(self, X: np.ndarray, method: str = "log_distance") -> np.ndarray:
        """Negated deviation, so the detector convention (higher = normal)
        matches the classification variant."""
        if method != "log_distance":
            raise ValueError(f"unknown method: {method!r}")
        return -self.deviation(X)

    @property
    def n_models(self) -> int:
        if self.coefs_ is None:
            raise RuntimeError("model is not fitted")
        return len(self.coefs_)
