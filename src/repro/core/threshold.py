"""Decision-threshold selection.

The paper: "We can determine the threshold by computing average match
count values on all normal events, and using a lower bound of output
values with certain confidence level (which is one minus false alarm
rate)."  An event is classified anomalous iff its score is *below* the
threshold, so the threshold is the ``false_alarm_rate`` quantile of the
normal-score distribution.
"""

from __future__ import annotations

import numpy as np


def select_threshold(normal_scores: np.ndarray, false_alarm_rate: float = 0.01) -> float:
    """Threshold such that ~``false_alarm_rate`` of normal scores fall below.

    Parameters
    ----------
    normal_scores:
        Scores (average match count or average probability) of events
        known to be normal — typically a held-out normal trace.
    false_alarm_rate:
        Allowed fraction of normal events flagged as anomalies; the
        confidence level of the lower bound is ``1 - false_alarm_rate``.
    """
    normal_scores = np.asarray(normal_scores, dtype=float)
    if normal_scores.size == 0:
        raise ValueError("need at least one normal score")
    if not 0.0 <= false_alarm_rate <= 1.0:
        raise ValueError("false_alarm_rate must be in [0, 1]")
    return float(np.quantile(normal_scores, false_alarm_rate))
