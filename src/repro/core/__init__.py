"""Cross-feature analysis — the paper's primary contribution.

The framework transforms anomaly detection over a feature set
``{f1 ... fL}`` into L classification sub-problems ``{f1 ... fL} \\ {fi}
-> fi`` (Algorithm 1), scores events by how well the sub-models'
predictions agree with the observed feature values — **average match
count** (Algorithm 2) or **average probability** (Algorithm 3) — and flags
an event as anomalous when the score drops below a decision threshold
chosen from the score distribution on normal data.
"""

from repro.core.discretization import EqualFrequencyDiscretizer
from repro.core.illustrative import (
    IllustrativeClassifier,
    TwoNodeExample,
)
from repro.core.model import CrossFeatureDetector, CrossFeatureModel
from repro.core.reduction import correlation_reduce, factor_reduce, reduction_report
from repro.core.regression import RegressionCrossFeatureModel
from repro.core.scoring import average_match_count, average_probability
from repro.core.threshold import select_threshold

__all__ = [
    "CrossFeatureDetector",
    "CrossFeatureModel",
    "EqualFrequencyDiscretizer",
    "IllustrativeClassifier",
    "RegressionCrossFeatureModel",
    "TwoNodeExample",
    "average_match_count",
    "average_probability",
    "correlation_reduce",
    "factor_reduce",
    "reduction_report",
    "select_threshold",
]
