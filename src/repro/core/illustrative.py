"""The paper's §3 illustrative example: a two-node ad-hoc network.

Three binary features describe the toy network — *Is the other node
reachable?*, *Was any packet delivered in the last 5 seconds?*, *Was any
packet cached for delivery in the last 5 seconds?* — and Table 1
enumerates the complete set of normal events.  The paper walks through an
"illustrative classifier" whose sub-models are shown in Table 2 and whose
average-match-count / average-probability outputs over all eight possible
events are Table 3, demonstrating that with threshold 0.5 Algorithm 3
separates perfectly while Algorithm 2 raises one false alarm on
``{False, False, False}``.

This module reproduces all three tables programmatically, using the exact
classifier the paper describes:

* one class seen for a combination of the other features -> predict it
  with probability 1.0;
* both classes seen -> predict True with probability 0.5;
* combination never seen -> predict the label appearing more often in the
  other rules, with probability 0.5.

The probability for the *true* class is the predicted class's probability
when it matches, else one minus it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core.scoring import average_match_count, average_probability

FEATURE_NAMES = ["Reachable?", "Delivered?", "Cached?"]

#: Table 1 — the complete set of normal events.
NORMAL_EVENTS: tuple[tuple[bool, bool, bool], ...] = (
    (True, True, True),
    (True, False, False),
    (False, False, True),
    (False, False, False),
)


@dataclass(frozen=True)
class SubModelRule:
    """One row of a Table 2 sub-model: others' values -> (prediction, prob)."""

    others: tuple[bool, ...]
    predicted: bool
    probability: float


class IllustrativeClassifier:
    """The example classifier described in §3 (see module docstring)."""

    def __init__(self, target: int, events: tuple[tuple[bool, ...], ...] = NORMAL_EVENTS):
        if not 0 <= target < len(events[0]):
            raise ValueError(f"target {target} out of range")
        self.target = target
        n_features = len(events[0])
        other_idx = [j for j in range(n_features) if j != target]

        seen: dict[tuple[bool, ...], set[bool]] = {}
        for event in events:
            key = tuple(event[j] for j in other_idx)
            seen.setdefault(key, set()).add(event[target])

        # Rules for seen combinations.
        self._rules: dict[tuple[bool, ...], tuple[bool, float]] = {}
        for key, classes in seen.items():
            if len(classes) == 1:
                self._rules[key] = (next(iter(classes)), 1.0)
            else:
                self._rules[key] = (True, 0.5)

        # Default for unseen combinations: the label appearing more often
        # in the other rules (ties resolved to True).
        n_true = sum(1 for pred, _ in self._rules.values() if pred)
        n_false = len(self._rules) - n_true
        self._default = (n_true >= n_false, 0.5)
        self._other_idx = other_idx

    def predict_with_probability(self, event: tuple[bool, ...]) -> tuple[bool, float]:
        """(predicted class, probability of the predicted class)."""
        key = tuple(event[j] for j in self._other_idx)
        return self._rules.get(key, self._default)

    def probability_of_true_class(self, event: tuple[bool, ...]) -> float:
        """Predicted prob when the prediction matches, else one minus it."""
        predicted, prob = self.predict_with_probability(event)
        return prob if predicted == event[self.target] else 1.0 - prob

    def matches(self, event: tuple[bool, ...]) -> bool:
        """Whether the prediction equals the event's true feature value."""
        predicted, _ = self.predict_with_probability(event)
        return predicted == event[self.target]

    def rules(self) -> list[SubModelRule]:
        """The sub-model as Table 2 rows (seen combinations only)."""
        return [
            SubModelRule(others=key, predicted=pred, probability=prob)
            for key, (pred, prob) in sorted(self._rules.items(), reverse=True)
        ]


@dataclass
class EventScore:
    """One row of Table 3."""

    event: tuple[bool, bool, bool]
    is_normal: bool
    avg_match_count: float
    avg_probability: float


class TwoNodeExample:
    """The complete §3 worked example: builds Tables 1-3."""

    def __init__(self) -> None:
        self.classifiers = [IllustrativeClassifier(i) for i in range(3)]

    # ------------------------------------------------------------------
    @staticmethod
    def normal_events() -> list[tuple[bool, bool, bool]]:
        """Table 1."""
        return list(NORMAL_EVENTS)

    def sub_model_rules(self, target: int) -> list[SubModelRule]:
        """Table 2(a/b/c) for the given labelled feature."""
        return self.classifiers[target].rules()

    def score_event(self, event: tuple[bool, bool, bool]) -> EventScore:
        """One Table 3 row: both algorithms' scores for one event."""
        matches = np.array([[c.matches(event) for c in self.classifiers]], dtype=float)
        probs = np.array([[c.probability_of_true_class(event) for c in self.classifiers]])
        return EventScore(
            event=event,
            is_normal=event in NORMAL_EVENTS,
            avg_match_count=float(average_match_count(matches)[0]),
            avg_probability=float(average_probability(probs)[0]),
        )

    def all_event_scores(self) -> list[EventScore]:
        """Table 3 — all eight possible events, normal ones first."""
        events = list(NORMAL_EVENTS) + [
            e for e in product([True, False], repeat=3) if e not in NORMAL_EVENTS
        ]
        return [self.score_event(e) for e in events]

    def classify_all(self, threshold: float = 0.5) -> dict[str, int]:
        """Confusion summary of both algorithms at the given threshold.

        Returns counts of errors: Algorithm 2 (match count) and
        Algorithm 3 (average probability) false alarms / misses.
        """
        errors = {"alg2_false_alarms": 0, "alg2_misses": 0,
                  "alg3_false_alarms": 0, "alg3_misses": 0}
        for score in self.all_event_scores():
            alg2_anomaly = score.avg_match_count < threshold
            alg3_anomaly = score.avg_probability < threshold
            if score.is_normal:
                errors["alg2_false_alarms"] += alg2_anomaly
                errors["alg3_false_alarms"] += alg3_anomaly
            else:
                errors["alg2_misses"] += not alg2_anomaly
                errors["alg3_misses"] += not alg3_anomaly
        return errors
