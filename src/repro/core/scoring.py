"""Scoring rules: average match count and average probability.

These are the aggregation steps of Algorithms 2 and 3.  They are exposed
as pure functions over per-sub-model outputs so the illustrative example
(§3, Tables 1-3), the full detector and the tests all share one
implementation.
"""

from __future__ import annotations

import numpy as np


def average_match_count(matches: np.ndarray) -> np.ndarray:
    """Algorithm 2's aggregation.

    ``matches[i, m]`` is 1 when sub-model ``m``'s prediction equals the
    true value of its labelled feature on event ``i``.  Returns the
    per-event fraction of matching sub-models, normalised into [0, 1].
    """
    matches = np.asarray(matches, dtype=float)
    if matches.ndim != 2:
        raise ValueError("matches must be 2-D (events x sub-models)")
    if matches.shape[1] == 0:
        raise ValueError("need at least one sub-model")
    return matches.mean(axis=1)


def average_probability(probabilities: np.ndarray) -> np.ndarray:
    """Algorithm 3's aggregation.

    ``probabilities[i, m]`` is the probability sub-model ``m`` assigns to
    the *true* value of its labelled feature on event ``i``.  Returns the
    per-event mean.  Algorithm 2 is the special case where each
    probability is exactly 0 or 1.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be 2-D (events x sub-models)")
    if probabilities.shape[1] == 0:
        raise ValueError("need at least one sub-model")
    if (probabilities < -1e-9).any() or (probabilities > 1 + 1e-9).any():
        raise ValueError("probabilities must lie in [0, 1]")
    return probabilities.mean(axis=1)
