"""Cross-feature analysis model (Algorithms 1-3) and the bundled detector.

:class:`CrossFeatureModel` implements the training procedure — one
sub-model ``C_i : {f1..fL} \\ {fi} -> fi`` per feature over discretized
normal vectors — and the two test procedures, exposed uniformly as
``normality_score(X, method=...)`` where *higher means more normal*.

:class:`CrossFeatureDetector` adds the decision threshold (selected on
normal data at a target false-alarm rate) for a ready-to-use
normal/anomaly classifier.

A sub-model's probability for a *bucket never seen in normal training
data* is zero: the combination "this feature took a value normal traffic
never produced" is exactly the anomaly evidence the framework looks for.

Besides the two paper algorithms, the model offers a third scoring rule,
``"calibrated_probability"``: each sub-model's probability is first
normalised by that sub-model's typical probability on *held-out* normal
data, and the calibrated values are pooled with a (floored) geometric
mean.  Motivation: at the laptop trace scales of this reproduction, many
features are intrinsically hard to predict out of sample, and their
sub-models contribute chance-level noise to the plain average that buries
the signal of the reliable sub-models.  Calibration makes an
unpredictable sub-model *neutral* (≈1 under normal and attack alike)
while a reliable sub-model that suddenly fails keeps its full signal; the
geometric pooling approximates the product rule — the "optimal Bayesian
reasoning" the paper's footnote connects the framework to.  The paper's
own §6 ("a sub-model should be preferred where the labeled feature has
stronger confidence to appear in normal data") motivates exactly this
weighting.  Use ``method="avg_probability"`` for the verbatim
Algorithm 3.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.core.discretization import EqualFrequencyDiscretizer
from repro.core.scoring import average_match_count, average_probability
from repro.core.threshold import select_threshold
from repro.ml.base import CategoricalClassifier
from repro.ml.decision_tree import C45Classifier

ClassifierFactory = Callable[[], CategoricalClassifier]


def _fast_fit_enabled() -> bool:
    """Shared-pass ensemble training kill switch (``REPRO_FAST_FIT=0``)."""
    return os.environ.get("REPRO_FAST_FIT", "1") != "0"


def _keep_indices(n_features: int, targets: Sequence[int]) -> dict[int, np.ndarray]:
    """Per-target column gathers replacing ``np.delete(codes, i, axis=1)``.

    ``codes[:, keep[i]]`` produces the identical "all features but f_i"
    matrix without rebuilding the deletion mask on every call — the same
    gather is reused by every fit and every scoring pass.
    """
    base = np.arange(n_features)
    return {
        int(i): np.concatenate((base[:i], base[i + 1:])) for i in targets
    }


def _pairwise_tables(
    codes: np.ndarray,
    n_values: np.ndarray,
    pairs: Sequence[tuple[int, int]],
    max_chunk_elems: int = 8_000_000,
) -> dict[tuple[int, int], np.ndarray]:
    """Joint (value, value) contingency tables for column pairs.

    One fused ``bincount`` pass: each pair's ``k_a x k_b`` joint code is
    offset into its own block and the whole batch is counted at once
    (chunked over pairs so the flattened index matrix stays below
    ``max_chunk_elems``).  The counts are exactly what a per-pair
    ``bincount(codes[:, a] * k_b + codes[:, b])`` would produce.
    """
    n = len(codes)
    tables: dict[tuple[int, int], np.ndarray] = {}
    if not pairs or n == 0:
        return tables
    a_idx = np.fromiter((a for a, _ in pairs), dtype=np.int64, count=len(pairs))
    b_idx = np.fromiter((b for _, b in pairs), dtype=np.int64, count=len(pairs))
    sizes = n_values[a_idx] * n_values[b_idx]
    per_chunk = max(1, max_chunk_elems // n)
    for start in range(0, len(pairs), per_chunk):
        stop = min(start + per_chunk, len(pairs))
        aa, bb = a_idx[start:stop], b_idx[start:stop]
        sz = sizes[start:stop]
        offsets = np.concatenate(([0], np.cumsum(sz)[:-1])).astype(np.int64)
        flat = codes[:, aa] * n_values[bb][None, :] + codes[:, bb] + offsets[None, :]
        counts = np.bincount(flat.ravel(), minlength=int(sz.sum()))
        for p in range(stop - start):
            a, b = int(aa[p]), int(bb[p])
            tables[(a, b)] = counts[offsets[p]: offsets[p] + sz[p]].reshape(
                int(n_values[a]), int(n_values[b])
            )
    return tables


class _SharedFitContext:
    """Shared-pass precomputation for Algorithm 1's L sub-model fits.

    Discretized codes are scanned ONCE: the pairwise attribute<->target
    contingency tensor (every ``(f_j, f_i)`` joint table a root split
    search needs) comes out of one chunked ``bincount`` pass, and each
    sub-model receives its root-level tables plus a precomputed
    keep-index gather instead of paying its own full-data histogram and
    ``np.delete`` copy.  Only the upper triangle is counted — the
    ``(i, j)`` table is the transpose of ``(j, i)``.  All tables are
    integer counts, so the handed-off root statistics are exactly those
    a standalone fit would compute.
    """

    def __init__(self, codes: np.ndarray, targets: Sequence[int]):
        self.codes = codes
        n_features = codes.shape[1]
        self.n_values = (
            codes.max(axis=0) + 1 if len(codes) else np.ones(n_features, dtype=np.int64)
        )
        self.keep = _keep_indices(n_features, targets)
        wanted = {
            (min(i, j), max(i, j))
            for i in targets
            for j in range(n_features)
            if j != i
        }
        self.tables = _pairwise_tables(codes, self.n_values, sorted(wanted))

    def others(self, i: int) -> np.ndarray:
        """The "all features but f_i" attribute matrix (gather, not delete)."""
        return self.codes[:, self.keep[i]]

    def root_tables(self, i: int) -> list[np.ndarray]:
        """Root-level (attribute value, target class) tables for sub-model i."""
        return [
            self.tables[(j, i)] if j < i else self.tables[(i, j)].T
            for j in map(int, self.keep[i])
        ]


class CrossFeatureModel:
    """The trained ensemble of per-feature sub-models.

    Parameters
    ----------
    classifier_factory:
        Zero-argument callable producing a fresh sub-model learner
        (default: C4.5, the paper's best performer).
    n_buckets:
        Equal-frequency discretization buckets (paper: 5).
    max_models:
        Train only this many sub-models, chosen over a random subset of
        labelled features — the paper's §6 "fewer number of models"
        future-work knob.  None = all L sub-models.
    feature_subset:
        Restrict the whole analysis (attributes *and* labelled features)
        to these column indices.
    prefilter_fraction, random_state:
        Passed to the discretizer / subset sampling.
    n_jobs:
        Worker threads for sub-model training and scoring.  The L
        sub-model fits (and the L per-sub-model scoring passes) are
        mutually independent, so they parallelize without affecting
        results: 1 (default) = serial, ``None``/``0`` = one thread per
        CPU.  Results are identical for any value.
    """

    def __init__(
        self,
        classifier_factory: ClassifierFactory = C45Classifier,
        n_buckets: int = 5,
        max_models: int | None = None,
        feature_subset: Sequence[int] | None = None,
        prefilter_fraction: float | None = None,
        random_state: int = 0,
        n_jobs: int | None = 1,
    ):
        self.classifier_factory = classifier_factory
        self.n_buckets = n_buckets
        self.max_models = max_models
        self.feature_subset = None if feature_subset is None else list(feature_subset)
        self.prefilter_fraction = prefilter_fraction
        self.random_state = random_state
        self.n_jobs = n_jobs

        self.discretizer: EqualFrequencyDiscretizer | None = None
        self.models_: list[CategoricalClassifier] = []
        self.targets_: list[int] = []
        self.feature_names_: list[str] | None = None
        self.baseline_: np.ndarray | None = None  #: per-sub-model normal p_true
        self._keep_cols: dict[int, np.ndarray] | None = None  #: target -> column gather

    # ------------------------------------------------------------------
    # Algorithm 1: training procedure
    # ------------------------------------------------------------------
    def fit(self, X_normal: np.ndarray, feature_names: Sequence[str] | None = None) -> "CrossFeatureModel":
        """Train all sub-models on normal feature vectors (raw values)."""
        X_normal = np.asarray(X_normal, dtype=float)
        if X_normal.ndim != 2:
            raise ValueError("X_normal must be 2-D")
        if self.feature_subset is not None:
            X_normal = X_normal[:, self.feature_subset]
            if feature_names is not None:
                feature_names = [feature_names[j] for j in self.feature_subset]
        if X_normal.shape[1] < 2:
            raise ValueError("cross-feature analysis needs at least 2 features")
        self.feature_names_ = list(feature_names) if feature_names is not None else None

        self.discretizer = EqualFrequencyDiscretizer(
            n_buckets=self.n_buckets,
            prefilter_fraction=self.prefilter_fraction,
            random_state=self.random_state,
        )
        codes = self.discretizer.fit_transform(X_normal)

        n_features = codes.shape[1]
        targets = list(range(n_features))
        if self.max_models is not None and self.max_models < n_features:
            rng = np.random.default_rng(self.random_state)
            targets = sorted(rng.choice(n_features, size=self.max_models, replace=False))

        # Shared-pass training: when every sub-model can consume
        # precomputed root tables (C4.5 and NBC can), discretized codes
        # are scanned once — the pairwise contingency tensor plus
        # keep-index gathers replace L per-sub-model histogram passes
        # and np.delete copies.  Handed-off statistics are integer
        # counts, so the fitted sub-models are identical either way;
        # REPRO_FAST_FIT=0 forces the reference per-sub-model loop.
        shared = (
            _fast_fit_enabled()
            and getattr(self.classifier_factory(), "accepts_root_tables", False)
        )
        ctx = _SharedFitContext(codes, targets) if shared else None

        def fit_one(i: int) -> CategoricalClassifier:
            model = self.classifier_factory()
            if ctx is not None:
                model.fit(ctx.others(i), codes[:, i], root_tables=ctx.root_tables(i))
            else:
                model.fit(np.delete(codes, i, axis=1), codes[:, i])
            return model

        # Sub-model fits share nothing (fresh classifier per target, no
        # common RNG), so threading them is result-identical to the
        # serial loop; ``map`` preserves target order.
        jobs = self._effective_jobs(len(targets))
        if jobs > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                self.models_ = list(pool.map(fit_one, targets))
        else:
            self.models_ = [fit_one(i) for i in targets]
        self.targets_ = [int(i) for i in targets]
        self._keep_cols = ctx.keep if ctx is not None else _keep_indices(
            codes.shape[1], self.targets_
        )
        return self

    def _effective_jobs(self, n_tasks: int) -> int:
        """Resolve ``n_jobs`` against the task count and CPU count."""
        jobs = self.n_jobs
        if jobs is None or jobs <= 0:
            jobs = os.cpu_count() or 1
        return max(1, min(jobs, n_tasks))

    def _keep_columns(self, n_features: int) -> dict[int, np.ndarray]:
        """Per-target keep-index gathers (rebuilt lazily, e.g. after unpickling)."""
        keep = self._keep_cols if hasattr(self, "_keep_cols") else None
        if keep is None or any(len(v) != n_features - 1 for v in keep.values()):
            keep = _keep_indices(n_features, self.targets_)
            self._keep_cols = keep
        return keep

    # ------------------------------------------------------------------
    # Algorithms 2 & 3: test procedures
    # ------------------------------------------------------------------
    def _sub_model_outputs(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-event, per-sub-model (match, p_true) matrices."""
        if self.discretizer is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=float)
        if self.feature_subset is not None:
            X = X[:, self.feature_subset]
        codes = self.discretizer.transform(X)
        n = len(codes)
        matches = np.zeros((n, len(self.models_)))
        p_true = np.zeros((n, len(self.models_)))
        rows = np.arange(n)
        keep = self._keep_columns(codes.shape[1])

        def score_one(m: int) -> None:
            model, i = self.models_[m], self.targets_[m]
            others = codes[:, keep[i]]
            true = codes[:, i]
            proba = model.predict_proba(others)
            predicted = np.argmax(proba, axis=1)
            matches[:, m] = predicted == true
            # A bucket the sub-model never saw in normal training data
            # has probability zero by definition: rows start zeroed, and
            # out-of-range buckets can never equal a predicted class, so
            # only in-range rows need a probability written.
            in_range = true < proba.shape[1]
            p_true[in_range, m] = proba[rows[in_range], true[in_range]]

        # Each sub-model writes only its own column, so the passes are
        # independent and thread-safe; results match the serial loop.
        jobs = self._effective_jobs(len(self.models_))
        if jobs > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                list(pool.map(score_one, range(len(self.models_))))
        else:
            for m in range(len(self.models_)):
                score_one(m)
        return matches, p_true

    def calibrate(self, X_normal: np.ndarray) -> np.ndarray:
        """Measure each sub-model's baseline probability on held-out normal
        data (required for ``method="calibrated_probability"``).

        Returns the per-sub-model baselines (mean probability of the true
        feature value).
        """
        _, p_true = self._sub_model_outputs(X_normal)
        self.baseline_ = p_true.mean(axis=0)
        return self.baseline_

    #: Floors for the calibrated score: baselines below ``_MIN_BASELINE``
    #: are clamped (a sub-model that is wrong most of the time on normal
    #: data cannot be "failed" meaningfully), and calibrated values below
    #: ``_GEO_FLOOR`` are clamped so a single zero-probability sub-model
    #: cannot zero the pooled score by itself.
    _MIN_BASELINE = 0.05
    _GEO_FLOOR = 0.01

    def normality_score(self, X: np.ndarray, method: str = "avg_probability") -> np.ndarray:
        """Per-event score; higher = more normal.

        ``method`` is ``"avg_probability"`` (Algorithm 3),
        ``"match_count"`` (Algorithm 2) or ``"calibrated_probability"``
        (baseline-calibrated geometric pooling; requires :meth:`calibrate`).
        """
        matches, p_true = self._sub_model_outputs(X)
        if method == "avg_probability":
            return average_probability(p_true)
        if method == "match_count":
            return average_match_count(matches)
        if method == "calibrated_probability":
            if self.baseline_ is None:
                raise RuntimeError(
                    "calibrated_probability requires calibrate() on held-out normal data"
                )
            calibrated = np.minimum(
                p_true / np.maximum(self.baseline_, self._MIN_BASELINE), 1.0
            )
            return np.exp(
                np.log(np.maximum(calibrated, self._GEO_FLOOR)).mean(axis=1)
            )
        raise ValueError(f"unknown method: {method!r}")

    def _calibrated_outputs(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row ``(p_true, calibrated)`` sub-model matrices for ``X``.

        ``calibrated`` falls back to the raw probabilities before
        :meth:`calibrate`; one ``_sub_model_outputs`` pass covers every
        row, so batched callers (attribution over all alarming windows)
        pay one discretize + tree-walk instead of one per row.
        """
        _, p_true = self._sub_model_outputs(X)
        if self.baseline_ is not None:
            calibrated = np.minimum(
                p_true / np.maximum(self.baseline_, self._MIN_BASELINE), 1.0
            )
        else:
            calibrated = p_true
        return p_true, calibrated

    def explain_batch(self, X: np.ndarray, top_k: int = 10) -> list[list[dict]]:
        """Batched :meth:`explain`: one entry list per row of ``X``.

        All rows share a single ``_sub_model_outputs`` pass (one
        discretizer transform + one frontier-batched tree walk per
        sub-model), so explaining N alarming windows costs one scoring
        call instead of N — entry-for-entry identical to calling
        :meth:`explain` per row.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X[None, :]
        p_true, calibrated = self._calibrated_outputs(X)
        # Stable sort so tied sub-models rank in ensemble order instead
        # of the introsort's arbitrary (input-layout-dependent) order.
        order = np.argsort(calibrated, axis=1, kind="stable")[:, :top_k]
        results: list[list[dict]] = []
        for r in range(len(X)):
            entries = []
            for m in order[r]:
                target = self.targets_[m]
                name = (
                    self.feature_names_[target]
                    if self.feature_names_ is not None
                    else target
                )
                entries.append({
                    "feature": name,
                    "target": int(target),
                    "p_true": float(p_true[r, m]),
                    "baseline": (
                        float(self.baseline_[m]) if self.baseline_ is not None else None
                    ),
                    "calibrated": float(calibrated[r, m]),
                })
            results.append(entries)
        return results

    def explain(self, x: np.ndarray, top_k: int = 10) -> list[dict]:
        """Which sub-models consider one event anomalous, and how strongly.

        The paper's §6 argues the resulting model "is fairly easy to
        comprehend and can be examined by human experts"; this is the
        examination hook.  Returns the ``top_k`` sub-models with the
        lowest probability for the event's observed feature value
        (calibrated against their normal baseline when available),
        most-anomalous first.

        Each entry has ``feature`` (name or index), ``target`` (the
        labelled feature's column index in the feature vector — always
        present, so entries join back to the vector and its discretizer
        buckets even when names are set), ``p_true`` (the sub-model's
        probability for the observed bucket), ``baseline`` (its typical
        probability on held-out normal data, None before
        :meth:`calibrate`) and ``calibrated`` (their floored ratio).
        Use :meth:`explain_batch` for many events at once.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if len(x) != 1:
            raise ValueError("explain() takes exactly one event")
        return self.explain_batch(x, top_k=top_k)[0]

    @property
    def n_models(self) -> int:
        return len(self.models_)


class CrossFeatureDetector:
    """Cross-feature model + decision threshold = normal/anomaly labels.

    Parameters are forwarded to :class:`CrossFeatureModel`; the threshold
    is chosen on the training scores (or a held-out normal set passed to
    :meth:`calibrate`) at ``false_alarm_rate``.
    """

    def __init__(
        self,
        classifier_factory: ClassifierFactory = C45Classifier,
        method: str = "avg_probability",
        false_alarm_rate: float = 0.02,
        calibration_fraction: float = 0.25,
        **model_kwargs,
    ):
        self.model = CrossFeatureModel(classifier_factory=classifier_factory, **model_kwargs)
        self.method = method
        self.false_alarm_rate = false_alarm_rate
        if not 0.0 < calibration_fraction < 1.0:
            raise ValueError("calibration_fraction must be in (0, 1)")
        self.calibration_fraction = calibration_fraction
        self.threshold_: float | None = None

    def fit(
        self,
        X_normal: np.ndarray,
        feature_names: Sequence[str] | None = None,
        calibration_X: np.ndarray | None = None,
    ) -> "CrossFeatureDetector":
        """Train on normal data; calibrate baselines and the threshold.

        ``calibration_X`` (more normal data, ideally a held-out trace) is
        used for calibration when given.  Otherwise the *last*
        ``calibration_fraction`` block of ``X_normal`` is held out from
        sub-model training and used for calibration — a temporal block
        rather than a random split, because adjacent windows share their
        long sampling windows and a random split would leak.
        """
        X_normal = np.asarray(X_normal, dtype=float)
        if calibration_X is not None:
            train_X = X_normal
            calib_X = np.asarray(calibration_X, dtype=float)
        else:
            cut = int(len(X_normal) * (1.0 - self.calibration_fraction))
            cut = max(min(cut, len(X_normal) - 1), 1)
            train_X, calib_X = X_normal[:cut], X_normal[cut:]
        self.model.fit(train_X, feature_names)
        self.calibrate(calib_X)
        return self

    def calibrate(self, X_normal: np.ndarray) -> float:
        """(Re)compute sub-model baselines and the decision threshold on
        known-normal data."""
        self.model.calibrate(X_normal)
        scores = self.model.normality_score(X_normal, self.method)
        self.threshold_ = select_threshold(scores, self.false_alarm_rate)
        return self.threshold_

    def score(self, X: np.ndarray) -> np.ndarray:
        """Normality scores under the detector's configured method."""
        return self.model.normality_score(X, self.method)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """True = anomaly (score below the threshold)."""
        if self.threshold_ is None:
            raise RuntimeError("detector is not fitted")
        return self.score(X) < self.threshold_

    def explain(self, x: np.ndarray, top_k: int = 10) -> list[dict]:
        """Per-sub-model anomaly attribution for one event (see
        :meth:`CrossFeatureModel.explain`)."""
        return self.model.explain(x, top_k=top_k)

    def explain_batch(self, X: np.ndarray, top_k: int = 10) -> list[list[dict]]:
        """Batched anomaly attribution, one entry list per row (see
        :meth:`CrossFeatureModel.explain_batch`)."""
        return self.model.explain_batch(X, top_k=top_k)
