"""Equal-frequency discretization (paper §4.1, "Feature Construction").

Continuous features (and discrete features with infinite value spaces)
cannot serve as class labels, so the paper discretizes them with a
*frequency-bucket* scheme: the value space is split into a fixed number of
ranges such that the occurrence frequencies in all buckets are equal; a
pre-filtering pass over a small random subset of normal vectors retrieves
the frequency distribution.  The paper uses 5 buckets.

One deliberate refinement for degenerate columns: a feature that is
*constant* in normal training data still gets a single cut just above the
constant, so a value that rises under attack lands in a bucket never seen
in training — the sub-model then assigns it probability zero, exactly the
"never appears in normal data" semantics the framework wants.
"""

from __future__ import annotations

import numpy as np


class EqualFrequencyDiscretizer:
    """Per-column equal-frequency bucketing.

    Parameters
    ----------
    n_buckets:
        Number of buckets per feature (paper: 5).
    prefilter_fraction:
        If set, fit quantiles on a random subset of this fraction of the
        rows — the paper's pre-filtering pass.
    random_state:
        Seed for the pre-filter subsample.
    """

    def __init__(
        self,
        n_buckets: int = 5,
        prefilter_fraction: float | None = None,
        random_state: int = 0,
        out_of_range_bucket: bool = True,
    ):
        if n_buckets < 2:
            raise ValueError("n_buckets must be >= 2")
        if prefilter_fraction is not None and not 0 < prefilter_fraction <= 1:
            raise ValueError("prefilter_fraction must be in (0, 1]")
        self.n_buckets = n_buckets
        self.prefilter_fraction = prefilter_fraction
        self.random_state = random_state
        self.out_of_range_bucket = out_of_range_bucket
        self.edges_: list[np.ndarray] | None = None
        self._lookup_: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "EqualFrequencyDiscretizer":
        """Learn bucket boundaries from (normal) training data."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.prefilter_fraction is not None and len(X) > 10:
            rng = np.random.default_rng(self.random_state)
            n_sample = max(int(len(X) * self.prefilter_fraction), 10)
            X = X[rng.choice(len(X), size=min(n_sample, len(X)), replace=False)]
        qs = np.arange(1, self.n_buckets) / self.n_buckets
        self.edges_ = []
        for j in range(X.shape[1]):
            col = X[:, j]
            uniq = np.unique(col)
            if len(uniq) == 1:
                # Constant column: one cut just above the constant so an
                # unseen-under-attack value separates out.
                edges = np.array([np.nextafter(uniq[0], np.inf)])
            else:
                edges = np.unique(np.quantile(col, qs))
                # Drop degenerate edges equal to the column minimum (they
                # would create an empty first bucket).
                edges = edges[edges > uniq[0]]
                if len(edges) == 0:
                    # Heavily skewed column (most mass at the minimum):
                    # cut between the minimum and the next distinct value.
                    edges = np.array([(uniq[0] + uniq[1]) / 2.0])
                if self.out_of_range_bucket:
                    # Values beyond anything normal data produced form
                    # their own bucket: sub-models never saw it as a
                    # label, so it carries probability zero — the
                    # "never appears in normal data" semantics of §3.
                    # Without this, an attack burst 10x above the normal
                    # maximum is indistinguishable from an ordinary busy
                    # window saturating the top equal-frequency bucket.
                    top = np.nextafter(uniq[-1], np.inf)
                    if top > edges[-1]:
                        edges = np.append(edges, top)
            self.edges_.append(edges)
        self._lookup_ = None
        return self

    def _build_lookup(self) -> tuple[np.ndarray, np.ndarray]:
        """Rank table turning all per-column searches into ONE searchsorted.

        Every column's edges are merged into one sorted array.  For a
        value ``v`` of column ``j``, ``searchsorted(merged, v, "left")``
        is the number of merged edges strictly below ``v`` — and because
        the merge is sorted, those are exactly the first ``r`` merged
        entries.  ``rank_counts[j, r]`` (how many of those first ``r``
        edges belong to column ``j``) is therefore precisely
        ``searchsorted(edges_[j], v, "left")``: the same comparisons
        against the same floats, so codes are bit-identical to the
        per-column loop (including NaN, which lands at rank 0 either way).
        """
        n_cols = len(self.edges_)
        lengths = [len(e) for e in self.edges_]
        merged = np.concatenate(self.edges_)
        col_ids = np.repeat(np.arange(n_cols), lengths)
        order = np.argsort(merged, kind="stable")
        merged = merged[order]
        rank_counts = np.zeros((n_cols, len(merged) + 1), dtype=np.int64)
        rank_counts[:, 1:] = (
            col_ids[order][None, :] == np.arange(n_cols)[:, None]
        ).cumsum(axis=1)
        self._lookup_ = (merged, rank_counts)
        return self._lookup_

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map values to bucket codes (0-based integers).

        Bucket ``j`` holds values in ``(edges[j-1], edges[j]]``; values
        above the last edge land in the top bucket.  All columns are
        bucketized in one vectorized pass (see :meth:`_build_lookup`).
        """
        if self.edges_ is None:
            raise RuntimeError("discretizer is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has {X.shape[1] if X.ndim == 2 else '?'} columns, "
                f"expected {len(self.edges_)}"
            )
        lookup = getattr(self, "_lookup_", None)
        if lookup is None:
            lookup = self._build_lookup()
        merged, rank_counts = lookup
        ranks = np.searchsorted(merged, X.ravel(), side="left").reshape(X.shape)
        return rank_counts[np.arange(X.shape[1])[None, :], ranks]

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its bucket codes."""
        return self.fit(X).transform(X)

    def n_values(self) -> np.ndarray:
        """Bucket count per column (``len(edges) + 1``)."""
        if self.edges_ is None:
            raise RuntimeError("discretizer is not fitted")
        return np.array([len(e) + 1 for e in self.edges_], dtype=np.int64)
