"""Equal-frequency discretization (paper §4.1, "Feature Construction").

Continuous features (and discrete features with infinite value spaces)
cannot serve as class labels, so the paper discretizes them with a
*frequency-bucket* scheme: the value space is split into a fixed number of
ranges such that the occurrence frequencies in all buckets are equal; a
pre-filtering pass over a small random subset of normal vectors retrieves
the frequency distribution.  The paper uses 5 buckets.

One deliberate refinement for degenerate columns: a feature that is
*constant* in normal training data still gets a single cut just above the
constant, so a value that rises under attack lands in a bucket never seen
in training — the sub-model then assigns it probability zero, exactly the
"never appears in normal data" semantics the framework wants.
"""

from __future__ import annotations

import numpy as np


class EqualFrequencyDiscretizer:
    """Per-column equal-frequency bucketing.

    Parameters
    ----------
    n_buckets:
        Number of buckets per feature (paper: 5).
    prefilter_fraction:
        If set, fit quantiles on a random subset of this fraction of the
        rows — the paper's pre-filtering pass.
    random_state:
        Seed for the pre-filter subsample.
    """

    def __init__(
        self,
        n_buckets: int = 5,
        prefilter_fraction: float | None = None,
        random_state: int = 0,
        out_of_range_bucket: bool = True,
    ):
        if n_buckets < 2:
            raise ValueError("n_buckets must be >= 2")
        if prefilter_fraction is not None and not 0 < prefilter_fraction <= 1:
            raise ValueError("prefilter_fraction must be in (0, 1]")
        self.n_buckets = n_buckets
        self.prefilter_fraction = prefilter_fraction
        self.random_state = random_state
        self.out_of_range_bucket = out_of_range_bucket
        self.edges_: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "EqualFrequencyDiscretizer":
        """Learn bucket boundaries from (normal) training data."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.prefilter_fraction is not None and len(X) > 10:
            rng = np.random.default_rng(self.random_state)
            n_sample = max(int(len(X) * self.prefilter_fraction), 10)
            X = X[rng.choice(len(X), size=min(n_sample, len(X)), replace=False)]
        qs = np.arange(1, self.n_buckets) / self.n_buckets
        self.edges_ = []
        for j in range(X.shape[1]):
            col = X[:, j]
            uniq = np.unique(col)
            if len(uniq) == 1:
                # Constant column: one cut just above the constant so an
                # unseen-under-attack value separates out.
                edges = np.array([np.nextafter(uniq[0], np.inf)])
            else:
                edges = np.unique(np.quantile(col, qs))
                # Drop degenerate edges equal to the column minimum (they
                # would create an empty first bucket).
                edges = edges[edges > uniq[0]]
                if len(edges) == 0:
                    # Heavily skewed column (most mass at the minimum):
                    # cut between the minimum and the next distinct value.
                    edges = np.array([(uniq[0] + uniq[1]) / 2.0])
                if self.out_of_range_bucket:
                    # Values beyond anything normal data produced form
                    # their own bucket: sub-models never saw it as a
                    # label, so it carries probability zero — the
                    # "never appears in normal data" semantics of §3.
                    # Without this, an attack burst 10x above the normal
                    # maximum is indistinguishable from an ordinary busy
                    # window saturating the top equal-frequency bucket.
                    top = np.nextafter(uniq[-1], np.inf)
                    if top > edges[-1]:
                        edges = np.append(edges, top)
            self.edges_.append(edges)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Map values to bucket codes (0-based integers)."""
        if self.edges_ is None:
            raise RuntimeError("discretizer is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has {X.shape[1] if X.ndim == 2 else '?'} columns, "
                f"expected {len(self.edges_)}"
            )
        codes = np.empty(X.shape, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            # Bucket j holds values in (edges[j-1], edges[j]]; values above
            # the last edge land in the top bucket.
            codes[:, j] = np.searchsorted(edges, X[:, j], side="left")
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its bucket codes."""
        return self.fit(X).transform(X)

    def n_values(self) -> np.ndarray:
        """Bucket count per column (``len(edges) + 1``)."""
        if self.edges_ is None:
            raise RuntimeError("discretizer is not fitted")
        return np.array([len(e) + 1 for e in self.edges_], dtype=np.int64)
