"""Model/feature reduction (paper §6 future work).

"We are developing technologies to reduce computational cost, where
fewer number of models are involved in the combination process and each
model could be simplified with a reduced feature set.  We are currently
studying approaches based on both correlation analysis and factor
analysis."

Two reducers over *normal* training data, both returning column indices
to pass to :class:`~repro.core.model.CrossFeatureModel` as
``feature_subset``:

* :func:`correlation_reduce` — greedy de-duplication: walk the features
  in a stable order and drop any feature whose absolute Pearson
  correlation with an already-kept feature exceeds a threshold.  Highly
  redundant features (e.g. the same count at overlapping windows) add
  sub-models without adding information.
* :func:`factor_reduce` — factor-analysis-flavoured selection: compute
  the principal components of the standardized normal data and keep, for
  each of the leading factors, the feature with the largest absolute
  loading.  The kept set spans the main modes of normal variation with
  one representative feature per mode.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _validate(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if len(X) < 3:
        raise ValueError("need at least 3 rows to estimate correlations")
    return X


def correlation_reduce(
    X_normal: np.ndarray,
    threshold: float = 0.95,
) -> list[int]:
    """Indices of features surviving correlation de-duplication.

    Constant features are kept (they are cheap and highly informative as
    never-seen-bucket detectors); among correlated groups the
    lowest-index member survives, making the result deterministic.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    X = _validate(X_normal)
    n, d = X.shape
    std = X.std(axis=0)
    variable = std > 0
    Z = np.zeros_like(X)
    Z[:, variable] = (X[:, variable] - X[:, variable].mean(axis=0)) / std[variable]
    corr = (Z.T @ Z) / n

    kept: list[int] = []
    for j in range(d):
        if not variable[j]:
            kept.append(j)  # constant: keep as an escape-bucket detector
            continue
        redundant = any(
            variable[k] and abs(corr[j, k]) >= threshold for k in kept
        )
        if not redundant:
            kept.append(j)
    return kept


def factor_reduce(
    X_normal: np.ndarray,
    n_features: int,
) -> list[int]:
    """Indices of one representative feature per leading factor.

    Runs PCA on the standardized normal data and, for each of the top
    components in turn, selects the not-yet-chosen feature with the
    largest absolute loading, until ``n_features`` are chosen (cycling
    through components again if there are fewer components than requested
    features).
    """
    X = _validate(X_normal)
    d = X.shape[1]
    if not 1 <= n_features <= d:
        raise ValueError(f"n_features must be in [1, {d}]")
    std = X.std(axis=0)
    std_safe = np.where(std > 0, std, 1.0)
    Z = (X - X.mean(axis=0)) / std_safe
    # SVD of the standardized data: rows of Vt are component loadings.
    _, singular, Vt = np.linalg.svd(Z, full_matrices=False)
    order = np.argsort(singular)[::-1]
    loadings = np.abs(Vt[order])

    chosen: list[int] = []
    component = 0
    while len(chosen) < n_features:
        row = loadings[component % len(loadings)].copy()
        row[chosen] = -1.0  # already chosen
        candidate = int(np.argmax(row))
        if row[candidate] < 0:
            break  # every feature chosen
        chosen.append(candidate)
        component += 1
    return sorted(chosen)


def reduction_report(
    X_normal: np.ndarray,
    feature_names: Sequence[str],
    threshold: float = 0.95,
) -> dict:
    """Summary of how far correlation analysis can shrink the model set."""
    kept = correlation_reduce(X_normal, threshold)
    return {
        "n_original": int(np.asarray(X_normal).shape[1]),
        "n_kept": len(kept),
        "kept_names": [feature_names[j] for j in kept],
        "reduction": 1.0 - len(kept) / np.asarray(X_normal).shape[1],
    }
