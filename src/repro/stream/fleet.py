"""Fleet detection: many monitored streams, one scoring pipeline.

An :class:`OnlineDetector` watches one node; the paper's deployment story
is an IDS agent on *every* node.  A :class:`FleetDetector` multiplexes N
:class:`~repro.stream.extractor.StreamingExtractor` streams — one per
monitored node, across one or many concurrent scenarios — into a single
pipeline: windows closing on the same sampling tick are collected into
one bucket and scored in **one** vectorized
:meth:`~repro.core.model.CrossFeatureModel.normality_score` call, instead
of N separate single-row calls.

Correctness rests on the PR 4 streaming contract: every step of
``normality_score`` (discretizer transform, frontier-batched tree walk,
per-row probability pooling) treats rows independently, so scoring the
``(N, L)`` tick bucket is bit-identical to N independent ``(1, L)``
calls — a fleet run reproduces N independent :class:`OnlineDetector`
runs exactly (asserted by ``tests/stream/test_fleet_equivalence.py`` and
in the bench harness).

Mechanics
---------
Each stream is a *lane* with a time **frontier**: the latest sampling
tick the lane's clock has proven passed.  Delivered rows buffer in
per-tick buckets; a bucket at time ``t`` finalises (scores) once every
active lane's frontier is strictly past ``t`` — the fleet watermark.
Lanes that finish or are :meth:`dropped <FleetDetector.drop>` stop
holding the watermark back, so a dead probe cannot stall the fleet; a
*late* lane simply delays finalisation (rows buffer cheaply).

Per-stream alarms keep :class:`~repro.stream.detector.Alarm` semantics
(tagged with the lane name); each finalised bucket is additionally put
to a fused network-level vote: if the number of alarming streams meets
the quorum policy (k-of-n or fraction-of-reporting, see
:mod:`repro.stream.config`) a :class:`FleetAlarm` fires.

Streams are either **tap-fed** — :meth:`FleetDetector.add_stream`
returns a :class:`FleetStream` implementing the scenario tap protocol,
so it rides :func:`~repro.simulation.scenario.run_scenario` or
:func:`~repro.stream.replay.replay_trace` directly — or **externally
fed** via :meth:`attach` / :meth:`ingest` / :meth:`seal`, for rows that
arrive from outside the in-process simulator (and for benchmarks that
time scoring without extraction).

Construction mirrors the single-stream surface
(:mod:`repro.stream.config` documents the shared keywords)::

    fleet = FleetDetector.from_detector(fitted, quorum=0.5)
    for m in monitors:
        fleet.add_stream(m, sampling_period=config.sampling_period)
    run_scenario(config, attacks, taps=fleet.taps())
    result = fleet.result()

or, end to end through the runtime layer::

    result = Session().fleet_detect(plan, quorum=2)
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.attribution import (
    AlarmAttributor,
    Verdict,
    attribution_enabled,
    contribution_matrix,
    fuse_verdicts,
)
from repro.core.model import CrossFeatureDetector, CrossFeatureModel
from repro.features.traffic import DEFAULT_SAMPLING_PERIODS
from repro.stream.config import (
    DEFAULT_ATTRIBUTION,
    DEFAULT_MAX_FAULTS,
    DEFAULT_MONITOR,
    DEFAULT_QUORUM,
    DEFAULT_ROW_POLICY,
    DEFAULT_WARMUP,
    needed_votes,
    resolve_threshold,
    validate_quorum,
    validate_row_policy,
)
from repro.stream.detector import Alarm, StreamResult
from repro.stream.extractor import StreamingExtractor, WindowRow
from repro.stream.faults import RowFaultInjector, StreamFault, StreamFaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.eval.experiments import ExperimentPlan
    from repro.runtime.session import Session


@dataclass(frozen=True)
class FleetAlarm:
    """One fused network-level verdict: the quorum of streams alarmed.

    ``streams``/``scores`` list the alarming lanes (and their scores) on
    the tick; ``reporting`` is how many streams delivered a window for
    the tick at all, and ``needed`` the quorum the policy demanded of
    them.  ``latency_s`` is the wall-clock cost of the batch scoring
    call that produced the verdict.  ``verdict`` fuses the alarming
    lanes' typed votes (None unless attribution is on).
    """

    time: float                  #: window end, simulation seconds
    streams: tuple[str, ...]     #: names of the alarming lanes
    scores: tuple[float, ...]    #: their normality scores, same order
    reporting: int               #: lanes that delivered a window this tick
    needed: int                  #: alarming lanes the quorum demanded
    threshold: float             #: decision threshold in force
    latency_s: float             #: wall-clock seconds for the batch score
    verdict: Verdict | None = None  #: fused typed verdict over lane votes


class _Lane:
    """Per-stream bookkeeping inside the fleet (not public API)."""

    __slots__ = (
        "name", "scenario", "monitor", "frontier", "done",
        "times", "scores", "latencies", "alarms",
        "crashed", "ticks_seen", "consecutive_faults",
        "last_time", "last_index", "faults",
    )

    def __init__(self, name: str, scenario: str, monitor: int):
        self.name = name
        self.scenario = scenario
        self.monitor = monitor
        self.frontier = float("-inf")
        self.done = False
        self.times: list[float] = []
        self.scores: list[float] = []
        self.latencies: list[float] = []
        self.alarms: list[Alarm] = []
        self.crashed = False           # injected crash: the lane went silent
        self.ticks_seen = 0            # sampling ticks observed (crash keying)
        self.consecutive_faults = 0    # quarantine circuit-breaker counter
        self.last_time = float("-inf")  # last admitted row's window end
        self.last_index = -1           # last admitted row's index
        self.faults: list[StreamFault] = []


class FleetStream:
    """One tap-fed fleet lane: the scenario tap protocol, multiplexed.

    Wraps a :class:`StreamingExtractor` whose emitted rows are delivered
    to the owning :class:`FleetDetector`'s tick buckets; each sampling
    tick advances the lane's frontier and lets the fleet finalise every
    bucket the whole fleet has moved past.  Pass instances to
    :func:`~repro.simulation.scenario.run_scenario` via ``taps=`` or to
    :func:`~repro.stream.replay.replay_trace` like any other tap.
    """

    def __init__(self, fleet: "FleetDetector", lane: _Lane, extractor: StreamingExtractor):
        self._fleet = fleet
        self._lane = lane
        self._extractor = extractor

    @property
    def name(self) -> str:
        """The lane name (``"<scenario>/n<monitor>"`` by default)."""
        return self._lane.name

    @property
    def scenario(self) -> str:
        """Scenario group this lane belongs to."""
        return self._lane.scenario

    @property
    def monitor(self) -> int:
        """Observed node id (the scenario binds the tap by this)."""
        return self._lane.monitor

    # -- scenario-tap protocol -----------------------------------------
    def bind(self, stats) -> None:
        """Subscribe the inner extractor to the monitor's live log."""
        self._extractor.bind(stats)

    def unbind(self) -> None:
        """Detach the inner extractor from its bound node."""
        self._extractor.unbind()

    def on_tick(self, time: float, speed: float) -> None:
        """A sampling tick: advance the window clock and the watermark.

        Checks the fleet's injected fault plan for this lane's crash
        point; a crashed lane goes permanently silent (its frontier
        freezes, so only a ``stall_timeout`` or end-of-stream seal can
        release the watermark it holds).
        """
        lane = self._lane
        tick_index = lane.ticks_seen
        lane.ticks_seen += 1
        if not lane.crashed:
            plan = self._fleet._fault_plan
            if plan is not None and plan.lane_crash(lane.name, tick_index):
                self._fleet._crash_lane(lane)
        if lane.crashed:
            return
        self._extractor.on_tick(time, speed)
        lane.frontier = float(time)
        self._fleet._advance()

    def finish(self) -> None:
        """Stream end: flush the pending window, release the watermark.

        Idempotent; a crashed lane is sealed with reason ``"crashed"``
        instead of flushing (its tail never arrived).
        """
        lane = self._lane
        if lane.done:
            return
        if lane.crashed:
            self._fleet._seal_lane(lane, "crashed")
            return
        self._fleet._flush_stream(lane)
        self._fleet._finish_lane(lane)

    # -- NodeStats-listener protocol (replay feeds these directly) -----
    def on_packet(self, time, ptype, direction) -> None:
        if not self._lane.crashed:
            self._extractor.on_packet(time, ptype, direction)

    def on_route_event(self, time, kind) -> None:
        if not self._lane.crashed:
            self._extractor.on_route_event(time, kind)

    def on_route_length(self, time, hops) -> None:
        if not self._lane.crashed:
            self._extractor.on_route_length(time, hops)


@dataclass
class FleetResult:
    """Everything one fleet run produced.

    ``streams`` maps lane name to the same :class:`StreamResult` an
    independent :class:`OnlineDetector` over that stream would have
    frozen (scores bit-identical); ``fused`` is the network-level alarm
    stream and ``batch_sizes`` the per-tick scoring batch sizes (the
    multiplexing win: mean batch size ≈ active streams).
    """

    threshold: float
    method: str
    quorum: int | float
    streams: dict[str, StreamResult]
    fused: list[FleetAlarm]
    batch_sizes: list[int] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Lane name -> abnormal-seal reason ("dropped" / "stalled" /
    #: "faulted" / "crashed"); lanes that simply finished are absent.
    sealed: dict[str, str] = field(default_factory=dict)
    #: Every quarantined row across the fleet, in detection order.
    fault_records: list[StreamFault] = field(default_factory=list)
    #: Seal attempts on already-finished lanes (idempotent no-ops).
    duplicate_seals: int = 0

    @property
    def n_streams(self) -> int:
        """Number of lanes the fleet multiplexed."""
        return len(self.streams)

    @property
    def windows(self) -> int:
        """Total windows scored across every lane."""
        return sum(r.windows for r in self.streams.values())

    @property
    def alarms(self) -> int:
        """Total per-stream alarms across every lane."""
        return sum(len(r.alarms) for r in self.streams.values())

    @property
    def batches(self) -> int:
        """Vectorized scoring calls the run needed (one per closed tick)."""
        return len(self.batch_sizes)

    @property
    def mean_batch_size(self) -> float:
        """Mean rows per scoring call — the multiplexing factor."""
        return (
            sum(self.batch_sizes) / len(self.batch_sizes)
            if self.batch_sizes else 0.0
        )

    @property
    def windows_per_second(self) -> float:
        """Fleet detection throughput (scored windows per wall-clock second)."""
        return self.windows / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def summary(self) -> str:
        """One-line human-readable digest (the CLI prints this)."""
        return (
            f"{self.n_streams} streams, {self.windows} windows in "
            f"{self.batches} batches (mean {self.mean_batch_size:.1f} rows), "
            f"{self.alarms} stream alarms, {len(self.fused)} fused alarms, "
            f"{self.windows_per_second:,.0f} windows/s"
        )


class FleetDetector:
    """Score many monitored streams through one vectorized pipeline.

    Parameters
    ----------
    model:
        A *trained* (and, for ``calibrated_probability``, calibrated)
        :class:`CrossFeatureModel` shared by every lane.
    threshold, method, quorum, on_alarm, on_fused:
        The shared construction keywords — see
        :mod:`repro.stream.config` for semantics and defaults.
    on_batch:
        Callback ``(batch_size, seconds)`` per vectorized scoring call
        (the Session wires :meth:`RuntimeMetrics.record_fleet_batch`
        here for per-tick batch-size accounting).
    row_policy, max_consecutive_faults, stall_timeout:
        Degraded-input handling — see :mod:`repro.stream.config`.
    faults:
        Optional injected :class:`~repro.stream.faults.StreamFaultPlan`
        (deterministic chaos for tests and the stream-chaos bench).
    on_fault:
        Callback per quarantined :class:`StreamFault`.
    on_seal:
        Callback ``(lane_name, reason)`` per abnormal lane seal
        ("dropped" / "stalled" / "faulted" / "crashed") and per
        duplicate seal attempt (reason ``"duplicate"``).
    attribution:
        Attach typed verdicts: one
        :class:`~repro.attribution.AlarmAttributor` per lane (each lane
        carries its own CUSUM/blame history) with contributions computed
        in one batched call per tick bucket, and a fused verdict voted
        over the alarming lanes on each :class:`FleetAlarm`.  Runs
        strictly after scoring — scores/alarms/fused timing are
        bit-identical on or off (``REPRO_ATTRIBUTION=0`` force-disables).
    """

    def __init__(
        self,
        model: CrossFeatureModel,
        threshold: float,
        method: str = "avg_probability",
        quorum: int | float = DEFAULT_QUORUM,
        on_alarm: Callable[[Alarm], None] | None = None,
        on_fused: Callable[[FleetAlarm], None] | None = None,
        on_batch: Callable[[int, float], None] | None = None,
        row_policy: str = DEFAULT_ROW_POLICY,
        max_consecutive_faults: int = DEFAULT_MAX_FAULTS,
        stall_timeout: float | None = None,
        faults: StreamFaultPlan | None = None,
        on_fault: Callable[[StreamFault], None] | None = None,
        on_seal: Callable[[str, str], None] | None = None,
        attribution: bool = DEFAULT_ATTRIBUTION,
    ):
        if model.discretizer is None:
            raise ValueError("model must be fitted before fleet detection")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be positive, got {stall_timeout}")
        self.model = model
        self.threshold = float(threshold)
        self.method = method
        self.quorum = validate_quorum(quorum)
        self.on_alarm = on_alarm
        self.on_fused = on_fused
        self.on_batch = on_batch
        self.row_policy = validate_row_policy(row_policy)
        self.max_consecutive_faults = int(max_consecutive_faults)
        self.stall_timeout = stall_timeout
        self.on_fault = on_fault
        self.on_seal = on_seal
        self.attribution = bool(attribution) and attribution_enabled()
        self._attributors: dict[str, AlarmAttributor] = {}
        self.fused: list[FleetAlarm] = []
        self.batch_sizes: list[int] = []
        self.fault_records: list[StreamFault] = []
        self.sealed: dict[str, str] = {}
        self.duplicate_seals = 0
        self._fault_plan = faults if faults else None
        self._injectors: dict[str, RowFaultInjector] = {}
        self._lanes: dict[str, _Lane] = {}
        self._streams: dict[str, FleetStream] = {}
        self._buckets: dict[float, list[tuple[_Lane, WindowRow]]] = {}
        self._heap: list[float] = []
        self._finalized_through = float("-inf")

    # ------------------------------------------------------------------
    # Construction (the unified surface; see repro.stream.config)
    # ------------------------------------------------------------------
    @classmethod
    def from_detector(
        cls,
        detector: CrossFeatureDetector,
        threshold: float | None = None,
        quorum: int | float = DEFAULT_QUORUM,
        on_alarm: Callable[[Alarm], None] | None = None,
        on_fused: Callable[[FleetAlarm], None] | None = None,
        on_batch: Callable[[int, float], None] | None = None,
        row_policy: str = DEFAULT_ROW_POLICY,
        max_consecutive_faults: int = DEFAULT_MAX_FAULTS,
        stall_timeout: float | None = None,
        faults: StreamFaultPlan | None = None,
        on_fault: Callable[[StreamFault], None] | None = None,
        on_seal: Callable[[str, str], None] | None = None,
        attribution: bool = DEFAULT_ATTRIBUTION,
    ) -> "FleetDetector":
        """Wrap a fitted batch :class:`CrossFeatureDetector` unchanged.

        ``threshold=None`` adopts the detector's calibrated
        ``threshold_`` (the same rule as
        :meth:`OnlineDetector.from_detector`).
        """
        return cls(
            model=detector.model,
            threshold=resolve_threshold(detector, threshold),
            method=detector.method,
            quorum=quorum,
            on_alarm=on_alarm,
            on_fused=on_fused,
            on_batch=on_batch,
            row_policy=row_policy,
            max_consecutive_faults=max_consecutive_faults,
            stall_timeout=stall_timeout,
            faults=faults,
            on_fault=on_fault,
            on_seal=on_seal,
            attribution=attribution,
        )

    @classmethod
    def from_session(
        cls,
        session: "Session",
        plan: "ExperimentPlan",
        monitors: Sequence[int] | None = None,
        scenarios: int | Sequence[str] = 1,
        warmup: float | None = None,
        threshold: float | None = None,
        quorum: int | float = DEFAULT_QUORUM,
        classifier: str = "c45",
        method: str = "calibrated_probability",
        false_alarm_rate: float = 0.02,
        max_models: int | None = None,
        n_buckets: int = 5,
        n_jobs: int | None = 1,
        on_alarm: Callable[[Alarm], None] | None = None,
        on_fused: Callable[[FleetAlarm], None] | None = None,
        on_batch: Callable[[int, float], None] | None = None,
        row_policy: str = DEFAULT_ROW_POLICY,
        max_consecutive_faults: int = DEFAULT_MAX_FAULTS,
        stall_timeout: float | None = None,
        faults: StreamFaultPlan | None = None,
        on_fault: Callable[[StreamFault], None] | None = None,
        on_seal: Callable[[str, str], None] | None = None,
        attribution: bool = DEFAULT_ATTRIBUTION,
    ) -> "FleetDetector":
        """Train via the session and register one lane per (scenario, monitor).

        Trains (or reuses) the plan's detector through
        :meth:`Session.fitted_detector` with the usual training knobs,
        then adds a stream for every monitor of every scenario group:
        ``monitors=None`` watches every node except the plan's attacker;
        ``scenarios`` is a group count (named ``"s0"``, ``"s1"``, ...)
        or explicit group names.  The registered taps are retrieved with
        :meth:`taps` and fed to ``run_scenario`` / ``replay_trace``.
        """
        detector = session.fitted_detector(
            plan,
            classifier=classifier,
            method=method,
            false_alarm_rate=false_alarm_rate,
            max_models=max_models,
            n_buckets=n_buckets,
            n_jobs=n_jobs,
        )
        fleet = cls.from_detector(
            detector,
            threshold=threshold,
            quorum=quorum,
            on_alarm=on_alarm,
            on_fused=on_fused,
            on_batch=on_batch,
            row_policy=row_policy,
            max_consecutive_faults=max_consecutive_faults,
            stall_timeout=stall_timeout,
            faults=faults,
            on_fault=on_fault,
            on_seal=on_seal,
            attribution=attribution,
        )
        if monitors is None:
            monitors = tuple(m for m in range(plan.n_nodes) if m != plan.attacker)
        if isinstance(scenarios, int):
            scenarios = tuple(f"s{k}" for k in range(scenarios))
        sampling_period = plan.scenario_config(plan.train_seeds[0]).sampling_period
        for scenario in scenarios:
            for monitor in monitors:
                fleet.add_stream(
                    monitor,
                    scenario=scenario,
                    periods=plan.periods,
                    sampling_period=sampling_period,
                    warmup=plan.warmup if warmup is None else warmup,
                )
        return fleet

    # ------------------------------------------------------------------
    # Stream registration
    # ------------------------------------------------------------------
    def _register(self, name: str, scenario: str, monitor: int) -> _Lane:
        if name in self._lanes:
            raise ValueError(f"stream {name!r} is already registered")
        lane = _Lane(name, scenario, monitor)
        self._lanes[name] = lane
        if self.attribution:
            # One attributor per lane: CUSUM/blame history is a
            # property of the stream, not of the fleet.
            self._attributors[name] = AlarmAttributor(self.model, self.threshold)
        return lane

    def add_stream(
        self,
        monitor: int = DEFAULT_MONITOR,
        scenario: str = "s0",
        periods: Sequence[float] = DEFAULT_SAMPLING_PERIODS,
        sampling_period: float = 5.0,
        warmup: float = DEFAULT_WARMUP,
        name: str | None = None,
    ) -> FleetStream:
        """Register a tap-fed lane extracting windows at ``monitor``.

        Returns the :class:`FleetStream` tap; pass it to
        ``run_scenario(..., taps=...)`` or ``replay_trace``.  Lanes in
        different ``scenario`` groups may ride different concurrent
        scenarios; their same-time windows still share score batches.
        """
        lane = self._register(name or f"{scenario}/n{monitor}", scenario, monitor)
        extractor = StreamingExtractor(
            monitor=monitor,
            periods=tuple(periods),
            sampling_period=sampling_period,
            warmup=warmup,
            on_row=lambda row, _lane=lane: self._deliver(_lane, row),
            keep_rows=False,
        )
        stream = FleetStream(self, lane, extractor)
        self._streams[lane.name] = stream
        self._make_injector(lane)
        return stream

    def taps(self, scenario: str | None = None) -> list[FleetStream]:
        """The registered tap-fed streams (optionally one scenario group)."""
        return [
            s for s in self._streams.values()
            if scenario is None or s.scenario == scenario
        ]

    # ------------------------------------------------------------------
    # Externally-fed lanes (rows arrive from outside the simulator)
    # ------------------------------------------------------------------
    def attach(
        self,
        name: str,
        monitor: int = DEFAULT_MONITOR,
        scenario: str = "s0",
    ) -> None:
        """Register an externally-fed lane (no extractor of its own).

        Feed it with :meth:`ingest` (closed :class:`WindowRow` events —
        from a remote probe, a message bus, or a benchmark harness) and
        advance its clock with :meth:`seal`.
        """
        lane = self._register(name, scenario, monitor)
        self._make_injector(lane)

    def ingest(self, name: str, row: WindowRow) -> None:
        """Deliver one closed window for an externally-fed lane.

        Under ``row_policy="strict"`` a delivery on a finished lane
        raises; ``"quarantine"`` records it as a ``"late"`` fault.
        """
        lane = self._lanes[name]
        if lane.done:
            if self.row_policy == "quarantine":
                self._quarantine(
                    lane, row, "late",
                    f"row delivered after lane {name!r} was sealed",
                )
                return
            raise ValueError(f"stream {name!r} already finished")
        self._deliver(lane, row)

    def seal(self, name: str, through: float) -> None:
        """Promise no more rows with ``time <= through`` on one lane.

        Sealing a finished lane is an idempotent no-op, counted in
        ``duplicate_seals`` (restart logic may seal defensively).
        """
        lane = self._lanes[name]
        if lane.done:
            self._duplicate_seal(lane)
            return
        lane.frontier = max(lane.frontier, float(through))
        self._advance()

    def seal_all(self, through: float) -> None:
        """Advance every unfinished lane's frontier in one call."""
        t = float(through)
        for lane in self._lanes.values():
            if not lane.done:
                lane.frontier = max(lane.frontier, t)
        self._advance()

    def drop(self, name: str) -> None:
        """A stream died or left: stop waiting for it.

        Windows it already delivered still score; it just no longer
        holds the fleet watermark back, and fused quorums are evaluated
        over the streams that keep reporting.  Dropping a finished lane
        is an idempotent no-op counted in ``duplicate_seals``.
        """
        lane = self._lanes[name]
        if lane.done:
            self._duplicate_seal(lane)
            return
        self._flush_stream(lane)
        self._seal_lane(lane, "dropped")

    def finish(self) -> None:
        """Fleet end: flush every lane and score the remaining buckets."""
        for stream in self._streams.values():
            stream.finish()
        for lane in self._lanes.values():
            if not lane.done:
                injector = self._injectors.get(lane.name)
                if injector is not None:
                    injector.flush()
                self._finish_lane(lane)

    # ------------------------------------------------------------------
    # The multiplexer core
    # ------------------------------------------------------------------
    @property
    def n_streams(self) -> int:
        """Registered lanes (tap-fed + externally fed)."""
        return len(self._lanes)

    @property
    def windows(self) -> int:
        """Windows scored so far across the whole fleet."""
        return sum(len(lane.scores) for lane in self._lanes.values())

    def _make_injector(self, lane: _Lane) -> None:
        """Attach a per-lane row-fault injector when a plan is installed."""
        if self._fault_plan is not None:
            self._injectors[lane.name] = RowFaultInjector(
                self._fault_plan,
                lane.name,
                deliver=lambda row, _lane=lane: self._admit(_lane, row),
                crash_on_row=False,
            )

    def _deliver(self, lane: _Lane, row: WindowRow) -> None:
        """Route one closed window through the fault plan to admission."""
        if lane.crashed:
            return
        injector = self._injectors.get(lane.name)
        if injector is not None:
            injector(row)
        else:
            self._admit(lane, row)

    def _classify_row(self, lane: _Lane, row: WindowRow) -> tuple[str, str] | None:
        """The quarantine verdict for a degraded row, or ``None`` if clean."""
        t = float(row.time)
        if np.isnan(row.features).any():
            return "nan", "row carries NaN features"
        if np.isinf(row.features).any():
            return "out_of_range", "row carries non-finite features"
        if not np.isfinite(t) or t < 0:
            return "out_of_range", f"window time {t} is not a valid instant"
        if t <= self._finalized_through:
            return "late", (
                f"window at {t} arrived after its tick was finalised "
                f"(watermark {self._finalized_through})"
            )
        if t == lane.last_time and row.index == lane.last_index:
            return "duplicate", f"window {row.index} at {t} was already delivered"
        return None

    def _quarantine(self, lane: _Lane, row: WindowRow, kind: str, detail: str) -> None:
        """Record one quarantined row; trip the consecutive-fault breaker."""
        fault = StreamFault(
            stream=lane.name, kind=kind, index=row.index,
            time=float(row.time), detail=detail,
        )
        lane.faults.append(fault)
        self.fault_records.append(fault)
        if self.on_fault is not None:
            self.on_fault(fault)
        lane.consecutive_faults += 1
        if not lane.done and lane.consecutive_faults > self.max_consecutive_faults:
            self._seal_lane(lane, "faulted")

    def _admit(self, lane: _Lane, row: WindowRow) -> None:
        """Validate one row under the policy and buffer it into its bucket."""
        t = float(row.time)
        if self.row_policy == "quarantine":
            verdict = self._classify_row(lane, row)
            if verdict is not None:
                self._quarantine(lane, row, *verdict)
                return
            lane.consecutive_faults = 0
        elif t <= self._finalized_through:
            raise ValueError(
                f"stream {lane.name!r} delivered a window at {t} after its "
                f"tick was finalised (watermark {self._finalized_through}); "
                f"seal lanes only once their rows are in"
            )
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = bucket = []
            heapq.heappush(self._heap, t)
        bucket.append((lane, row))
        lane.last_time = t
        lane.last_index = row.index

    def _crash_lane(self, lane: _Lane) -> None:
        """An injected crash point: the lane goes permanently silent."""
        lane.crashed = True
        injector = self._injectors.get(lane.name)
        if injector is not None:
            injector.restore({"crashed": True, "held": None})

    def _flush_stream(self, lane: _Lane) -> None:
        """Flush a lane's pending window and any held (delayed) row."""
        stream = self._streams.get(lane.name)
        if stream is not None and not lane.crashed:
            stream._extractor.finish()
        injector = self._injectors.get(lane.name)
        if injector is not None:
            injector.flush()

    def _finish_lane(self, lane: _Lane) -> None:
        """Normal end of stream: mark done, release the watermark."""
        if lane.done:
            self._duplicate_seal(lane)
            return
        lane.done = True
        self._advance()

    def _seal_lane(self, lane: _Lane, reason: str) -> None:
        """Abnormal end of stream: record why the lane was taken out."""
        if lane.done:
            self._duplicate_seal(lane)
            return
        lane.done = True
        self.sealed[lane.name] = reason
        if self.on_seal is not None:
            self.on_seal(lane.name, reason)
        self._advance()

    def _duplicate_seal(self, lane: _Lane) -> None:
        """Seal/drop on an already-finished lane: a counted no-op."""
        self.duplicate_seals += 1
        if self.on_seal is not None:
            self.on_seal(lane.name, "duplicate")

    def _watermark(self) -> float:
        """Min frontier over active lanes (+inf once all are done)."""
        active = [
            lane.frontier for lane in self._lanes.values() if not lane.done
        ]
        return min(active) if active else float("inf")

    def _check_stalls(self) -> None:
        """Seal lanes lagging the most advanced live lane past the bound.

        Compared *within each scenario group*: lanes of a group that has
        not started yet (sequential multi-scenario runs) sit at ``-inf``
        and are never stalled — a lane only becomes stall-eligible once
        it has advanced its frontier at least once, so the first tick of
        a run (where sibling taps have not yet been dispatched) cannot
        seal the whole fleet.  A crashed lane in a running group *has* a
        frontier, falls behind its siblings and is sealed.  Marks lanes
        done inline (no recursive :meth:`_advance`); the caller
        recomputes the watermark right after.
        """
        groups: dict[str, list[_Lane]] = {}
        for lane in self._lanes.values():
            if not lane.done:
                groups.setdefault(lane.scenario, []).append(lane)
        for lanes in groups.values():
            if len(lanes) < 2:
                continue
            max_frontier = max(lane.frontier for lane in lanes)
            if max_frontier == float("-inf"):
                continue
            cutoff = max_frontier - self.stall_timeout
            for lane in lanes:
                if lane.frontier == float("-inf"):
                    continue
                if lane.frontier < cutoff:
                    lane.done = True
                    self.sealed[lane.name] = "stalled"
                    if self.on_seal is not None:
                        self.on_seal(lane.name, "stalled")

    def _advance(self) -> None:
        """Finalise every bucket the whole fleet has moved past."""
        if self.stall_timeout is not None:
            self._check_stalls()
        if not self._heap:
            return
        watermark = self._watermark()
        while self._heap and self._heap[0] < watermark:
            t = heapq.heappop(self._heap)
            self._finalized_through = t
            self._score_bucket(t, self._buckets.pop(t))

    def _score_bucket(self, t: float, entries: list[tuple[_Lane, WindowRow]]) -> None:
        """One vectorized scoring call for all windows closing at ``t``."""
        X = np.vstack([row.features for _, row in entries])
        t0 = _time.perf_counter()
        scores = self.model.normality_score(X, self.method)
        latency = _time.perf_counter() - t0
        self.batch_sizes.append(len(entries))
        if self.on_batch is not None:
            self.on_batch(len(entries), latency)

        # Attribution reads the finished scores, never the reverse:
        # contributions for every alarming row in the bucket come from
        # one batched sub-model pass (mirroring the scoring call).
        contributions: dict[int, np.ndarray] = {}
        if self._attributors:
            alarm_rows = [
                k for k, s in enumerate(scores) if float(s) < self.threshold
            ]
            if alarm_rows:
                batch = contribution_matrix(self.model, X[alarm_rows])
                contributions = {k: batch[j] for j, k in enumerate(alarm_rows)}

        alarming: list[tuple[_Lane, float]] = []
        votes: list[Verdict] = []
        for k, ((lane, row), score) in enumerate(zip(entries, scores)):
            s = float(score)
            lane.times.append(row.time)
            lane.scores.append(s)
            lane.latencies.append(latency)
            is_alarm = s < self.threshold
            verdict = None
            attributor = self._attributors.get(lane.name)
            if attributor is not None:
                verdict = attributor.attribute(
                    row.time, s, row.features, is_alarm,
                    contribution=contributions.get(k),
                )
            if is_alarm:
                alarm = Alarm(
                    index=row.index,
                    time=row.time,
                    score=s,
                    threshold=self.threshold,
                    monitor=lane.monitor,
                    latency_s=latency,
                    stream=lane.name,
                    verdict=verdict,
                )
                lane.alarms.append(alarm)
                alarming.append((lane, s))
                if verdict is not None:
                    votes.append(verdict)
                if self.on_alarm is not None:
                    self.on_alarm(alarm)

        reporting = len(entries)
        needed = needed_votes(self.quorum, reporting)
        if len(alarming) >= needed:
            fused = FleetAlarm(
                time=t,
                streams=tuple(lane.name for lane, _ in alarming),
                scores=tuple(s for _, s in alarming),
                reporting=reporting,
                needed=needed,
                threshold=self.threshold,
                latency_s=latency,
                verdict=fuse_verdicts(votes) if votes else None,
            )
            self.fused.append(fused)
            if self.on_fused is not None:
                self.on_fused(fused)

    # ------------------------------------------------------------------
    def result(
        self,
        labels: "Mapping[str, np.ndarray] | None" = None,
        elapsed_s: float = 0.0,
    ) -> FleetResult:
        """Freeze the run into a :class:`FleetResult`.

        ``labels`` optionally maps lane names to per-window ground
        truth (lanes without an entry default to all-normal, like
        :meth:`OnlineDetector.result`).
        """
        streams: dict[str, StreamResult] = {}
        for name, lane in self._lanes.items():
            latencies = np.asarray(lane.latencies, dtype=float)
            lane_labels = labels.get(name) if labels is not None else None
            streams[name] = StreamResult(
                monitor=lane.monitor,
                threshold=self.threshold,
                method=self.method,
                times=np.asarray(lane.times, dtype=float),
                scores=np.asarray(lane.scores, dtype=float),
                labels=(
                    np.asarray(lane_labels, dtype=bool)
                    if lane_labels is not None
                    else np.zeros(len(lane.scores), dtype=bool)
                ),
                alarms=list(lane.alarms),
                windows=len(lane.scores),
                elapsed_s=elapsed_s,
                mean_latency_s=float(latencies.mean()) if len(latencies) else 0.0,
                max_latency_s=float(latencies.max()) if len(latencies) else 0.0,
            )
        return FleetResult(
            threshold=self.threshold,
            method=self.method,
            quorum=self.quorum,
            streams=streams,
            fused=list(self.fused),
            batch_sizes=list(self.batch_sizes),
            elapsed_s=elapsed_s,
            sealed=dict(self.sealed),
            fault_records=list(self.fault_records),
            duplicate_seals=self.duplicate_seals,
        )

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The fleet's full mutable run state, lanes and buckets included.

        Captures every lane's frontier / verdicts / extractor rings /
        injector state, the unfinalised tick buckets, the heap and the
        watermark — everything needed to resume a durable run exactly.
        Construction knobs (model, threshold, quorum, policy) are not
        captured; restore targets a same-shaped fleet.
        """
        lanes = {}
        for name, lane in self._lanes.items():
            stream = self._streams.get(name)
            injector = self._injectors.get(name)
            lanes[name] = {
                "frontier": lane.frontier,
                "done": lane.done,
                "crashed": lane.crashed,
                "ticks_seen": lane.ticks_seen,
                "consecutive_faults": lane.consecutive_faults,
                "last_time": lane.last_time,
                "last_index": lane.last_index,
                "times": list(lane.times),
                "scores": list(lane.scores),
                "latencies": list(lane.latencies),
                "alarms": list(lane.alarms),
                "faults": list(lane.faults),
                "extractor": (
                    stream._extractor.snapshot() if stream is not None else None
                ),
                "injector": injector.snapshot() if injector is not None else None,
                "attributor": (
                    self._attributors[name].snapshot()
                    if name in self._attributors
                    else None
                ),
            }
        return {
            "lanes": lanes,
            "buckets": {
                t: [(lane.name, row) for lane, row in bucket]
                for t, bucket in self._buckets.items()
            },
            "heap": list(self._heap),
            "finalized_through": self._finalized_through,
            "fused": list(self.fused),
            "batch_sizes": list(self.batch_sizes),
            "fault_records": list(self.fault_records),
            "sealed": dict(self.sealed),
            "duplicate_seals": self.duplicate_seals,
        }

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot` taken from a same-shaped fleet.

        The same lanes must already be registered (same names, via
        ``add_stream``/``attach``/``from_session`` with the original
        knobs).  Restored alarms and faults do not re-fire hooks.
        """
        if set(state["lanes"]) != set(self._lanes):
            raise ValueError(
                "snapshot does not match this fleet's registered lanes"
            )
        for name, lane_state in state["lanes"].items():
            lane = self._lanes[name]
            lane.frontier = lane_state["frontier"]
            lane.done = lane_state["done"]
            lane.crashed = lane_state["crashed"]
            lane.ticks_seen = lane_state["ticks_seen"]
            lane.consecutive_faults = lane_state["consecutive_faults"]
            lane.last_time = lane_state["last_time"]
            lane.last_index = lane_state["last_index"]
            lane.times = list(lane_state["times"])
            lane.scores = list(lane_state["scores"])
            lane.latencies = list(lane_state["latencies"])
            lane.alarms = list(lane_state["alarms"])
            lane.faults = list(lane_state["faults"])
            stream = self._streams.get(name)
            if stream is not None and lane_state["extractor"] is not None:
                stream._extractor.restore(lane_state["extractor"])
            injector = self._injectors.get(name)
            if injector is not None and lane_state["injector"] is not None:
                injector.restore(lane_state["injector"])
            attributor = self._attributors.get(name)
            if attributor is not None and lane_state.get("attributor") is not None:
                attributor.restore(lane_state["attributor"])
        self._buckets = {
            t: [(self._lanes[name], row) for name, row in bucket]
            for t, bucket in state["buckets"].items()
        }
        self._heap = list(state["heap"])
        self._finalized_through = state["finalized_through"]
        self.fused = list(state["fused"])
        self.batch_sizes = list(state["batch_sizes"])
        self.fault_records = list(state["fault_records"])
        self.sealed = dict(state["sealed"])
        self.duplicate_seals = state["duplicate_seals"]
