"""Deterministic fault injection for the streaming layer.

Extends the batch runtime's fault mini-language
(:mod:`repro.runtime.faults`) to the stream/fleet layer: degraded *rows*
(dropped, duplicated, delayed/reordered, corrupted), *lane crashes*, and
checkpoint-file damage on restore — every fault keyed deterministically
by ``(lane, index)`` so a chaos run is exactly reproducible and a
resumed run re-applies the same faults at the same points.

Two kinds of objects live here:

* the *injected* faults — :class:`StreamFaultSpec` /
  :class:`StreamFaultPlan` describe what the harness breaks on purpose
  (the chaos source), applied by a :class:`RowFaultInjector`;
* the *observed* faults — :class:`StreamFault` records what a
  quarantine-mode detector actually caught (late / duplicate / NaN /
  out-of-range rows), whether injected or organic.

Mini-language (comma-separated clauses, mirroring ``--inject-faults``)::

    drop-row:s0/n1:3        # lane "s0/n1" silently loses emitted row 3
    dup-row:s0/n1:4         # row 4 is delivered twice
    delay-row:*:2           # any lane's row 2 arrives after row 3
    corrupt-row:s0/n2:5     # row 5's first feature becomes NaN
    crash-lane:s0/n2:6      # the lane goes permanently silent at tick 6
    ckpt-corrupt:0          # damage the checkpoint file at restore 0
    ckpt-truncate:1         # truncate the checkpoint file at restore 1

Row faults are keyed by the emitted :class:`WindowRow` index; lane
crashes by the lane's sampling-tick ordinal; checkpoint faults by the
restore ordinal.  The lane field accepts ``*`` as a wildcard.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

import numpy as np

from repro.stream.extractor import WindowRow

#: Row-level injected fault kinds.
ROW_KINDS = ("drop-row", "dup-row", "delay-row", "corrupt-row")

#: Lane-level injected fault kinds.
LANE_KINDS = ("crash-lane",)

#: Checkpoint-file injected fault kinds (applied on restore).
CKPT_KINDS = ("ckpt-corrupt", "ckpt-truncate")

#: Typed quarantine verdicts a ``row_policy="quarantine"`` detector can
#: record (plus the seal reasons ``"crashed"`` carried on lane seals).
FAULT_KINDS = ("late", "duplicate", "nan", "out_of_range")


@dataclass(frozen=True)
class StreamFault:
    """One degraded row (or lane event) a detector caught and quarantined.

    ``kind`` is one of :data:`FAULT_KINDS`; ``index``/``time`` locate the
    offending row, ``detail`` carries the human-readable reason.
    """

    stream: str
    kind: str
    index: int
    time: float
    detail: str = ""


@dataclass(frozen=True)
class StreamFaultSpec:
    """One injected stream fault: what breaks, on which lane, and when."""

    kind: str
    lane: str = "*"
    index: int = 0

    def __post_init__(self):
        if self.kind not in ROW_KINDS + LANE_KINDS + CKPT_KINDS:
            raise ValueError(f"unknown stream-fault kind {self.kind!r}")
        if not isinstance(self.index, int) or isinstance(self.index, bool) \
                or self.index < 0:
            raise ValueError(f"fault index must be an int >= 0, got {self.index!r}")
        if self.kind in CKPT_KINDS and self.lane != "*":
            raise ValueError(
                f"{self.kind} faults are keyed by restore ordinal only, "
                f"got lane {self.lane!r}"
            )

    def matches_lane(self, lane: str) -> bool:
        """Whether this spec applies to the named lane."""
        return self.lane == "*" or self.lane == lane


@dataclass(frozen=True)
class StreamFaultPlan:
    """A deterministic set of injected stream faults.

    Empty plans are falsy, so ``if plan:`` gates the injection path.
    """

    specs: tuple[StreamFaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------
    def row_fault(self, lane: str, index: int) -> StreamFaultSpec | None:
        """The row fault (if any) injected at ``(lane, index)``."""
        for spec in self.specs:
            if spec.kind in ROW_KINDS and spec.index == index \
                    and spec.matches_lane(lane):
                return spec
        return None

    def lane_crash(self, lane: str, tick: int) -> bool:
        """Whether the lane has crashed by its ``tick``-th sampling tick."""
        return any(
            spec.kind == "crash-lane" and tick >= spec.index
            and spec.matches_lane(lane)
            for spec in self.specs
        )

    def checkpoint_fault(self, ordinal: int) -> StreamFaultSpec | None:
        """The checkpoint-file fault (if any) for the ``ordinal``-th restore."""
        for spec in self.specs:
            if spec.kind in CKPT_KINDS and spec.index == ordinal:
                return spec
        return None

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "StreamFaultPlan":
        """Parse the mini-language (see the module docstring)."""
        specs = []
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            bits = clause.split(":")
            try:
                if bits[0] in CKPT_KINDS:
                    if len(bits) != 2:
                        raise ValueError(clause)
                    specs.append(StreamFaultSpec(kind=bits[0], index=int(bits[1])))
                else:
                    if len(bits) != 3:
                        raise ValueError(clause)
                    specs.append(
                        StreamFaultSpec(kind=bits[0], lane=bits[1], index=int(bits[2]))
                    )
            except (ValueError, IndexError) as exc:
                raise ValueError(
                    f"malformed stream-fault clause {clause!r} "
                    f"(expected kind:lane:index or ckpt-kind:ordinal)"
                ) from exc
        return cls(specs=tuple(specs))

    @classmethod
    def random(
        cls,
        seed: int,
        lanes: tuple[str, ...],
        n_rows: int,
        kinds: tuple[str, ...] = ROW_KINDS + LANE_KINDS,
        count: int = 4,
    ) -> "StreamFaultPlan":
        """A reproducible random plan over the given lanes and row range."""
        import random as _random

        rng = _random.Random(seed)
        specs = tuple(
            StreamFaultSpec(
                kind=rng.choice(kinds),
                lane=rng.choice(lanes),
                index=rng.randrange(max(1, n_rows)),
            )
            for _ in range(count)
        )
        return cls(specs=specs)


def corrupt_row(row: WindowRow) -> WindowRow:
    """The deterministic ``corrupt-row`` transform: feature 0 becomes NaN."""
    features = row.features.copy()
    features[0] = np.nan
    return replace(row, features=features)


def apply_checkpoint_fault(path: str | Path, spec: StreamFaultSpec) -> None:
    """Damage a checkpoint file the way ``spec`` prescribes.

    ``ckpt-corrupt`` flips the trailing body bytes (the fingerprint check
    must catch it); ``ckpt-truncate`` cuts the file in half (a torn
    write the atomic rename should normally prevent).
    """
    path = Path(path)
    data = path.read_bytes()
    if spec.kind == "ckpt-corrupt":
        tail = bytes(b ^ 0xFF for b in data[-8:])
        path.write_bytes(data[:-8] + tail)
    elif spec.kind == "ckpt-truncate":
        path.write_bytes(data[: len(data) // 2])
    else:
        raise ValueError(f"not a checkpoint fault: {spec.kind!r}")


class RowFaultInjector:
    """Applies a plan's row faults to one lane's row deliveries.

    Sits between a :class:`~repro.stream.extractor.StreamingExtractor`'s
    ``on_row`` and the detector: transforms each emitted row per the
    plan (drop / duplicate / delay / corrupt), and swallows everything
    once the lane's crash point is reached.  Stateful (the held delayed
    row, the crashed flag), and checkpointable via :meth:`snapshot` /
    :meth:`restore` so faults replay identically across a resume.
    """

    def __init__(
        self,
        plan: StreamFaultPlan,
        lane: str,
        deliver: Callable[[WindowRow], None],
        crash_on_row: bool = True,
    ):
        self.plan = plan
        self.lane = lane
        self.deliver = deliver
        #: Whether ``crash-lane`` specs key on the emitted row index here
        #: (single-stream use).  Fleet lanes key crashes on the sampling
        #: tick instead and set ``crashed`` from the tap.
        self.crash_on_row = crash_on_row
        self.crashed = False
        self._held: WindowRow | None = None

    def __call__(self, row: WindowRow) -> None:
        """Deliver one emitted row through the fault plan."""
        if self.crashed or (
            self.crash_on_row and self.plan.lane_crash(self.lane, row.index)
        ):
            self.crashed = True
            self._held = None
            return
        spec = self.plan.row_fault(self.lane, row.index)
        kind = spec.kind if spec is not None else None
        if kind == "delay-row":
            # Swap with the next delivery: this row arrives late.
            held, self._held = self._held, row
            if held is not None:
                self.deliver(held)
            return
        if kind == "corrupt-row":
            row = corrupt_row(row)
        if kind != "drop-row":
            self.deliver(row)
            if kind == "dup-row":
                self.deliver(row)
        held, self._held = self._held, None
        if held is not None:
            self.deliver(held)

    def flush(self) -> None:
        """End of stream: release a still-held delayed row."""
        held, self._held = self._held, None
        if held is not None and not self.crashed:
            self.deliver(held)

    def snapshot(self) -> dict:
        """The injector's mutable state (for checkpoints)."""
        return {"crashed": self.crashed, "held": self._held}

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot`."""
        self.crashed = state["crashed"]
        self._held = state["held"]
