"""Incremental per-stream window state — the streaming extractor's core.

Each ring holds one event-time stream (one Table 5 ``(packet type,
direction)`` combo, one Table 4 route-event kind, or the route-length
samples) and answers the same window queries the batch extractor computes
with :func:`numpy.searchsorted` over the completed trace — **bit-identically**.

The identity argument, operation by operation:

* the batch inter-packet-interval statistics are prefix sums:
  ``s1 = cumsum(diff(times))`` and ``s2 = cumsum(diff(times)**2)``.
  ``numpy.cumsum`` over a 1-D float64 array is a *sequential*
  left-to-right accumulation, so a running Python-float accumulator
  (``s += d``; ``s2 += d * d`` with ``d = t - last_t``) performs the
  exact same IEEE-754 additions in the exact same order and lands on the
  same bits.  Each ring therefore stores, alongside every retained event
  time, the value the global prefix sum had *at that event's index*;
* a window query then evaluates ``s1[hi-1] - s1[lo]`` etc. with plain
  float subtraction/division — the same scalar operations numpy applies
  elementwise in the batch path (``math.sqrt`` and ``numpy.sqrt`` are
  both correctly rounded);
* counts are pure ``bisect`` index arithmetic — no floating point at all;
* events at equal times may arrive in a different order than the batch
  path's per-type concatenation + mergesort produces, but equal-valued
  entries are interchangeable: the merged *value sequence* is identical,
  hence so are the diffs.

Memory stays bounded: once the clock passes a window end ``t``, no later
query can reach events at or before ``t - max_period``, so they are
evicted (their contribution lives on in the running prefix values).
Amortised cost is O(1) per event and O(log window) per query.
"""

from __future__ import annotations

from bisect import bisect_right

from math import sqrt

#: Compact the backing lists when at least this many evicted slots have
#: accumulated (and they outnumber the live entries).
_COMPACT_THRESHOLD = 256


class EventRing:
    """One event-time stream with O(1) pushes and windowed count/IAT-std.

    Parameters
    ----------
    max_period:
        The largest sampling period any query will use; events older than
        ``newest query time - max_period`` are evicted.
    """

    __slots__ = ("max_period", "_times", "_s1", "_s2", "_head", "_evicted",
                 "_n", "_last_time", "_s1_last", "_s2_last")

    def __init__(self, max_period: float):
        self.max_period = float(max_period)
        self._times: list[float] = []   # retained event times
        self._s1: list[float] = []      # global diff-prefix value at each index
        self._s2: list[float] = []      # global squared-diff prefix value
        self._head = 0                  # first live slot in the backing lists
        self._evicted = 0               # events dropped off the front (global)
        self._n = 0                     # total events ever pushed
        self._last_time = 0.0
        self._s1_last = 0.0             # prefix values at index _n - 1
        self._s2_last = 0.0

    def __len__(self) -> int:
        return self._n

    def push(self, t: float) -> None:
        """Append one event (times must be non-decreasing)."""
        t = float(t)
        if self._n == 0:
            s1v = s2v = 0.0
        else:
            if t < self._last_time:
                raise ValueError(
                    f"event time {t} precedes previous event {self._last_time}"
                )
            # Same float ops, same order as diff -> cumsum in the batch path.
            d = t - self._last_time
            s1v = self._s1_last + d
            s2v = self._s2_last + d * d
        self._times.append(t)
        self._s1.append(s1v)
        self._s2.append(s2v)
        self._last_time = t
        self._s1_last = s1v
        self._s2_last = s2v
        self._n += 1

    # ------------------------------------------------------------------
    # Window queries (window = half-open interval (tick - period, tick])
    # ------------------------------------------------------------------
    def _lo(self, tick: float, period: float) -> int:
        """Global index of the first event inside the window."""
        # Matches searchsorted(times, tick - period, side="right"): the
        # threshold subtraction is the identical float64 operation.
        # bisect returns a *list* position; evicted-but-uncompacted slots
        # before _head are already counted in _evicted, so convert via
        # (global index) = (list position) - _head + _evicted.
        return self._evicted - self._head + bisect_right(
            self._times, tick - period, self._head
        )

    def count(self, tick: float, period: float) -> float:
        """Event count in the window, as the batch path's float."""
        # hi == _n: every pushed event has time <= tick by the time a
        # window ending at `tick` is finalised (the extractor guarantees
        # ingest order), so searchsorted(times, tick, "right") == len.
        return float(self._n - self._lo(tick, period))

    def iat_std(self, tick: float, period: float) -> float:
        """Std of inter-packet intervals fully inside the window.

        Bit-identical to the batch ``_window_iat_std`` cell: windows with
        fewer than two whole intervals yield 0.0.
        """
        lo = self._lo(tick, period)
        n_int = self._n - 1 - lo
        if n_int < 2:
            return 0.0
        j = lo - self._evicted + self._head
        total = self._s1_last - self._s1[j]
        total_sq = self._s2_last - self._s2[j]
        k = float(n_int)
        mean = total / k
        var = total_sq / k - mean * mean
        if var < 0.0:
            var = 0.0
        return sqrt(var)

    # ------------------------------------------------------------------
    def evict_before(self, tick: float) -> None:
        """Drop events no future window ending at ``>= tick`` can reach."""
        threshold = tick - self.max_period
        head, times = self._head, self._times
        end = len(times)
        while head < end and times[head] <= threshold:
            head += 1
        self._evicted += head - self._head
        self._head = head
        if head >= _COMPACT_THRESHOLD and head * 2 >= len(times):
            del self._times[:head]
            del self._s1[:head]
            del self._s2[:head]
            self._head = 0

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full ring state as plain Python values (checkpointable)."""
        return {
            "max_period": self.max_period,
            "times": list(self._times),
            "s1": list(self._s1),
            "s2": list(self._s2),
            "head": self._head,
            "evicted": self._evicted,
            "n": self._n,
            "last_time": self._last_time,
            "s1_last": self._s1_last,
            "s2_last": self._s2_last,
        }

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot`, replacing all current state."""
        self.max_period = state["max_period"]
        self._times = list(state["times"])
        self._s1 = list(state["s1"])
        self._s2 = list(state["s2"])
        self._head = state["head"]
        self._evicted = state["evicted"]
        self._n = state["n"]
        self._last_time = state["last_time"]
        self._s1_last = state["s1_last"]
        self._s2_last = state["s2_last"]


class RouteLengthRing:
    """Windowed mean hop count with the batch path's carry-forward.

    Mirrors the ``average_route_length`` column of
    :func:`repro.features.topology.topology_features`: a running float
    prefix over the hop counts (identical to the batch ``cumsum``), a
    per-window ``(prefix[hi] - prefix[lo]) / count`` mean, and the
    previous window's value carried into sample-free windows.
    """

    __slots__ = ("max_period", "_times", "_prefix", "_head", "_evicted",
                 "_n", "_prefix_last", "_evicted_prefix", "_carry")

    def __init__(self, max_period: float):
        self.max_period = float(max_period)
        self._times: list[float] = []
        self._prefix: list[float] = []  # prefix value *after* each sample
        self._head = 0
        self._evicted = 0
        self._n = 0
        self._prefix_last = 0.0
        self._evicted_prefix = 0.0      # prefix value after the last evicted sample
        self._carry = 0.0               # previous window's average (starts at 0)

    def push(self, t: float, hops: int) -> None:
        """Append one (time, hop count) route-use sample."""
        t = float(t)
        if self._n and t < self._times[-1]:
            raise ValueError(
                f"sample time {t} precedes previous sample {self._times[-1]}"
            )
        self._prefix_last = self._prefix_last + float(hops)
        self._times.append(t)
        self._prefix.append(self._prefix_last)
        self._n += 1

    def average(self, tick: float, period: float) -> float:
        """Mean hop count in the window; carries forward when empty."""
        lo = self._evicted - self._head + bisect_right(
            self._times, tick - period, self._head
        )
        count = self._n - lo
        if count > 0:
            if lo == self._evicted:
                prefix_lo = self._evicted_prefix
            else:
                prefix_lo = self._prefix[lo - 1 - self._evicted + self._head]
            self._carry = (self._prefix_last - prefix_lo) / count
        return self._carry

    def evict_before(self, tick: float) -> None:
        """Drop samples older than any future window can reach."""
        threshold = tick - self.max_period
        head, times = self._head, self._times
        end = len(times)
        while head < end and times[head] <= threshold:
            head += 1
        if head > self._head:
            self._evicted += head - self._head
            self._evicted_prefix = self._prefix[head - 1]
            self._head = head
        if head >= _COMPACT_THRESHOLD and head * 2 >= len(times):
            del self._times[:head]
            del self._prefix[:head]
            self._head = 0

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full ring state as plain Python values (checkpointable)."""
        return {
            "max_period": self.max_period,
            "times": list(self._times),
            "prefix": list(self._prefix),
            "head": self._head,
            "evicted": self._evicted,
            "n": self._n,
            "prefix_last": self._prefix_last,
            "evicted_prefix": self._evicted_prefix,
            "carry": self._carry,
        }

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot`, replacing all current state."""
        self.max_period = state["max_period"]
        self._times = list(state["times"])
        self._prefix = list(state["prefix"])
        self._head = state["head"]
        self._evicted = state["evicted"]
        self._n = state["n"]
        self._prefix_last = state["prefix_last"]
        self._evicted_prefix = state["evicted_prefix"]
        self._carry = state["carry"]
