"""Online anomaly detection over streamed feature windows.

An :class:`OnlineDetector` wraps a trained
:class:`~repro.core.model.CrossFeatureModel` plus a decision threshold
and consumes :class:`~repro.stream.extractor.WindowRow` events as windows
close, emitting a typed :class:`Alarm` the moment a window's normality
score falls below the threshold — the deployment posture the paper
frames (an IDS watching a live node), instead of scoring a finished
trace after the fact.

Scoring one row at a time is bit-identical to scoring the batch matrix:
every step of :meth:`CrossFeatureModel.normality_score` — discretizer
transform, sub-model tree walk, per-row probability lookup and the
per-row mean / geometric pooling — treats rows independently, so the
``(1, L)`` slice reproduces the batch row's bits.  The streaming test
suite asserts this end to end.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.model import CrossFeatureDetector, CrossFeatureModel
from repro.stream.extractor import WindowRow


@dataclass(frozen=True)
class Alarm:
    """One anomaly alarm raised by the online detector.

    ``latency_s`` is the wall-clock cost of scoring the window — the
    delay between the window closing (row delivery) and the alarm being
    available to act on.
    """

    index: int          #: emitted-window index at the monitor
    time: float         #: window end, simulation seconds
    score: float        #: normality score (higher = more normal)
    threshold: float    #: decision threshold in force
    monitor: int        #: observed node
    latency_s: float    #: wall-clock seconds from window close to alarm
    stream: str = ""    #: fleet lane name ("" outside fleet detection)


@dataclass
class StreamResult:
    """Everything one streaming run produced.

    ``labels`` is the post-hoc ground truth per emitted window (empty for
    live deployments without it); latency statistics cover *every* scored
    window, alarmed or not.
    """

    monitor: int
    threshold: float
    method: str
    times: np.ndarray
    scores: np.ndarray
    labels: np.ndarray
    alarms: list[Alarm]
    windows: int
    elapsed_s: float
    mean_latency_s: float
    max_latency_s: float

    @property
    def windows_per_second(self) -> float:
        """Detection throughput (scored windows per wall-clock second)."""
        return self.windows / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def recall_precision(self) -> tuple[float, float]:
        """Operating point of the emitted alarms against ``labels``.

        Requires ground truth with at least one intrusion window (raises
        :class:`ValueError` otherwise, like the batch metrics).
        """
        from repro.eval.metrics import recall_precision_at

        return recall_precision_at(self.scores, self.labels, self.threshold)

    def summary(self) -> str:
        """One-line human-readable digest (the CLI prints this)."""
        return (
            f"{self.windows} windows scored, {len(self.alarms)} alarms, "
            f"{self.windows_per_second:.0f} windows/s, "
            f"latency mean {self.mean_latency_s * 1e3:.2f}ms / "
            f"max {self.max_latency_s * 1e3:.2f}ms"
        )


class OnlineDetector:
    """Consume closed windows, score them, raise alarms.

    Parameters
    ----------
    model:
        A *trained* (and, for ``calibrated_probability``, calibrated)
        :class:`CrossFeatureModel`.
    threshold:
        Decision threshold: alarm iff ``score < threshold`` (the batch
        detector's rule).
    method:
        Scoring rule, as in :meth:`CrossFeatureModel.normality_score`.
    monitor:
        Node id stamped on emitted alarms.
    on_alarm:
        Callback invoked with each :class:`Alarm` as it fires.
    """

    def __init__(
        self,
        model: CrossFeatureModel,
        threshold: float,
        method: str = "avg_probability",
        monitor: int = 0,
        on_alarm: Callable[[Alarm], None] | None = None,
    ):
        if model.discretizer is None:
            raise ValueError("model must be fitted before online detection")
        self.model = model
        self.threshold = float(threshold)
        self.method = method
        self.monitor = monitor
        self.on_alarm = on_alarm
        self.times: list[float] = []
        self.scores: list[float] = []
        self.latencies: list[float] = []
        self.alarms: list[Alarm] = []

    @classmethod
    def from_detector(
        cls,
        detector: CrossFeatureDetector,
        threshold: float | None = None,
        monitor: int = 0,
        on_alarm: Callable[[Alarm], None] | None = None,
    ) -> "OnlineDetector":
        """Wrap a fitted batch :class:`CrossFeatureDetector` unchanged.

        ``threshold=None`` adopts the detector's calibrated
        ``threshold_`` — the shared construction rule documented in
        :mod:`repro.stream.config`.
        """
        from repro.stream.config import resolve_threshold

        if detector.threshold_ is None and threshold is None:
            raise ValueError("detector must be fitted before online detection")
        return cls(
            model=detector.model,
            threshold=resolve_threshold(detector, threshold),
            method=detector.method,
            monitor=monitor,
            on_alarm=on_alarm,
        )

    # ------------------------------------------------------------------
    @property
    def windows(self) -> int:
        """Windows scored so far."""
        return len(self.scores)

    def consume(self, row: WindowRow) -> Alarm | None:
        """Score one closed window; return the alarm if one fires.

        Wire this as the :class:`StreamingExtractor`'s ``on_row`` hook.
        """
        t0 = _time.perf_counter()
        score = float(
            self.model.normality_score(row.features[None, :], self.method)[0]
        )
        latency = _time.perf_counter() - t0
        self.times.append(row.time)
        self.scores.append(score)
        self.latencies.append(latency)
        if score < self.threshold:
            alarm = Alarm(
                index=row.index,
                time=row.time,
                score=score,
                threshold=self.threshold,
                monitor=self.monitor,
                latency_s=latency,
            )
            self.alarms.append(alarm)
            if self.on_alarm is not None:
                self.on_alarm(alarm)
            return alarm
        return None

    def result(
        self,
        labels: np.ndarray | None = None,
        elapsed_s: float = 0.0,
    ) -> StreamResult:
        """Freeze the run into a :class:`StreamResult`."""
        latencies = np.asarray(self.latencies, dtype=float)
        return StreamResult(
            monitor=self.monitor,
            threshold=self.threshold,
            method=self.method,
            times=np.asarray(self.times, dtype=float),
            scores=np.asarray(self.scores, dtype=float),
            labels=(
                np.asarray(labels, dtype=bool)
                if labels is not None
                else np.zeros(len(self.scores), dtype=bool)
            ),
            alarms=list(self.alarms),
            windows=len(self.scores),
            elapsed_s=elapsed_s,
            mean_latency_s=float(latencies.mean()) if len(latencies) else 0.0,
            max_latency_s=float(latencies.max()) if len(latencies) else 0.0,
        )
