"""Online anomaly detection over streamed feature windows.

An :class:`OnlineDetector` wraps a trained
:class:`~repro.core.model.CrossFeatureModel` plus a decision threshold
and consumes :class:`~repro.stream.extractor.WindowRow` events as windows
close, emitting a typed :class:`Alarm` the moment a window's normality
score falls below the threshold — the deployment posture the paper
frames (an IDS watching a live node), instead of scoring a finished
trace after the fact.

Scoring one row at a time is bit-identical to scoring the batch matrix:
every step of :meth:`CrossFeatureModel.normality_score` — discretizer
transform, sub-model tree walk, per-row probability lookup and the
per-row mean / geometric pooling — treats rows independently, so the
``(1, L)`` slice reproduces the batch row's bits.  The streaming test
suite asserts this end to end.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.attribution import AlarmAttributor, Verdict, resolve_attributor
from repro.core.model import CrossFeatureDetector, CrossFeatureModel
from repro.stream.config import (
    DEFAULT_ATTRIBUTION,
    DEFAULT_ROW_POLICY,
    validate_row_policy,
)
from repro.stream.extractor import WindowRow
from repro.stream.faults import StreamFault


@dataclass(frozen=True)
class Alarm:
    """One anomaly alarm raised by the online detector.

    ``latency_s`` is the wall-clock cost of scoring the window — the
    delay between the window closing (row delivery) and the alarm being
    available to act on.  ``verdict`` is the typed attribution verdict
    (None unless the detector was built with ``attribution``).
    """

    index: int          #: emitted-window index at the monitor
    time: float         #: window end, simulation seconds
    score: float        #: normality score (higher = more normal)
    threshold: float    #: decision threshold in force
    monitor: int        #: observed node
    latency_s: float    #: wall-clock seconds from window close to alarm
    stream: str = ""    #: fleet lane name ("" outside fleet detection)
    verdict: Verdict | None = None  #: typed attribution verdict


@dataclass
class StreamResult:
    """Everything one streaming run produced.

    ``labels`` is the post-hoc ground truth per emitted window (empty for
    live deployments without it); latency statistics cover *every* scored
    window, alarmed or not.
    """

    monitor: int
    threshold: float
    method: str
    times: np.ndarray
    scores: np.ndarray
    labels: np.ndarray
    alarms: list[Alarm]
    windows: int
    elapsed_s: float
    mean_latency_s: float
    max_latency_s: float

    @property
    def windows_per_second(self) -> float:
        """Detection throughput (scored windows per wall-clock second)."""
        return self.windows / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def recall_precision(self) -> tuple[float, float]:
        """Operating point of the emitted alarms against ``labels``.

        Requires ground truth with at least one intrusion window (raises
        :class:`ValueError` otherwise, like the batch metrics).
        """
        from repro.eval.metrics import recall_precision_at

        return recall_precision_at(self.scores, self.labels, self.threshold)

    def summary(self) -> str:
        """One-line human-readable digest (the CLI prints this)."""
        return (
            f"{self.windows} windows scored, {len(self.alarms)} alarms, "
            f"{self.windows_per_second:.0f} windows/s, "
            f"latency mean {self.mean_latency_s * 1e3:.2f}ms / "
            f"max {self.max_latency_s * 1e3:.2f}ms"
        )


class OnlineDetector:
    """Consume closed windows, score them, raise alarms.

    Parameters
    ----------
    model:
        A *trained* (and, for ``calibrated_probability``, calibrated)
        :class:`CrossFeatureModel`.
    threshold:
        Decision threshold: alarm iff ``score < threshold`` (the batch
        detector's rule).
    method:
        Scoring rule, as in :meth:`CrossFeatureModel.normality_score`.
    monitor:
        Node id stamped on emitted alarms.
    on_alarm:
        Callback invoked with each :class:`Alarm` as it fires.
    row_policy:
        Degraded-input policy (see :mod:`repro.stream.config`):
        ``"strict"`` trusts the extractor and scores every row as
        before; ``"quarantine"`` validates each row and routes late,
        duplicate, NaN-bearing or out-of-range ones to
        ``fault_records`` instead of scoring them.
    on_fault:
        Callback invoked with each quarantined
        :class:`~repro.stream.faults.StreamFault`.
    attribution:
        Attach typed verdicts to alarms: ``True`` builds a default
        :class:`~repro.attribution.AlarmAttributor` over this model and
        threshold, or pass a configured attributor.  Runs strictly
        after scoring — scores and alarm decisions are bit-identical
        with it on or off (``REPRO_ATTRIBUTION=0`` force-disables).
    """

    def __init__(
        self,
        model: CrossFeatureModel,
        threshold: float,
        method: str = "avg_probability",
        monitor: int = 0,
        on_alarm: Callable[[Alarm], None] | None = None,
        row_policy: str = DEFAULT_ROW_POLICY,
        on_fault: Callable[[StreamFault], None] | None = None,
        attribution: AlarmAttributor | bool = DEFAULT_ATTRIBUTION,
    ):
        if model.discretizer is None:
            raise ValueError("model must be fitted before online detection")
        self.model = model
        self.threshold = float(threshold)
        self.method = method
        self.monitor = monitor
        self.on_alarm = on_alarm
        self.row_policy = validate_row_policy(row_policy)
        self.on_fault = on_fault
        self.attribution = resolve_attributor(model, self.threshold, attribution)
        self.times: list[float] = []
        self.scores: list[float] = []
        self.latencies: list[float] = []
        self.alarms: list[Alarm] = []
        self.fault_records: list[StreamFault] = []
        self._last_index = -1

    @classmethod
    def from_detector(
        cls,
        detector: CrossFeatureDetector,
        threshold: float | None = None,
        monitor: int = 0,
        on_alarm: Callable[[Alarm], None] | None = None,
        row_policy: str = DEFAULT_ROW_POLICY,
        on_fault: Callable[[StreamFault], None] | None = None,
        attribution: AlarmAttributor | bool = DEFAULT_ATTRIBUTION,
    ) -> "OnlineDetector":
        """Wrap a fitted batch :class:`CrossFeatureDetector` unchanged.

        ``threshold=None`` adopts the detector's calibrated
        ``threshold_`` — the shared construction rule documented in
        :mod:`repro.stream.config`.
        """
        from repro.stream.config import resolve_threshold

        if detector.threshold_ is None and threshold is None:
            raise ValueError("detector must be fitted before online detection")
        return cls(
            model=detector.model,
            threshold=resolve_threshold(detector, threshold),
            method=detector.method,
            monitor=monitor,
            on_alarm=on_alarm,
            row_policy=row_policy,
            on_fault=on_fault,
            attribution=attribution,
        )

    # ------------------------------------------------------------------
    @property
    def windows(self) -> int:
        """Windows scored so far."""
        return len(self.scores)

    @property
    def quarantined(self) -> int:
        """Degraded rows quarantined so far (always 0 under ``strict``)."""
        return len(self.fault_records)

    def _classify_row(self, row: WindowRow) -> tuple[str, str] | None:
        """The quarantine verdict for a degraded row, or ``None`` if clean."""
        if np.isnan(row.features).any():
            return "nan", "row carries NaN features"
        if np.isinf(row.features).any():
            return "out_of_range", "row carries non-finite features"
        if not np.isfinite(row.time) or row.time < 0:
            return "out_of_range", f"window time {row.time} is not a valid instant"
        if self.times:
            if row.time == self.times[-1] and row.index <= self._last_index:
                return "duplicate", f"window at {row.time} was already scored"
            if row.time < self.times[-1]:
                return "late", (
                    f"window at {row.time} arrived after one at {self.times[-1]}"
                )
        return None

    def _quarantine(self, row: WindowRow, kind: str, detail: str) -> StreamFault:
        """Record one quarantined row and notify the hook."""
        fault = StreamFault(
            stream="", kind=kind, index=row.index, time=row.time, detail=detail
        )
        self.fault_records.append(fault)
        if self.on_fault is not None:
            self.on_fault(fault)
        return fault

    def consume(self, row: WindowRow) -> Alarm | None:
        """Score one closed window; return the alarm if one fires.

        Wire this as the :class:`StreamingExtractor`'s ``on_row`` hook.
        Under ``row_policy="quarantine"`` a degraded row is recorded on
        ``fault_records`` and *not* scored (returns ``None``).
        """
        if self.row_policy == "quarantine":
            verdict = self._classify_row(row)
            if verdict is not None:
                self._quarantine(row, *verdict)
                return None
        t0 = _time.perf_counter()
        score = float(
            self.model.normality_score(row.features[None, :], self.method)[0]
        )
        latency = _time.perf_counter() - t0
        self.times.append(row.time)
        self.scores.append(score)
        self.latencies.append(latency)
        self._last_index = row.index
        alarming = score < self.threshold
        verdict = None
        if self.attribution is not None:
            # Attribution reads the score and row, never the reverse:
            # the alarm decision above is already final.
            verdict = self.attribution.attribute(
                row.time, score, row.features, alarming
            )
        if alarming:
            alarm = Alarm(
                index=row.index,
                time=row.time,
                score=score,
                threshold=self.threshold,
                monitor=self.monitor,
                latency_s=latency,
                verdict=verdict,
            )
            self.alarms.append(alarm)
            if self.on_alarm is not None:
                self.on_alarm(alarm)
            return alarm
        return None

    def result(
        self,
        labels: np.ndarray | None = None,
        elapsed_s: float = 0.0,
    ) -> StreamResult:
        """Freeze the run into a :class:`StreamResult`."""
        latencies = np.asarray(self.latencies, dtype=float)
        return StreamResult(
            monitor=self.monitor,
            threshold=self.threshold,
            method=self.method,
            times=np.asarray(self.times, dtype=float),
            scores=np.asarray(self.scores, dtype=float),
            labels=(
                np.asarray(labels, dtype=bool)
                if labels is not None
                else np.zeros(len(self.scores), dtype=bool)
            ),
            alarms=list(self.alarms),
            windows=len(self.scores),
            elapsed_s=elapsed_s,
            mean_latency_s=float(latencies.mean()) if len(latencies) else 0.0,
            max_latency_s=float(latencies.max()) if len(latencies) else 0.0,
        )

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The detector's mutable run state (scores, alarms, quarantine).

        The model/threshold/method construction knobs are not captured;
        restore targets a detector built over the same trained model.
        """
        state = {
            "times": list(self.times),
            "scores": list(self.scores),
            "latencies": list(self.latencies),
            "alarms": list(self.alarms),
            "fault_records": list(self.fault_records),
            "last_index": self._last_index,
        }
        if self.attribution is not None:
            state["attribution"] = self.attribution.snapshot()
        return state

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot`, replacing all current run state.

        Restored alarms and faults do *not* re-fire the ``on_alarm`` /
        ``on_fault`` hooks — they already fired in the original run.
        Attribution state (CUSUM statistic, blame/residual history)
        restores when both sides have attribution; a snapshot from a
        plain run leaves a fresh attributor empty.
        """
        self.times = list(state["times"])
        self.scores = list(state["scores"])
        self.latencies = list(state["latencies"])
        self.alarms = list(state["alarms"])
        self.fault_records = list(state["fault_records"])
        self._last_index = state["last_index"]
        if self.attribution is not None and state.get("attribution") is not None:
            self.attribution.restore(state["attribution"])
