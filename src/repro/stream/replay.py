"""Replay a recorded trace through window taps.

A completed :class:`~repro.simulation.scenario.SimulationTrace` holds the
monitor's full event log; :func:`replay_trace` feeds it to a tap in the
exact order the live scenario would have — events in time order, each
sampling tick after the events sharing its timestamp (the paper's windows
are ``(t - period, t]``, closed on the right) and before anything later.
Streamed output is therefore bit-identical whether the tap rode the live
run or a replay of its trace.

Uses: regression-test streamed pipelines against cached traces without
re-simulating, and benchmark detection throughput on a fixed workload.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.simulation.packet import Direction, PacketType
from repro.simulation.scenario import SimulationTrace
from repro.simulation.stats import RouteEventKind

#: Tie-break ranks: at one timestamp, events precede the tick.
_EVENT, _TICK = 0, 1


def _event_feed(trace: SimulationTrace, monitor: int) -> Iterator[tuple]:
    """All monitor-local events as (time, rank, seq, kind, payload).

    Feeds are materialised eagerly (each source list is already sorted);
    the per-feed ``seq`` keeps the merge total-ordered and deterministic.
    """
    stats = trace.recorder[monitor]
    feeds: list[Iterable[tuple]] = []
    seq = 0
    for (pt, dr), times in stats.packet_times.items():
        payload = (PacketType(pt), Direction(dr))
        feeds.append(
            [(t, _EVENT, seq + i, "packet", payload) for i, t in enumerate(times)]
        )
        seq += len(times)
    for kind, times in stats.route_times.items():
        route_kind = RouteEventKind(kind)
        feeds.append(
            [(t, _EVENT, seq + i, "route", route_kind) for i, t in enumerate(times)]
        )
        seq += len(times)
    feeds.append(
        [
            (t, _EVENT, seq + i, "length", hops)
            for i, (t, hops) in enumerate(stats.route_length_samples)
        ]
    )
    return heapq.merge(*feeds)


def replay_trace(trace: SimulationTrace, tap) -> None:
    """Drive one window tap with a recorded trace, live-order faithful.

    ``tap`` follows the scenario tap protocol (``monitor``, ``on_tick``,
    ``finish`` and the ``NodeStats`` listener methods); it is fed
    directly — no ``bind`` — so the same tap class serves both live runs
    and replays.
    """
    monitor = tap.monitor
    if not 0 <= monitor < trace.n_nodes:
        raise ValueError(f"tap monitor {monitor} out of range")
    ticks = [
        (t, _TICK, i, "tick", speeds[monitor])
        for i, (t, speeds) in enumerate(zip(trace.tick_times, trace.speeds))
    ]
    for time, _rank, _seq, kind, payload in heapq.merge(
        _event_feed(trace, monitor), ticks
    ):
        if kind == "packet":
            tap.on_packet(time, *payload)
        elif kind == "route":
            tap.on_route_event(time, payload)
        elif kind == "length":
            tap.on_route_length(time, payload)
        else:
            tap.on_tick(time, payload)
    tap.finish()
