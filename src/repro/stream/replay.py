"""Replay a recorded trace through window taps.

A completed :class:`~repro.simulation.scenario.SimulationTrace` holds the
monitor's full event log; :func:`replay_trace` feeds it to a tap in the
exact order the live scenario would have — events in time order, each
sampling tick after the events sharing its timestamp (the paper's windows
are ``(t - period, t]``, closed on the right) and before anything later.
Streamed output is therefore bit-identical whether the tap rode the live
run or a replay of its trace.

Uses: regression-test streamed pipelines against cached traces without
re-simulating, benchmark detection throughput on a fixed workload, and —
because the merged dispatch order is *deterministic* (each source list
is insertion-ordered and the merge is total-ordered by ``(time, rank,
seq)``) — anchor the durable-run resume contract: a position counted in
dispatched merge items means the same thing in every replay of the same
trace, so :mod:`repro.stream.durability` can checkpoint "N items in" and
skip exactly N on resume.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator

from repro.simulation.packet import Direction, PacketType
from repro.simulation.scenario import SimulationTrace
from repro.simulation.stats import RouteEventKind

#: Tie-break ranks: at one timestamp, events precede the tick.
_EVENT, _TICK = 0, 1


def _event_feed(trace: SimulationTrace, monitor: int) -> Iterator[tuple]:
    """All monitor-local events as (time, rank, seq, kind, payload).

    Feeds are materialised eagerly (each source list is already sorted);
    the per-feed ``seq`` keeps the merge total-ordered and deterministic.
    """
    stats = trace.recorder[monitor]
    feeds: list[Iterable[tuple]] = []
    seq = 0
    for (pt, dr), times in stats.packet_times.items():
        payload = (PacketType(pt), Direction(dr))
        feeds.append(
            [(t, _EVENT, seq + i, "packet", payload) for i, t in enumerate(times)]
        )
        seq += len(times)
    for kind, times in stats.route_times.items():
        route_kind = RouteEventKind(kind)
        feeds.append(
            [(t, _EVENT, seq + i, "route", route_kind) for i, t in enumerate(times)]
        )
        seq += len(times)
    feeds.append(
        [
            (t, _EVENT, seq + i, "length", hops)
            for i, (t, hops) in enumerate(stats.route_length_samples)
        ]
    )
    return heapq.merge(*feeds)


def replay_trace(
    trace: SimulationTrace,
    tap,
    skip: int = 0,
    on_tick: Callable[[int], None] | None = None,
) -> int:
    """Drive one window tap with a recorded trace, live-order faithful.

    ``tap`` follows the scenario tap protocol (``monitor``, ``on_tick``,
    ``finish`` and the ``NodeStats`` listener methods); it is fed
    directly — no ``bind`` — so the same tap class serves both live runs
    and replays.

    Durability hooks: ``skip`` fast-forwards past the first N merged
    items without dispatching them (resuming a checkpointed run whose
    state already reflects them); ``on_tick(position)`` fires after each
    dispatched sampling tick with the absolute merge position — a safe
    checkpoint instant, because the tick is pending in the extractor and
    nothing is half-applied.  Returns the final merge position.
    """
    monitor = tap.monitor
    if not 0 <= monitor < trace.n_nodes:
        raise ValueError(f"tap monitor {monitor} out of range")
    if skip < 0:
        raise ValueError(f"skip must be >= 0, got {skip}")
    ticks = [
        (t, _TICK, i, "tick", speeds[monitor])
        for i, (t, speeds) in enumerate(zip(trace.tick_times, trace.speeds))
    ]
    merged = heapq.merge(_event_feed(trace, monitor), ticks)
    position = 0
    while position < skip and next(merged, None) is not None:
        position += 1
    for time, _rank, _seq, kind, payload in merged:
        if kind == "packet":
            tap.on_packet(time, *payload)
        elif kind == "route":
            tap.on_route_event(time, payload)
        elif kind == "length":
            tap.on_route_length(time, payload)
        else:
            tap.on_tick(time, payload)
        position += 1
        if kind == "tick" and on_tick is not None:
            on_tick(position)
    tap.finish()
    return position


class ReplayCursor:
    """An incremental :func:`replay_trace`: one tick segment per step.

    Durable *fleet* replay needs all lanes advancing together — a lane
    replayed to completion while its peers sit at time zero would look
    stalled to the fleet's liveness policy and wedge the watermark.  A
    cursor holds one lane's merged feed open so a driver can round-robin
    them: each :meth:`step_tick` dispatches merged items up to and
    including the next sampling tick (or the end of the trace, when it
    calls ``tap.finish()`` and marks the cursor done).

    ``skip`` fast-forwards past already-applied items on resume, exactly
    as in :func:`replay_trace`; ``position`` is the same absolute merge
    position, so the two are checkpoint-compatible.
    """

    def __init__(self, trace: SimulationTrace, tap, skip: int = 0):
        monitor = tap.monitor
        if not 0 <= monitor < trace.n_nodes:
            raise ValueError(f"tap monitor {monitor} out of range")
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        self.tap = tap
        self.position = 0
        self.done = False
        ticks = [
            (t, _TICK, i, "tick", speeds[monitor])
            for i, (t, speeds) in enumerate(zip(trace.tick_times, trace.speeds))
        ]
        self._merged = heapq.merge(_event_feed(trace, monitor), ticks)
        while self.position < skip and next(self._merged, None) is not None:
            self.position += 1

    def step_tick(self) -> bool:
        """Dispatch up to (and including) the next sampling tick.

        Returns ``True`` while the trace has more to deliver; on
        exhaustion it calls ``tap.finish()`` once, marks the cursor
        ``done`` and returns ``False``.
        """
        if self.done:
            return False
        for time, _rank, _seq, kind, payload in self._merged:
            if kind == "packet":
                self.tap.on_packet(time, *payload)
            elif kind == "route":
                self.tap.on_route_event(time, payload)
            elif kind == "length":
                self.tap.on_route_length(time, payload)
            else:
                self.tap.on_tick(time, payload)
            self.position += 1
            if kind == "tick":
                return True
        self.done = True
        self.tap.finish()
        return False
