"""Durable streaming runs: checkpoint / restore with a resume contract.

A streaming run is long-lived by design — the paper's deployment story
is an IDS agent that watches a node for hours.  This module makes such
runs *kill-anywhere durable*: the full mutable state of the streaming
pipeline (extractor rings and pending tick, detector verdicts, fault
injector, fleet lane frontiers / tick buckets / watermark) is snapshot
to disk at deterministic instants, and a process killed at **any** point
can restore the latest snapshot and replay the remaining events to a
:class:`~repro.stream.detector.StreamResult` whose scores, alarms and
fused verdicts are ``np.array_equal`` to the uninterrupted run's
(asserted by ``tests/stream/test_durability.py`` and re-checked
in-harness by ``repro bench --suite stream-chaos``).

Checkpoint file format (version |version|)::

    REPROCKPT1\\n                                   magic
    {"version": 1, "kind": "...", "fingerprint": "..."}\\n   header (JSON)
    <pickle bytes>                                 body

The header's ``fingerprint`` is the SHA-256 of the body bytes; any
corruption or truncation fails the restore **loudly** with a
:class:`CheckpointError` naming the fingerprint mismatch — a damaged
checkpoint must never silently restore wrong state.  ``kind`` separates
single-stream from fleet snapshots so the wrong loader cannot be fooled.
Files are written with the cache's atomic tmp + fsync + rename helper
(:func:`~repro.runtime.cache.atomic_write_bytes`), so a crash *during* a
checkpoint write leaves the previous checkpoint intact.

Why replay positions anchor the contract: durable runs are driven over a
recorded (cached, deterministic) trace via :mod:`repro.stream.replay`,
whose merged dispatch order is total-ordered and reproducible — so "N
merged items dispatched" names the same instant in every replay of the
same trace, and a checkpoint is just (position, state snapshot).
Snapshots are taken only right after a dispatched sampling tick (the
tick rides *pending* in the extractor; nothing is half-applied).

Session knobs (``Session.stream_detect`` / ``fleet_detect``)::

    checkpoint=PATH          write snapshots to PATH during the run
    checkpoint_every=N       snapshot cadence, in sampling ticks
                             (fleet: round-robin rounds); default
                             DEFAULT_CHECKPOINT_EVERY
    resume_from=PATH         restore PATH before replaying the remainder
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping

from repro.runtime.cache import atomic_write_bytes
from repro.stream.config import DEFAULT_CHECKPOINT_EVERY
from repro.stream.faults import StreamFaultPlan, apply_checkpoint_fault
from repro.stream.replay import ReplayCursor, replay_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.scenario import SimulationTrace
    from repro.stream.detector import OnlineDetector
    from repro.stream.extractor import StreamingExtractor
    from repro.stream.faults import RowFaultInjector
    from repro.stream.fleet import FleetDetector

#: First bytes of every checkpoint file.
MAGIC = b"REPROCKPT1\n"

#: Current checkpoint format version (see the module docstring).
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file could not be trusted or understood.

    Raised on a missing / unreadable file, a foreign or truncated
    header, an unsupported format version, a kind mismatch (stream
    checkpoint fed to the fleet loader or vice versa) and — the one the
    chaos suite drills — a **fingerprint mismatch**: the body bytes do
    not hash to the header's SHA-256, i.e. the file was corrupted or
    truncated after it was written.
    """


def write_checkpoint(path: str | Path, kind: str, body: dict) -> None:
    """Atomically write one fingerprinted checkpoint file.

    ``body`` is pickled; the header records the format version, the
    ``kind`` tag and the body's SHA-256.  The write goes through
    :func:`~repro.runtime.cache.atomic_write_bytes`, so an interrupted
    write can never replace a good checkpoint with a torn one.
    """
    payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        {
            "version": CHECKPOINT_VERSION,
            "kind": kind,
            "fingerprint": hashlib.sha256(payload).hexdigest(),
        },
        sort_keys=True,
    )
    atomic_write_bytes(path, MAGIC + header.encode() + b"\n" + payload)


def read_checkpoint(path: str | Path, kind: str) -> dict:
    """Read and verify one checkpoint file; return the pickled body.

    Every failure mode raises :class:`CheckpointError` with the cause
    named — most importantly a *fingerprint mismatch* for corrupted or
    truncated bodies.  ``kind`` must match the tag the writer recorded.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not data.startswith(MAGIC):
        raise CheckpointError(f"{path} is not a repro checkpoint (bad magic)")
    newline = data.find(b"\n", len(MAGIC))
    if newline < 0:
        raise CheckpointError(f"checkpoint {path} is truncated (no header)")
    try:
        header = json.loads(data[len(MAGIC):newline])
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} has a corrupt header: {exc}"
        ) from exc
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    if header.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path} holds a {header.get('kind')!r} snapshot, "
            f"not the expected {kind!r}"
        )
    payload = data[newline + 1:]
    fingerprint = hashlib.sha256(payload).hexdigest()
    if fingerprint != header.get("fingerprint"):
        raise CheckpointError(
            f"checkpoint {path} failed verification: fingerprint mismatch "
            f"(header {header.get('fingerprint')!r}, body {fingerprint!r}) — "
            f"the file was corrupted or truncated; refusing to restore"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:  # fingerprint passed but unpicklable
        raise CheckpointError(
            f"checkpoint {path} body failed to unpickle: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Single-stream snapshots
# ----------------------------------------------------------------------
def save_stream_checkpoint(
    path: str | Path,
    position: int,
    extractor: "StreamingExtractor",
    detector: "OnlineDetector",
    injector: "RowFaultInjector | None" = None,
) -> None:
    """Snapshot one single-stream run at an absolute replay position.

    Captures the extractor's rings + pending tick, the detector's
    verdicts and the (optional) fault injector's state, keyed by the
    deterministic merge ``position`` :func:`replay_trace` reported.
    """
    write_checkpoint(path, "stream", {
        "position": int(position),
        "extractor": extractor.snapshot(),
        "detector": detector.snapshot(),
        "injector": injector.snapshot() if injector is not None else None,
    })


def load_stream_checkpoint(
    path: str | Path,
    extractor: "StreamingExtractor",
    detector: "OnlineDetector",
    injector: "RowFaultInjector | None" = None,
) -> int:
    """Restore a single-stream snapshot; return the replay position.

    The extractor / detector (and injector, if the run injects faults)
    must be freshly built with the original construction knobs; replay
    the trace with ``skip=<returned position>`` to continue the run.
    """
    body = read_checkpoint(path, "stream")
    extractor.restore(body["extractor"])
    detector.restore(body["detector"])
    if injector is not None and body.get("injector") is not None:
        injector.restore(body["injector"])
    return int(body["position"])


# ----------------------------------------------------------------------
# Fleet snapshots
# ----------------------------------------------------------------------
def save_fleet_checkpoint(
    path: str | Path,
    positions: Mapping[str, int],
    fleet: "FleetDetector",
) -> None:
    """Snapshot a fleet run: per-lane replay positions + full fleet state."""
    write_checkpoint(path, "fleet", {
        "positions": {name: int(p) for name, p in positions.items()},
        "fleet": fleet.snapshot(),
    })


def load_fleet_checkpoint(path: str | Path, fleet: "FleetDetector") -> dict[str, int]:
    """Restore a fleet snapshot; return the per-lane replay positions.

    ``fleet`` must be freshly built with the original lanes registered;
    rebuild each lane's :class:`~repro.stream.replay.ReplayCursor` with
    ``skip=positions[lane]`` to continue the run.
    """
    body = read_checkpoint(path, "fleet")
    fleet.restore(body["fleet"])
    return dict(body["positions"])


# ----------------------------------------------------------------------
# Durable run drivers
# ----------------------------------------------------------------------
class _Killed(Exception):
    """Internal: the configured kill point was reached (chaos harness)."""


def _maybe_damage_checkpoint(
    path: str | Path, faults: StreamFaultPlan | None, ordinal: int
) -> None:
    """Apply a planned ckpt-corrupt / ckpt-truncate fault before a restore."""
    if faults is not None:
        spec = faults.checkpoint_fault(ordinal)
        if spec is not None:
            apply_checkpoint_fault(path, spec)


def run_durable_stream(
    trace: "SimulationTrace",
    tap: "StreamingExtractor",
    detector: "OnlineDetector",
    injector: "RowFaultInjector | None" = None,
    checkpoint: str | Path | None = None,
    checkpoint_every: int | None = None,
    resume_from: str | Path | None = None,
    faults: StreamFaultPlan | None = None,
    stop_after_ticks: int | None = None,
    on_checkpoint: Callable[[int], None] | None = None,
    on_restore: Callable[[int], None] | None = None,
) -> tuple[int, bool]:
    """Drive one durable single-stream run over a recorded trace.

    Replays ``trace`` through ``tap`` (whose ``on_row`` feeds
    ``detector``, optionally through ``injector``), snapshotting to
    ``checkpoint`` after every ``checkpoint_every``-th dispatched
    sampling tick.  ``resume_from`` restores a prior snapshot first
    (applying any planned checkpoint-file fault for restore ordinal 0 —
    the chaos path) and skips the already-applied prefix.

    ``stop_after_ticks`` is the chaos harness's kill switch: stop
    abruptly — **without** flushing or checkpointing — after that many
    ticks of *this* run, as a process kill would.  Returns
    ``(position, finished)``.
    """
    every = DEFAULT_CHECKPOINT_EVERY if checkpoint_every is None else int(checkpoint_every)
    if every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {every}")
    skip = 0
    if resume_from is not None:
        _maybe_damage_checkpoint(resume_from, faults, 0)
        skip = load_stream_checkpoint(resume_from, tap, detector, injector)
        if on_restore is not None:
            on_restore(skip)

    ticks = 0

    def handle_tick(position: int) -> None:
        nonlocal ticks
        ticks += 1
        if checkpoint is not None and ticks % every == 0:
            save_stream_checkpoint(checkpoint, position, tap, detector, injector)
            if on_checkpoint is not None:
                on_checkpoint(position)
        if stop_after_ticks is not None and ticks >= stop_after_ticks:
            raise _Killed(position)

    try:
        position = replay_trace(trace, tap, skip=skip, on_tick=handle_tick)
    except _Killed as killed:
        return int(killed.args[0]), False
    if injector is not None:
        injector.flush()  # release a still-held delayed row at stream end
    return position, True


def run_durable_fleet(
    traces: "Mapping[str, SimulationTrace]",
    fleet: "FleetDetector",
    checkpoint: str | Path | None = None,
    checkpoint_every: int | None = None,
    resume_from: str | Path | None = None,
    faults: StreamFaultPlan | None = None,
    stop_after_rounds: int | None = None,
    on_checkpoint: Callable[[int], None] | None = None,
    on_restore: Callable[[int], None] | None = None,
) -> tuple[dict[str, int], bool]:
    """Drive one durable fleet run over recorded traces, round-robin.

    ``traces`` maps scenario group name to its recorded trace; groups
    replay sequentially (matching live ``fleet_detect``) and *within* a
    group every lane advances one tick segment per round, in taps order
    — lockstep, so the stall policy sees the same frontier gaps as a
    live run and an idle lane is never mistaken for a stalled one.

    Checkpoints land at round boundaries (every lane just past a tick);
    ``resume_from`` restores the fleet and rebuilds each lane's cursor
    at its saved position.  ``stop_after_rounds`` kills the run abruptly
    after that many rounds of *this* run (chaos harness).  Returns
    ``(per-lane positions, finished)``.
    """
    every = DEFAULT_CHECKPOINT_EVERY if checkpoint_every is None else int(checkpoint_every)
    if every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {every}")
    positions: dict[str, int] = {}
    if resume_from is not None:
        _maybe_damage_checkpoint(resume_from, faults, 0)
        positions = load_fleet_checkpoint(resume_from, fleet)
        if on_restore is not None:
            on_restore(max(positions.values(), default=0))

    rounds = 0
    for scenario, trace in traces.items():
        cursors = [
            (tap, ReplayCursor(trace, tap, skip=positions.get(tap.name, 0)))
            for tap in fleet.taps(scenario)
        ]
        while any(not cursor.done for _, cursor in cursors):
            for tap, cursor in cursors:
                if not cursor.done:
                    cursor.step_tick()
                    positions[tap.name] = cursor.position
            rounds += 1
            if checkpoint is not None and rounds % every == 0:
                save_fleet_checkpoint(checkpoint, positions, fleet)
                if on_checkpoint is not None:
                    on_checkpoint(rounds)
            if stop_after_rounds is not None and rounds >= stop_after_rounds:
                return positions, False
    fleet.finish()
    return positions, True
