"""The one place the detector-construction knobs are defined.

Every online-detection constructor — :meth:`OnlineDetector.from_detector`,
:meth:`FleetDetector.from_detector` / :meth:`FleetDetector.from_session`,
:meth:`Session.stream_detect` and :meth:`Session.fleet_detect` — accepts
the same keywords with the same meanings and the same defaults, defined
here so the surfaces cannot drift apart (``tests/stream/test_fleet.py``
asserts the symmetry by introspection):

``threshold`` : float | None
    Decision threshold; a window alarms iff ``score < threshold``.
    ``None`` (the default everywhere) adopts the fitted batch detector's
    calibrated ``threshold_`` via :func:`resolve_threshold`.
``warmup`` : float | None
    Suppress windows ending before this simulation time.  The raw
    default is :data:`DEFAULT_WARMUP` (0.0 — score everything); the
    Session methods default to ``None``, meaning "the plan's warmup".
``monitor`` / ``monitors``
    The observed node (:data:`DEFAULT_MONITOR`) for single-stream
    detection, or the observed node set for a fleet.  Session methods
    default to ``None``: the plan's monitor, or for a fleet every node
    except the plan's attacker.
``quorum`` : int | float
    The fused-verdict policy (:data:`DEFAULT_QUORUM`): an ``int`` k
    demands k alarming streams among those reporting on a tick (k-of-n
    with a fixed k — conservative when streams drop out); a ``float``
    in (0, 1] demands that fraction of the *reporting* streams (adapts
    to dropped or still-warming-up streams).  :func:`needed_votes`
    evaluates the policy per tick.
``on_alarm`` / ``on_fused``
    Callbacks invoked per-stream :class:`~repro.stream.detector.Alarm`
    and per fused :class:`~repro.stream.fleet.FleetAlarm` as they fire.
``row_policy`` : str
    What to do with degraded input rows (late / duplicate / NaN-bearing /
    out-of-range).  ``"strict"`` (:data:`DEFAULT_ROW_POLICY`) keeps the
    historical contract: trust the extractor, raise on protocol
    violations.  ``"quarantine"`` routes bad rows to a typed
    :class:`~repro.stream.faults.StreamFault` record instead of raising;
    detection continues on the surviving rows.  Session methods default
    to ``None`` = the shared default.
``max_consecutive_faults`` : int
    Quarantine-mode circuit breaker (:data:`DEFAULT_MAX_FAULTS`): a
    fleet lane exceeding this many *consecutive* quarantined rows is
    auto-sealed with reason ``"faulted"``.
``attribution`` : bool
    Attach a typed :class:`~repro.attribution.Verdict` to every alarm
    (anomaly class, culprit features, CUSUM onset) and a fused verdict
    to every :class:`~repro.stream.fleet.FleetAlarm`.  Off by default
    (:data:`DEFAULT_ATTRIBUTION`) — verdicts are pure annotation
    (scores/alarms stay bit-identical either way), but cost one extra
    sub-model pass per alarming window.  ``REPRO_ATTRIBUTION=0``
    force-disables it regardless of this knob.
``stall_timeout`` : float | None
    Fleet liveness bound, in simulation seconds: a lane whose frontier
    lags the most advanced live lane by more than this is auto-sealed
    with reason ``"stalled"``, so one wedged probe can never hold the
    watermark (and every other lane's scoring) back forever.  ``None``
    (default) waits indefinitely — the historical behaviour.

The detector-training knobs (``classifier`` / ``method`` /
``false_alarm_rate`` / ``max_models`` / ``n_buckets`` / ``n_jobs``)
follow :meth:`repro.runtime.Session.fitted_detector` unchanged.
Durable-run knobs (``checkpoint`` / ``checkpoint_every`` /
``resume_from``) are documented in :mod:`repro.stream.durability`.
"""

from __future__ import annotations

import math

#: Default observed node for single-stream detection.
DEFAULT_MONITOR = 0

#: Default warmup: score every closed window from time zero.
DEFAULT_WARMUP = 0.0

#: Default fusion policy: any one alarming stream raises the fused alarm.
DEFAULT_QUORUM: int | float = 1

#: The degraded-input policies a detector accepts.
ROW_POLICIES = ("strict", "quarantine")

#: Default degraded-input policy: raise, exactly as before PR 7.
DEFAULT_ROW_POLICY = "strict"

#: Quarantine circuit breaker: consecutive faulted rows before a lane
#: is auto-sealed with reason ``"faulted"``.
DEFAULT_MAX_FAULTS = 5

#: Default checkpoint cadence for durable runs: snapshot every N
#: dispatched sampling ticks.
DEFAULT_CHECKPOINT_EVERY = 16

#: Default attribution policy: plain (untyped) alarms, as before PR 9.
DEFAULT_ATTRIBUTION = False


def validate_row_policy(row_policy: str | None) -> str:
    """Normalise a ``row_policy`` value (``None`` = the shared default)."""
    if row_policy is None:
        return DEFAULT_ROW_POLICY
    if row_policy not in ROW_POLICIES:
        raise ValueError(
            f"row_policy must be one of {ROW_POLICIES}, got {row_policy!r}"
        )
    return row_policy


def resolve_threshold(detector, threshold: float | None) -> float:
    """The effective decision threshold for a construction call.

    ``None`` adopts the fitted detector's calibrated ``threshold_``;
    an explicit value overrides it.  Raises :class:`ValueError` when
    there is nothing to adopt (unfitted / uncalibrated detector).
    """
    if threshold is not None:
        return float(threshold)
    if getattr(detector, "threshold_", None) is None:
        raise ValueError(
            "detector has no calibrated threshold_; fit it with a "
            "calibration_X or pass threshold= explicitly"
        )
    return float(detector.threshold_)


def validate_quorum(quorum: int | float) -> int | float:
    """Check a quorum policy value (see the module docstring)."""
    if isinstance(quorum, bool) or not isinstance(quorum, (int, float)):
        raise ValueError(f"quorum must be an int >= 1 or a float in (0, 1], got {quorum!r}")
    if isinstance(quorum, int):
        if quorum < 1:
            raise ValueError(f"integer quorum must be >= 1, got {quorum}")
    elif not 0.0 < quorum <= 1.0:
        raise ValueError(f"fractional quorum must be in (0, 1], got {quorum}")
    return quorum


def needed_votes(quorum: int | float, reporting: int) -> int:
    """Alarming streams required to fuse, given how many reported.

    An ``int`` quorum is absolute (never satisfiable while fewer than
    k streams report — dropped streams make the fleet *more* cautious);
    a ``float`` is a ceiling fraction of the reporting streams.
    """
    if isinstance(quorum, int):
        return quorum
    return max(1, math.ceil(quorum * reporting))
