"""The one place the detector-construction knobs are defined.

Every online-detection constructor — :meth:`OnlineDetector.from_detector`,
:meth:`FleetDetector.from_detector` / :meth:`FleetDetector.from_session`,
:meth:`Session.stream_detect` and :meth:`Session.fleet_detect` — accepts
the same keywords with the same meanings and the same defaults, defined
here so the surfaces cannot drift apart (``tests/stream/test_fleet.py``
asserts the symmetry by introspection):

``threshold`` : float | None
    Decision threshold; a window alarms iff ``score < threshold``.
    ``None`` (the default everywhere) adopts the fitted batch detector's
    calibrated ``threshold_`` via :func:`resolve_threshold`.
``warmup`` : float | None
    Suppress windows ending before this simulation time.  The raw
    default is :data:`DEFAULT_WARMUP` (0.0 — score everything); the
    Session methods default to ``None``, meaning "the plan's warmup".
``monitor`` / ``monitors``
    The observed node (:data:`DEFAULT_MONITOR`) for single-stream
    detection, or the observed node set for a fleet.  Session methods
    default to ``None``: the plan's monitor, or for a fleet every node
    except the plan's attacker.
``quorum`` : int | float
    The fused-verdict policy (:data:`DEFAULT_QUORUM`): an ``int`` k
    demands k alarming streams among those reporting on a tick (k-of-n
    with a fixed k — conservative when streams drop out); a ``float``
    in (0, 1] demands that fraction of the *reporting* streams (adapts
    to dropped or still-warming-up streams).  :func:`needed_votes`
    evaluates the policy per tick.
``on_alarm`` / ``on_fused``
    Callbacks invoked per-stream :class:`~repro.stream.detector.Alarm`
    and per fused :class:`~repro.stream.fleet.FleetAlarm` as they fire.

The detector-training knobs (``classifier`` / ``method`` /
``false_alarm_rate`` / ``max_models`` / ``n_buckets`` / ``n_jobs``)
follow :meth:`repro.runtime.Session.fitted_detector` unchanged.
"""

from __future__ import annotations

import math

#: Default observed node for single-stream detection.
DEFAULT_MONITOR = 0

#: Default warmup: score every closed window from time zero.
DEFAULT_WARMUP = 0.0

#: Default fusion policy: any one alarming stream raises the fused alarm.
DEFAULT_QUORUM: int | float = 1


def resolve_threshold(detector, threshold: float | None) -> float:
    """The effective decision threshold for a construction call.

    ``None`` adopts the fitted detector's calibrated ``threshold_``;
    an explicit value overrides it.  Raises :class:`ValueError` when
    there is nothing to adopt (unfitted / uncalibrated detector).
    """
    if threshold is not None:
        return float(threshold)
    if getattr(detector, "threshold_", None) is None:
        raise ValueError(
            "detector has no calibrated threshold_; fit it with a "
            "calibration_X or pass threshold= explicitly"
        )
    return float(detector.threshold_)


def validate_quorum(quorum: int | float) -> int | float:
    """Check a quorum policy value (see the module docstring)."""
    if isinstance(quorum, bool) or not isinstance(quorum, (int, float)):
        raise ValueError(f"quorum must be an int >= 1 or a float in (0, 1], got {quorum!r}")
    if isinstance(quorum, int):
        if quorum < 1:
            raise ValueError(f"integer quorum must be >= 1, got {quorum}")
    elif not 0.0 < quorum <= 1.0:
        raise ValueError(f"fractional quorum must be in (0, 1], got {quorum}")
    return quorum


def needed_votes(quorum: int | float, reporting: int) -> int:
    """Alarming streams required to fuse, given how many reported.

    An ``int`` quorum is absolute (never satisfiable while fewer than
    k streams report — dropped streams make the fleet *more* cautious);
    a ``float`` is a ceiling fraction of the reporting streams.
    """
    if isinstance(quorum, int):
        return quorum
    return max(1, math.ceil(quorum * reporting))
