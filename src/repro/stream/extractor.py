"""Incremental Feature Set I + II extraction from a live event stream.

A :class:`StreamingExtractor` is a *window tap*: bound to the monitor
node's :class:`~repro.simulation.stats.NodeStats` it consumes packet,
route-event and route-length events as they are logged, receives each
sampling tick from the scenario clock, and emits one :class:`WindowRow`
per closed window — the same ``(8 + 132)``-column vector the batch
:func:`repro.features.extraction.extract_features` computes from the
finished trace, **bit-identically** (see :mod:`repro.stream.ring` for the
arithmetic argument).

Window-close semantics: the paper's windows are half-open intervals
``(t - period, t]``, so events stamped *exactly* ``t`` belong to the
window ending at ``t`` — including events the simulator happens to
process after the tick callback in the same instant.  The extractor
therefore holds a tick *pending* until the stream proves time has moved
past it (the first event or tick strictly later than ``t``), then
finalises the row.  At most one window rides pending at a time in live
operation, and :meth:`finish` flushes the last one at trace end — a
window is never emitted early and never reordered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.features.topology import TOPOLOGY_FEATURE_NAMES
from repro.features.traffic import (
    DEFAULT_SAMPLING_PERIODS,
    TrafficFeatureSpec,
    _CONTROL_TYPES,
    traffic_feature_grid,
)
from repro.simulation.packet import Direction, PacketType
from repro.simulation.stats import NodeStats, RouteEventKind
from repro.stream.ring import EventRing, RouteLengthRing

_DIRECTION_BY_VALUE = {int(d): d.name.lower() for d in Direction}
_NAMED_TYPES = {
    int(PacketType.DATA): "data",
    int(PacketType.RREQ): "rreq",
    int(PacketType.RREP): "rrep",
    int(PacketType.RERR): "rerr",
    int(PacketType.HELLO): "hello",
}
_CONTROL_VALUES = frozenset(int(pt) for pt in _CONTROL_TYPES)

_ROUTE_KIND_ORDER = (
    RouteEventKind.ADD,
    RouteEventKind.REMOVAL,
    RouteEventKind.FIND,
    RouteEventKind.NOTICE,
    RouteEventKind.REPAIR,
)


@dataclass(frozen=True)
class WindowRow:
    """One closed sampling window at the monitor node.

    ``features`` is the full Feature Set I + II vector in the exact column
    order of the batch extractor; ``index`` counts emitted rows (warmup
    windows are suppressed, matching the batch ``warmup`` filter).
    """

    index: int
    time: float
    monitor: int
    features: np.ndarray


class StreamingExtractor:
    """Window tap computing the paper's feature vector per closed window.

    Parameters
    ----------
    monitor:
        Node whose local stream is analysed.
    periods:
        Feature Set II sampling periods (paper: 5 s, 1 min, 15 min).
    sampling_period:
        The tick spacing / Feature Set I window (paper: 5 s); must match
        the scenario's ``sampling_period``.
    warmup:
        Suppress rows for windows ending before this time (the batch
        ``warmup`` filter); internal state still advances through them.
    on_row:
        Callback invoked with each emitted :class:`WindowRow` — wire an
        :class:`~repro.stream.detector.OnlineDetector` here.
    keep_rows:
        Also accumulate emitted rows on ``self.rows`` (default True;
        disable for unbounded deployments).
    """

    def __init__(
        self,
        monitor: int = 0,
        periods: tuple[float, ...] = DEFAULT_SAMPLING_PERIODS,
        sampling_period: float = 5.0,
        warmup: float = 0.0,
        on_row: Callable[[WindowRow], None] | None = None,
        keep_rows: bool = True,
    ):
        if monitor < 0:
            raise ValueError(f"monitor must be >= 0, got {monitor}")
        if not periods:
            raise ValueError("need at least one sampling period")
        if sampling_period <= 0:
            raise ValueError("sampling_period must be positive")
        self.monitor = monitor
        self.periods = tuple(float(p) for p in periods)
        self.sampling_period = float(sampling_period)
        self.warmup = float(warmup)
        self.on_row = on_row
        self.keep_rows = keep_rows
        self.rows: list[WindowRow] = []

        self._specs: list[TrafficFeatureSpec] = traffic_feature_grid(self.periods)
        self.feature_names: list[str] = list(TOPOLOGY_FEATURE_NAMES) + [
            spec.name for spec in self._specs
        ]
        max_period = max(self.periods)
        #: One ring per Table 5 (packet type, direction) combo.
        self._traffic: dict[tuple[str, str], EventRing] = {
            key: EventRing(max_period)
            for key in {(s.packet_type, s.direction) for s in self._specs}
        }
        #: Query plan: (ring, period, is_std) per traffic column, in order.
        self._traffic_plan = [
            (self._traffic[(s.packet_type, s.direction)], s.period, s.measure != "count")
            for s in self._specs
        ]
        self._route = {
            int(kind): EventRing(self.sampling_period) for kind in _ROUTE_KIND_ORDER
        }
        self._route_length = RouteLengthRing(self.sampling_period)

        self._pending: tuple[float, float] | None = None  # (tick, speed)
        self._last_event_time = float("-inf")
        self._emitted = 0
        self._windows_closed = 0
        self._stats: NodeStats | None = None

    # ------------------------------------------------------------------
    # Scenario-tap protocol
    # ------------------------------------------------------------------
    def bind(self, stats: NodeStats) -> None:
        """Subscribe to a node's live trace log.

        Atomic: every validation runs before any state changes, so a
        rejected bind leaves neither ``self._stats`` set nor a listener
        subscribed on the :class:`NodeStats`.
        """
        if self._stats is not None:
            raise RuntimeError("extractor is already bound to a NodeStats")
        if stats.node_id != self.monitor:
            raise ValueError(
                f"extractor monitors node {self.monitor}, got stats for "
                f"node {stats.node_id}"
            )
        stats.subscribe(self)
        self._stats = stats

    def unbind(self) -> None:
        """Detach from the bound node (e.g. after :meth:`finish`).

        Idempotent, and tolerant of a listener list the stats object
        rebuilt (e.g. after pickling): both sides end up detached.
        """
        stats, self._stats = self._stats, None
        if stats is not None:
            try:
                stats.unsubscribe(self)
            except ValueError:
                pass  # listener list was already rebuilt without us

    def on_tick(self, time: float, speed: float) -> None:
        """The scenario clock crossed a sampling instant."""
        t = float(time)
        if self._last_event_time > t:
            raise ValueError(
                f"tick at {t} arrived after an event at {self._last_event_time}"
            )
        self._advance_to(t)
        if self._pending is not None:
            raise ValueError(
                f"tick at {t} arrived while tick {self._pending[0]} is pending"
            )
        self._pending = (t, float(speed))

    def finish(self) -> None:
        """Trace end: flush the last pending window."""
        if self._pending is not None:
            self._close_window(*self._pending)
            self._pending = None

    # ------------------------------------------------------------------
    # NodeStats-listener protocol
    # ------------------------------------------------------------------
    def _ingest(self, time: float) -> None:
        """Common per-event bookkeeping: ordering + pending-tick closure."""
        self._advance_to(time)
        self._last_event_time = time

    def on_packet(self, time: float, ptype: PacketType, direction: Direction) -> None:
        """One packet event at the monitor, live from the recorder."""
        self._ingest(time)
        pt, dr = int(ptype), int(direction)
        dir_name = _DIRECTION_BY_VALUE[dr]
        if pt == int(PacketType.DATA):
            # The encapsulation fold: in-transit data activity counts as
            # "route (all)" only; end-to-end data keeps its own stream.
            if dr in (int(Direction.FORWARDED), int(Direction.DROPPED)):
                self._traffic[("route_all", dir_name)].push(time)
            else:
                self._traffic[("data", dir_name)].push(time)
            return
        if pt in _CONTROL_VALUES:
            self._traffic[("route_all", dir_name)].push(time)
        name = _NAMED_TYPES.get(pt)
        if name is not None:
            self._traffic[(name, dir_name)].push(time)

    def on_route_event(self, time: float, kind: RouteEventKind) -> None:
        """One route-fabric event (Feature Set I), live from the recorder."""
        self._ingest(time)
        self._route[int(kind)].push(time)

    def on_route_length(self, time: float, hops: int) -> None:
        """One route-use hop-count sample, live from the recorder."""
        self._ingest(time)
        self._route_length.push(time, hops)

    # ------------------------------------------------------------------
    # Window assembly
    # ------------------------------------------------------------------
    def _advance_to(self, time: float) -> None:
        """Anything strictly later than a pending tick closes its window."""
        if self._pending is not None and time > self._pending[0]:
            self._close_window(*self._pending)
            self._pending = None

    def _close_window(self, tick: float, speed: float) -> None:
        """Compute and emit the feature row for the window ending at ``tick``."""
        period = self.sampling_period
        values = np.empty(len(self.feature_names), dtype=float)
        # Feature Set I: velocity, five event counts, total change, length.
        values[0] = speed
        add = self._route[int(RouteEventKind.ADD)].count(tick, period)
        removal = self._route[int(RouteEventKind.REMOVAL)].count(tick, period)
        values[1] = add
        values[2] = removal
        values[3] = self._route[int(RouteEventKind.FIND)].count(tick, period)
        values[4] = self._route[int(RouteEventKind.NOTICE)].count(tick, period)
        values[5] = self._route[int(RouteEventKind.REPAIR)].count(tick, period)
        values[6] = add + removal
        values[7] = self._route_length.average(tick, period)
        # Feature Set II: the Table 5 grid, in spec order.
        for j, (ring, p, is_std) in enumerate(self._traffic_plan, start=8):
            values[j] = ring.iat_std(tick, p) if is_std else ring.count(tick, p)

        for ring in self._traffic.values():
            ring.evict_before(tick)
        for ring in self._route.values():
            ring.evict_before(tick)
        self._route_length.evict_before(tick)

        self._windows_closed += 1
        if tick < self.warmup:
            return
        row = WindowRow(
            index=self._emitted, time=tick, monitor=self.monitor, features=values
        )
        self._emitted += 1
        if self.keep_rows:
            self.rows.append(row)
        if self.on_row is not None:
            self.on_row(row)

    # ------------------------------------------------------------------
    # Batch views (for equivalence checks and small offline jobs)
    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        """Windows closed so far (including warmup-suppressed ones)."""
        return self._windows_closed

    def to_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Stack the retained rows into ``(X, times)`` arrays.

        Requires ``keep_rows=True``; the stacked ``X`` is bit-identical
        to the batch extractor's matrix for the same trace and knobs.
        """
        if not self.keep_rows:
            raise RuntimeError("rows were not retained (keep_rows=False)")
        if not self.rows:
            n = len(self.feature_names)
            return np.empty((0, n), dtype=float), np.empty(0, dtype=float)
        X = np.vstack([row.features for row in self.rows])
        times = np.array([row.time for row in self.rows], dtype=float)
        return X, times

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Full mutable extraction state (rings, pending tick, counters).

        The construction knobs (monitor, periods, warmup, ...) are *not*
        captured: restore targets an extractor built with the same knobs,
        which :meth:`restore` verifies structurally.
        """
        return {
            "traffic": {k: r.snapshot() for k, r in self._traffic.items()},
            "route": {k: r.snapshot() for k, r in self._route.items()},
            "route_length": self._route_length.snapshot(),
            "pending": self._pending,
            "last_event_time": self._last_event_time,
            "emitted": self._emitted,
            "windows_closed": self._windows_closed,
            "rows": list(self.rows),
        }

    def restore(self, state: dict) -> None:
        """Adopt a :meth:`snapshot` taken from a same-shaped extractor."""
        if set(state["traffic"]) != set(self._traffic) or \
                set(state["route"]) != set(self._route):
            raise ValueError(
                "snapshot does not match this extractor's ring layout "
                "(different periods or feature grid)"
            )
        for key, ring_state in state["traffic"].items():
            self._traffic[key].restore(ring_state)
        for key, ring_state in state["route"].items():
            self._route[key].restore(ring_state)
        self._route_length.restore(state["route_length"])
        self._pending = state["pending"]
        self._last_event_time = state["last_event_time"]
        self._emitted = state["emitted"]
        self._windows_closed = state["windows_closed"]
        self.rows = list(state["rows"])


def extractor_for_config(
    config,
    monitor: int = 0,
    periods: Sequence[float] = DEFAULT_SAMPLING_PERIODS,
    warmup: float = 0.0,
    on_row: Callable[[WindowRow], None] | None = None,
    keep_rows: bool = True,
) -> StreamingExtractor:
    """A :class:`StreamingExtractor` matched to a scenario's clock."""
    return StreamingExtractor(
        monitor=monitor,
        periods=tuple(periods),
        sampling_period=config.sampling_period,
        warmup=warmup,
        on_row=on_row,
        keep_rows=keep_rows,
    )
