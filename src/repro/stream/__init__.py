"""repro.stream — online detection over live sampling windows.

The batch pipeline needs a finished trace; this subsystem runs the same
analysis *while the node is being watched*: a
:class:`StreamingExtractor` tap consumes the monitor's event stream and
closes one feature window per sampling tick (ring buffers over the
multi-period Table 5 grid — O(1) amortised per window), and an
:class:`OnlineDetector` scores each window as it closes, emitting typed
:class:`Alarm` events with latency accounting.  With ``attribution`` on,
each alarm additionally carries a :class:`~repro.attribution.Verdict` —
anomaly class, culprit features, estimated onset — computed strictly
after scoring, so scores and alarm decisions stay bit-identical.

At fleet scale, a :class:`FleetDetector` multiplexes N extractor streams
(one per monitored node, across one or many scenarios) into a single
pipeline: all windows closing on the same tick are scored in **one**
vectorized batch, per-stream :class:`Alarm` streams are fused into
network-level :class:`FleetAlarm` verdicts under a configurable quorum
policy, and every construction surface shares the keywords documented in
:mod:`repro.stream.config`.

The contract: for any scenario, the streamed per-window feature rows and
scores are **bit-identical** to the batch
``extract_features`` → ``CrossFeatureModel.normality_score`` path over
the completed trace — and a fleet run is bit-identical to N independent
:class:`OnlineDetector` runs (asserted end to end by ``tests/stream/``).

Long-lived runs are *durable*: the full streaming state checkpoints to a
fingerprinted file (:mod:`repro.stream.durability`) and a run killed at
any tick restores + replays to bit-identical results; degraded input is
governed by a ``row_policy`` (quarantine late / duplicate / NaN /
out-of-range rows as typed :class:`StreamFault` records instead of
raising), and :mod:`repro.stream.faults` injects deterministic row /
lane-crash / checkpoint faults for chaos testing.

Usage::

    from repro import ScenarioConfig, Session
    from repro.stream import FleetDetector, OnlineDetector, StreamingExtractor

    session = Session()
    result = session.stream_detect(plan)          # train (cached) + stream live
    verdict = session.fleet_detect(plan, quorum=2)   # every node, fused alarms

    # or hand-wired on a raw scenario:
    detector = OnlineDetector.from_detector(fitted, on_alarm=print)
    tap = StreamingExtractor(monitor=0, on_row=detector.consume,
                             sampling_period=config.sampling_period)
    run_scenario(config, attacks, taps=[tap])
"""

from repro.stream.config import (
    DEFAULT_ATTRIBUTION,
    DEFAULT_MAX_FAULTS,
    DEFAULT_MONITOR,
    DEFAULT_QUORUM,
    DEFAULT_ROW_POLICY,
    DEFAULT_WARMUP,
    needed_votes,
    resolve_threshold,
    validate_quorum,
    validate_row_policy,
)
from repro.stream.detector import Alarm, OnlineDetector, StreamResult
from repro.stream.durability import (
    CheckpointError,
    load_fleet_checkpoint,
    load_stream_checkpoint,
    read_checkpoint,
    save_fleet_checkpoint,
    save_stream_checkpoint,
    write_checkpoint,
)
from repro.stream.extractor import StreamingExtractor, WindowRow, extractor_for_config
from repro.stream.faults import StreamFault, StreamFaultPlan, StreamFaultSpec
from repro.stream.fleet import FleetAlarm, FleetDetector, FleetResult, FleetStream
from repro.stream.replay import replay_trace
from repro.stream.ring import EventRing, RouteLengthRing

__all__ = [
    "Alarm",
    "CheckpointError",
    "DEFAULT_ATTRIBUTION",
    "DEFAULT_MAX_FAULTS",
    "DEFAULT_MONITOR",
    "DEFAULT_QUORUM",
    "DEFAULT_ROW_POLICY",
    "DEFAULT_WARMUP",
    "EventRing",
    "FleetAlarm",
    "FleetDetector",
    "FleetResult",
    "FleetStream",
    "OnlineDetector",
    "RouteLengthRing",
    "StreamFault",
    "StreamFaultPlan",
    "StreamFaultSpec",
    "StreamResult",
    "StreamingExtractor",
    "WindowRow",
    "extractor_for_config",
    "load_fleet_checkpoint",
    "load_stream_checkpoint",
    "needed_votes",
    "read_checkpoint",
    "replay_trace",
    "resolve_threshold",
    "save_fleet_checkpoint",
    "save_stream_checkpoint",
    "validate_quorum",
    "validate_row_policy",
    "write_checkpoint",
]
