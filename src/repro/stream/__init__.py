"""repro.stream — online detection over live sampling windows.

The batch pipeline needs a finished trace; this subsystem runs the same
analysis *while the node is being watched*: a
:class:`StreamingExtractor` tap consumes the monitor's event stream and
closes one feature window per sampling tick (ring buffers over the
multi-period Table 5 grid — O(1) amortised per window), and an
:class:`OnlineDetector` scores each window as it closes, emitting typed
:class:`Alarm` events with latency accounting.

The contract: for any scenario, the streamed per-window feature rows and
scores are **bit-identical** to the batch
``extract_features`` → ``CrossFeatureModel.normality_score`` path over
the completed trace (asserted end to end by ``tests/stream/``).

Usage::

    from repro import ScenarioConfig, Session
    from repro.stream import OnlineDetector, StreamingExtractor

    session = Session()
    result = session.stream_detect(plan)          # train (cached) + stream live

    # or hand-wired on a raw scenario:
    detector = OnlineDetector.from_detector(fitted, on_alarm=print)
    tap = StreamingExtractor(monitor=0, on_row=detector.consume,
                             sampling_period=config.sampling_period)
    run_scenario(config, attacks, taps=[tap])
"""

from repro.stream.detector import Alarm, OnlineDetector, StreamResult
from repro.stream.extractor import StreamingExtractor, WindowRow, extractor_for_config
from repro.stream.replay import replay_trace
from repro.stream.ring import EventRing, RouteLengthRing

__all__ = [
    "Alarm",
    "EventRing",
    "OnlineDetector",
    "RouteLengthRing",
    "StreamResult",
    "StreamingExtractor",
    "WindowRow",
    "extractor_for_config",
    "replay_trace",
]
