"""Parallel trace execution.

Every experiment needs ~7 mutually independent traces (train ×2,
calibration, normal evals ×2, attack evals ×2), and :func:`run_scenario`
is deterministic per seed — a textbook fan-out.  :class:`TraceExecutor`
runs a batch of :class:`TraceTask`\\ s across a
:class:`~concurrent.futures.ProcessPoolExecutor`, preserving task order in
the results, and degrades gracefully to in-process serial execution when
``jobs <= 1``, the batch is trivial, or the platform refuses to give us a
process pool (sandboxes without semaphores, missing ``fork``…).

Determinism: each simulation seeds its own RNGs from its config, so the
traces are bit-identical whether they ran serially, in a pool, or in any
completion order — ``--jobs 4`` and ``--jobs 1`` produce the same numbers.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.simulation.scenario import ScenarioConfig, SimulationTrace, run_scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.attacks.base import Attack
    from repro.runtime.metrics import RuntimeMetrics


@dataclass(frozen=True)
class TraceTask:
    """One independent simulation: a scenario config + attack composition."""

    config: ScenarioConfig
    attacks: tuple["Attack", ...] = ()
    label: str = ""


def _run_trace_task(task: TraceTask) -> tuple[SimulationTrace, float]:
    """Worker entry point: simulate one task, timing its wall-clock.

    Module-level so it pickles by reference into pool workers.
    """
    start = time.perf_counter()
    trace = run_scenario(task.config, attacks=list(task.attacks))
    return trace, time.perf_counter() - start


class TraceExecutor:
    """Order-preserving batch runner for independent simulations.

    Parameters
    ----------
    jobs:
        Maximum worker processes.  ``1`` (the default) never spawns a
        pool; higher values use up to ``min(jobs, len(tasks))`` workers.
    metrics:
        Optional :class:`~repro.runtime.metrics.RuntimeMetrics`; receives
        one ``simulated`` event per finished trace (completion order) and
        a ``fallback`` event if the pool could not be used.
    """

    #: Pool-infrastructure failures that trigger the serial fallback.
    #: Anything else (e.g. a ValueError raised by the simulation itself)
    #: is a real error and propagates.
    _POOL_ERRORS = (BrokenProcessPool, OSError, ImportError, PermissionError,
                    pickle.PicklingError)

    def __init__(self, jobs: int = 1, metrics: "RuntimeMetrics | None" = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.metrics = metrics

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TraceTask]) -> list[SimulationTrace]:
        """Simulate every task; results are in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.jobs <= 1 or len(tasks) <= 1:
            return self._run_serial(tasks)
        try:
            return self._run_parallel(tasks)
        except self._POOL_ERRORS as exc:
            if self.metrics is not None:
                self.metrics.record_fallback(
                    f"process pool unavailable ({type(exc).__name__}); running serially"
                )
            return self._run_serial(tasks)

    # ------------------------------------------------------------------
    def _record(self, task: TraceTask, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.record_simulated(task.label or _default_label(task), seconds)

    def _run_serial(self, tasks: list[TraceTask]) -> list[SimulationTrace]:
        results = []
        for task in tasks:
            trace, seconds = _run_trace_task(task)
            self._record(task, seconds)
            results.append(trace)
        return results

    def _run_parallel(self, tasks: list[TraceTask]) -> list[SimulationTrace]:
        results: list[SimulationTrace | None] = [None] * len(tasks)
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_trace_task, task): i for i, task in enumerate(tasks)}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    i = futures[future]
                    trace, seconds = future.result()
                    self._record(tasks[i], seconds)
                    results[i] = trace
        return results  # type: ignore[return-value]


def _default_label(task: TraceTask) -> str:
    kind = "attack" if task.attacks else "normal"
    return f"{task.config.protocol}/{task.config.transport} {kind} seed={task.config.seed}"
