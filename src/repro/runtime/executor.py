"""Supervised parallel trace execution.

Every experiment needs ~7 mutually independent traces (train ×2,
calibration, normal evals ×2, attack evals ×2), and :func:`run_scenario`
is deterministic per seed — a textbook fan-out.  :class:`TraceExecutor`
runs a batch of :class:`TraceTask`\\ s across a
:class:`~concurrent.futures.ProcessPoolExecutor`, preserving task order in
the results, and degrades gracefully to in-process serial execution when
``jobs <= 1``, the batch is trivial, or the platform refuses to give us a
process pool (sandboxes without semaphores, missing ``fork``…).

Unlike a bare pool, every task is **individually supervised** by a
:class:`SupervisionPolicy`:

* a task that raises is retried with exponential backoff until its
  budget (``max_retries``) runs out;
* a task that overruns ``task_timeout`` has its pool killed, is charged a
  retry, and is requeued on a fresh pool — hung workers never stall a
  sweep;
* a worker crash (``BrokenProcessPool``) re-spawns the pool up to
  ``max_pool_respawns`` times, **keeping every already-completed result**
  and resubmitting only the unfinished tasks; if the budget runs out the
  remaining tasks finish serially;
* permanent failures are collected into a :class:`FailureReport` (one
  :class:`TaskFailure` per task, :class:`PoolFailure` for infrastructure)
  raised after the batch has made all the progress it can — completed
  results are still delivered incrementally through ``on_result``.

Determinism: each simulation seeds its own RNGs from its config, so the
traces are bit-identical whether they ran serially, in a pool, in any
completion order, or after any number of retries/respawns — ``--jobs 4``
with a crashed worker and ``--jobs 1`` produce the same numbers.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.runtime.faults import FaultPlan, FaultSpec, trip_sim_fault
from repro.simulation.scenario import ScenarioConfig, SimulationTrace, run_scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.attacks.base import Attack
    from repro.runtime.metrics import RuntimeMetrics

#: Injectable sleep for tests (monkeypatch to skip real backoff waits).
_sleep = time.sleep


@dataclass(frozen=True)
class TraceTask:
    """One independent simulation: a scenario config + attack composition."""

    config: ScenarioConfig
    attacks: tuple["Attack", ...] = ()
    label: str = ""


@dataclass(frozen=True)
class SupervisionPolicy:
    """Per-task supervision knobs for :class:`TraceExecutor`.

    ``max_retries`` bounds the *charged* re-attempts of a single task
    after its own error or timeout (a task requeued because somebody
    else's crash broke the pool is not charged).  ``task_timeout`` is the
    wall-clock budget per task under pool execution, counted from when
    the task is observed *running* — time spent queued behind busy
    workers is not charged; ``None`` disables it (and serial execution
    cannot enforce one — an in-process hang cannot be cancelled).
    Backoff before the Nth charged retry is
    ``min(backoff_cap, backoff_base * 2**(N-1))`` seconds.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_pool_respawns: int = 2

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.max_pool_respawns < 0:
            raise ValueError("max_pool_respawns must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before re-running a task's Nth charged attempt."""
        return min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))


# ----------------------------------------------------------------------
# Failure taxonomy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget.

    ``kind`` is ``"error"`` (the simulation raised) or ``"timeout"`` (it
    overran the per-task limit); ``attempts`` counts charged attempts and
    ``error`` holds the final exception's ``repr`` (or the timeout note).
    """

    index: int
    label: str
    kind: str
    attempts: int
    error: str


@dataclass(frozen=True)
class PoolFailure:
    """Pool infrastructure gave up: ``kind`` is ``"unavailable"`` (could
    not be created) or ``"respawns-exhausted"`` (kept breaking)."""

    kind: str
    error: str


class FailureReport(RuntimeError):
    """Raised by :meth:`TraceExecutor.run` when tasks failed permanently.

    Carries the full structured taxonomy — ``task_failures`` /
    ``pool_failures`` / ``completed`` / ``total`` — instead of a bare
    exception, so callers (and the resume journal) can see exactly how
    far the batch got.  It is only raised *after* the batch has made all
    the progress it can: every completable task completed and was
    delivered through ``on_result`` first.
    """

    def __init__(
        self,
        task_failures: Sequence[TaskFailure] = (),
        pool_failures: Sequence[PoolFailure] = (),
        completed: int = 0,
        total: int = 0,
    ):
        self.task_failures = tuple(task_failures)
        self.pool_failures = tuple(pool_failures)
        self.completed = completed
        self.total = total
        lines = [
            f"{completed}/{total} tasks completed, "
            f"{len(self.task_failures)} failed permanently"
        ]
        lines.extend(
            f"  task {f.index} ({f.label or 'unlabelled'}): "
            f"{f.kind} after {f.attempts} attempt(s): {f.error}"
            for f in self.task_failures
        )
        lines.extend(f"  pool: {p.kind}: {p.error}" for p in self.pool_failures)
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# Worker entry point
# ----------------------------------------------------------------------
def _run_trace_task(
    task: TraceTask,
    fault: FaultSpec | None = None,
    in_pool: bool = False,
) -> tuple[SimulationTrace, float]:
    """Worker entry point: simulate one task, timing its wall-clock.

    Module-level so it pickles by reference into pool workers.  ``fault``
    is the matched fault-injection spec for this submission (test
    harness); it trips *before* the simulation so a retried submission
    reproduces the identical trace.
    """
    start = time.perf_counter()
    if fault is not None:
        trip_sim_fault(fault, in_pool=in_pool)
    trace = run_scenario(task.config, attacks=list(task.attacks))
    return trace, time.perf_counter() - start


# ----------------------------------------------------------------------
# Batch bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _BatchState:
    """Mutable per-batch progress shared by the pool and serial paths.

    This is what makes recovery lossless: completed results live here,
    not inside a pool, so a fallback or respawn resumes from the exact
    set of unfinished tasks instead of re-running the batch.
    """

    tasks: list[TraceTask]
    results: list[SimulationTrace | None] = field(init=False)
    done: list[bool] = field(init=False)
    failed: list[bool] = field(init=False)
    attempts: list[int] = field(init=False)     # charged attempts (retry budget)
    submissions: list[int] = field(init=False)  # every submission (fault matching)
    retry_next: set[int] = field(default_factory=set)  # next submit is a charged retry
    task_failures: list[TaskFailure] = field(default_factory=list)
    pool_failures: list[PoolFailure] = field(default_factory=list)

    def __post_init__(self):
        n = len(self.tasks)
        self.results = [None] * n
        self.done = [False] * n
        self.failed = [False] * n
        self.attempts = [0] * n
        self.submissions = [0] * n

    def pending_indices(self) -> list[int]:
        return [
            i for i in range(len(self.tasks))
            if not self.done[i] and not self.failed[i]
        ]

    def label(self, i: int) -> str:
        return self.tasks[i].label or _default_label(self.tasks[i])


class TraceExecutor:
    """Order-preserving, supervised batch runner for independent simulations.

    Parameters
    ----------
    jobs:
        Maximum worker processes.  ``1`` (the default) never spawns a
        pool; higher values use up to ``min(jobs, len(tasks))`` workers.
    metrics:
        Optional :class:`~repro.runtime.metrics.RuntimeMetrics`; receives
        one ``simulated`` event per finished trace (completion order) plus
        ``retry`` / ``timeout`` / ``requeue`` / ``respawn`` / ``fallback``
        / ``task_failed`` / ``pool_failed`` supervision events.
    policy:
        A :class:`SupervisionPolicy` (defaults: 2 retries, no timeout,
        2 pool respawns).
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` for
        deterministic fault injection (tests/chaos benchmarks only).
    """

    #: Pool-infrastructure failures at pool *creation* that trigger the
    #: serial fallback.  Failures of individual futures are classified in
    #: the supervision loop instead (BrokenProcessPool → respawn,
    #: anything else → per-task retry).
    _POOL_ERRORS = (BrokenProcessPool, OSError, ImportError, PermissionError,
                    pickle.PicklingError)

    def __init__(
        self,
        jobs: int = 1,
        metrics: "RuntimeMetrics | None" = None,
        policy: SupervisionPolicy | None = None,
        faults: FaultPlan | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.metrics = metrics
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.faults = faults

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[TraceTask],
        on_result: Callable[[int, SimulationTrace], None] | None = None,
    ) -> list[SimulationTrace]:
        """Simulate every task; results are in task order.

        ``on_result(index, trace)`` is invoked exactly once per task in
        *completion* order, as soon as its trace exists — callers use it
        to flush partial batch results (cache writes, journal entries)
        before the batch finishes or fails.

        Raises :class:`FailureReport` if any task failed permanently;
        every other task still completed (and was delivered through
        ``on_result``) first.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        state = _BatchState(tasks)
        if self.jobs > 1 and len(tasks) > 1:
            try:
                self._run_parallel(state, on_result)
            except self._POOL_ERRORS as exc:
                self._record_fallback(
                    f"process pool unavailable ({type(exc).__name__}); running serially"
                )
        self._run_serial(state, on_result)
        if state.task_failures:
            raise FailureReport(
                task_failures=state.task_failures,
                pool_failures=state.pool_failures,
                completed=sum(state.done),
                total=len(tasks),
            )
        return state.results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _complete(self, state, i, trace, seconds, on_result) -> None:
        state.results[i] = trace
        state.done[i] = True
        if self.metrics is not None:
            self.metrics.record_simulated(state.label(i), seconds)
        if on_result is not None:
            on_result(i, trace)

    def _fail(self, state, i, kind, error) -> None:
        state.failed[i] = True
        failure = TaskFailure(
            index=i, label=state.label(i), kind=kind,
            attempts=state.attempts[i], error=error,
        )
        state.task_failures.append(failure)
        if self.metrics is not None:
            self.metrics.record_task_failure(state.label(i), f"{kind}: {error}")

    def _charge_submission(self, state, i) -> bool:
        """Advance task ``i``'s counters for one submission.

        Returns False when the task's retry budget is already spent (the
        caller must not submit it again).  The budget is only charged for
        the first submission and for retries the task earned itself
        (``state.retry_next``); innocent post-respawn requeues advance the
        submission counter but not the budget.
        """
        charged = state.submissions[i] == 0 or i in state.retry_next
        if charged and state.attempts[i] > self.policy.max_retries:
            return False
        state.retry_next.discard(i)
        state.submissions[i] += 1
        if charged:
            state.attempts[i] += 1
            if state.attempts[i] > 1 and self.metrics is not None:
                self.metrics.record_retry(
                    state.label(i), self.policy.backoff(state.attempts[i] - 1)
                )
        elif self.metrics is not None:
            self.metrics.record_requeue(state.label(i))
        return True

    def _task_fault(self, state, i) -> FaultSpec | None:
        if self.faults is None:
            return None
        return self.faults.sim_fault(i, state.submissions[i])

    def _record_fallback(self, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.record_fallback(reason)

    # ------------------------------------------------------------------
    # Serial path (jobs<=1, trivial batches, and the pool fallback) —
    # identical supervision minus the unenforceable timeout.
    # ------------------------------------------------------------------
    def _run_serial(self, state: _BatchState, on_result) -> None:
        for i in state.pending_indices():
            while True:
                if not self._charge_submission(state, i):
                    # budget spent on arrival (e.g. timeouts under the pool)
                    self._fail(state, i, "error", "retry budget exhausted")
                    break
                fault = self._task_fault(state, i)
                try:
                    trace, seconds = _run_trace_task(state.tasks[i], fault, in_pool=False)
                except Exception as exc:
                    if state.attempts[i] > self.policy.max_retries:
                        self._fail(state, i, "error", repr(exc))
                        break
                    state.retry_next.add(i)
                    _sleep(self.policy.backoff(state.attempts[i]))
                    continue
                self._complete(state, i, trace, seconds, on_result)
                break

    # ------------------------------------------------------------------
    # Pool path: spawn → drive → (respawn on break/timeout) → done.
    # ------------------------------------------------------------------
    def _run_parallel(self, state: _BatchState, on_result) -> None:
        respawns = 0
        while True:
            todo = state.pending_indices()
            if not todo:
                return
            # Pool creation errors propagate to run()'s serial fallback.
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(todo)))
            try:
                healthy = self._drive_pool(pool, state, todo, on_result)
            except BaseException:
                self._kill_pool(pool)
                raise
            if healthy:
                pool.shutdown(wait=False)
                return
            # The pool broke (worker crash) or was killed (hung task).
            respawns += 1
            if respawns > self.policy.max_pool_respawns:
                failure = PoolFailure(
                    "respawns-exhausted",
                    f"pool broke {respawns} times "
                    f"(budget {self.policy.max_pool_respawns}); finishing serially",
                )
                state.pool_failures.append(failure)
                if self.metrics is not None:
                    self.metrics.record_pool_failure(failure.error)
                self._record_fallback(failure.error)
                return
            if self.metrics is not None:
                self.metrics.record_respawn(
                    f"respawn {respawns}/{self.policy.max_pool_respawns}"
                )

    def _drive_pool(self, pool, state: _BatchState, todo, on_result) -> bool:
        """Supervise one pool until the batch finishes or the pool dies.

        Returns True when every pending task completed or failed
        permanently; False when the pool must be respawned (it broke, or
        a hung task forced us to kill it).  Completed results are already
        recorded in ``state`` either way.
        """
        futures: dict[Future, int] = {}
        deadlines: dict[Future, float] = {}

        def submit(i: int) -> Future | None:
            if not self._charge_submission(state, i):
                self._fail(state, i, "timeout", "retry budget exhausted")
                return None
            fut = pool.submit(
                _run_trace_task, state.tasks[i], self._task_fault(state, i), True
            )
            futures[fut] = i
            if self.policy.task_timeout is not None:
                deadlines[fut] = time.monotonic() + self.policy.task_timeout
            return fut

        try:
            for i in todo:
                submit(i)
        except BrokenProcessPool:
            self._kill_pool(pool)
            return False

        pending = set(futures)
        while pending:
            wait_timeout = None
            if deadlines:
                wait_timeout = max(
                    0.0, min(deadlines[f] for f in pending) - time.monotonic()
                )
            done, pending = wait(pending, timeout=wait_timeout,
                                 return_when=FIRST_COMPLETED)
            retry_indices: list[int] = []
            broken = False
            for fut in done:
                i = futures.pop(fut)
                deadlines.pop(fut, None)
                try:
                    trace, seconds = fut.result()
                except BrokenProcessPool:
                    # A worker died and this future's work is lost.  Keep
                    # draining the round: sibling futures that *did* resolve
                    # carry real results we must not throw away.
                    broken = True
                    continue
                except Exception as exc:
                    if state.attempts[i] > self.policy.max_retries:
                        self._fail(state, i, "error", repr(exc))
                    else:
                        retry_indices.append(i)
                    continue
                self._complete(state, i, trace, seconds, on_result)

            if broken:
                # Salvage anything else that finished before the breakage
                # was observed, then hand back for a pool respawn.  Tasks
                # that earned a retry this round keep their charge.
                for fut in list(pending):
                    if not fut.done():
                        continue
                    i = futures.pop(fut)
                    deadlines.pop(fut, None)
                    pending.discard(fut)
                    try:
                        trace, seconds = fut.result()
                    except Exception:
                        continue
                    self._complete(state, i, trace, seconds, on_result)
                state.retry_next.update(retry_indices)
                self._kill_pool(pool)
                return False

            if retry_indices:
                # One backoff wait covers the round's failures; each task's
                # own attempt count still drives its budget and fault plan.
                _sleep(max(self.policy.backoff(state.attempts[i])
                           for i in retry_indices))
                for i in retry_indices:
                    state.retry_next.add(i)
                    try:
                        fut = submit(i)
                    except BrokenProcessPool:
                        self._kill_pool(pool)
                        return False
                    if fut is not None:
                        pending.add(fut)

            # Hung tasks: charge them a retry and kill the pool — a worker
            # stuck inside C-level simulation code can only be cancelled by
            # terminating its process.
            if deadlines:
                now = time.monotonic()
                overdue = []
                for f in pending:
                    deadline = deadlines.get(f)
                    if deadline is None or deadline > now:
                        continue
                    if not f.running():
                        # Still queued behind busy workers — waiting for a
                        # slot is not hanging; restart the clock from the
                        # moment we observed it unstarted.
                        deadlines[f] = now + (self.policy.task_timeout or 0.0)
                        continue
                    overdue.append(f)
                if overdue:
                    for fut in overdue:
                        i = futures[fut]
                        if self.metrics is not None:
                            self.metrics.record_timeout(
                                state.label(i), self.policy.task_timeout or 0.0
                            )
                        if state.attempts[i] > self.policy.max_retries:
                            self._fail(
                                state, i, "timeout",
                                f"exceeded {self.policy.task_timeout}s "
                                f"(attempt {state.attempts[i]})",
                            )
                        else:
                            state.retry_next.add(i)
                    self._kill_pool(pool)
                    return False
        return True

    @staticmethod
    def _kill_pool(pool) -> None:
        """Tear a pool down *now*, terminating hung or orphaned workers.

        ``shutdown`` alone would block on a worker stuck in a simulation;
        the private ``_processes`` access is the only way the stdlib pool
        exposes its children (stable since 3.7, guarded regardless).
        """
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        for proc in processes:
            try:
                proc.terminate()
            except Exception:  # pragma: no cover
                pass
        for proc in processes:
            try:
                proc.join(1.0)
            except Exception:  # pragma: no cover
                pass


def _default_label(task: TraceTask) -> str:
    kind = "attack" if task.attacks else "normal"
    return f"{task.config.protocol}/{task.config.transport} {kind} seed={task.config.seed}"
