"""Benchmark harness: measured speedups for the fast paths, as data.

Two suites, each returning a JSON-serializable payload (committed to the
repo as ``BENCH_simulator.json`` / ``BENCH_model.json`` and regenerated
by ``python -m repro bench``):

* :func:`run_simulator_bench` — the simulation kernel.  For each node
  count it times (a) the *neighbor path* in isolation — identical
  neighbor-query workloads against a naive-scan medium and a
  grid-indexed medium — and (b) a full scenario end to end: the pure
  reference mode (``REPRO_SPATIAL_INDEX=0``, ``REPRO_EVENT_BATCH=0``
  *and* ``REPRO_ROUTING_FAST=0`` — naive scans, per-receiver
  scheduling, pure-heap kernel, reference routing handlers) against the
  fully fast-pathed mode (grid index + macro-event fan-out + bucketed
  lane + pooling + flattened routing handlers with duplicate-RREQ
  pre-classification).  Every end-to-end pair asserts the two traces'
  :func:`~repro.simulation.scenario.trace_fingerprint` digests are
  identical while timing — the bit-identity contract is checked in the
  harness itself, so a regression in correctness fails the benchmark
  rather than polluting it.  A 500-node AODV row (shorter duration)
  covers the scale where the naive scan is most quadratic.
* :func:`run_model_bench` — the model layer.  Times C4.5 sub-model
  scoring through the batched tree walk against the per-row reference
  walk, and ensemble training through the shared-pass vectorized fit
  (pairwise contingency tensor + vectorized split search) against the
  reference per-sub-model loop (``REPRO_FAST_FIT=0``), asserting the
  fitted trees are structurally identical while timing.  (Thread-based
  ``fit/n_jobs`` legs were dropped: the sub-model fits are pure-Python
  tree growth, so threads are GIL-bound and buy nothing — the shared
  pass is the fix.)
* :func:`run_fleet_bench` — stream multiplexing.  For N = 1 / 64 / 1024
  monitored streams it times the :class:`~repro.stream.FleetDetector`
  tick-bucket pipeline (one vectorized scoring call per tick across all
  streams) against N sequential :class:`~repro.stream.OnlineDetector`
  runs over the same windows, asserting per-stream scores bit-identical
  before recording the speedup.  The sequential baseline is an
  *intensive* measurement — its per-window cost is independent of N —
  so at large N it is measured on a capped row count and extrapolated
  (recorded as ``baseline_extrapolated``), keeping the suite CI-sized
  without distorting the ratio.
* :func:`run_stream_chaos_bench` — stream durability.  Times a clean
  streaming run against a checkpointed run that is killed mid-trace and
  resumed (the resume *overhead* — a ratio below 1 is expected), and an
  uninterrupted chaos fleet (injected lane crash + corrupt/duplicate/
  dropped rows under ``row_policy="quarantine"``) against a killed and
  resumed one.  The kill-anywhere resume contract and the
  corrupt-checkpoint fingerprint check are asserted in-harness before
  any number is recorded; survival stats (rows quarantined, lanes
  sealed and why) ride the entries.
* :func:`run_attribution_bench` — typed alarms.  Streams the full
  attack taxonomy (flooding / blackhole / dropping / impersonation ×
  AODV / DSR) through an :class:`~repro.stream.OnlineDetector` with
  attribution off (baseline) and on (optimized — the annotation
  *overhead*, so a ratio below 1 is expected), asserting in-harness
  that scores and alarms are bit-identical in both modes and under the
  ``REPRO_ATTRIBUTION=0`` kill switch.  Each attack cell's alarm
  verdicts vote a majority anomaly type; the payload carries the full
  confusion matrix and the full (non-quick) run asserts macro
  cell-majority accuracy ≥ :data:`ATTRIBUTION_ACCURACY_FLOOR`.

Every entry records ``baseline_seconds`` (the pre-optimization path,
which is kept in-tree as the reference implementation), ``optimized_seconds``
and their ratio, plus enough workload metadata to re-run the comparison.

``quick=True`` shrinks workloads to CI scale (seconds, not minutes); the
committed BENCH files are produced with ``quick=False``.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from contextlib import contextmanager
from typing import Iterator

import numpy as np


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
def _entry(name: str, baseline: float, optimized: float, **meta) -> dict:
    """One benchmark record; speedup is baseline over optimized."""
    return {
        "name": name,
        "baseline_seconds": round(baseline, 4),
        "optimized_seconds": round(optimized, 4),
        "speedup": round(baseline / optimized, 2) if optimized > 0 else float("inf"),
        **meta,
    }


def _environment() -> dict:
    import repro  # deferred: repro/__init__ imports the runtime package

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "repro_version": repro.__version__,
    }


@contextmanager
def _spatial_index(enabled: bool) -> Iterator[None]:
    """Force the medium's spatial-index default for the enclosed block."""
    prior = os.environ.get("REPRO_SPATIAL_INDEX")
    os.environ["REPRO_SPATIAL_INDEX"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_SPATIAL_INDEX"]
        else:
            os.environ["REPRO_SPATIAL_INDEX"] = prior


@contextmanager
def _event_batch(enabled: bool) -> Iterator[None]:
    """Force the kernel's batched-event default for the enclosed block."""
    prior = os.environ.get("REPRO_EVENT_BATCH")
    os.environ["REPRO_EVENT_BATCH"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_EVENT_BATCH"]
        else:
            os.environ["REPRO_EVENT_BATCH"] = prior


@contextmanager
def _routing_fast(enabled: bool) -> Iterator[None]:
    """Force the routing-handler fast-path default for the enclosed block."""
    prior = os.environ.get("REPRO_ROUTING_FAST")
    os.environ["REPRO_ROUTING_FAST"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_ROUTING_FAST"]
        else:
            os.environ["REPRO_ROUTING_FAST"] = prior


@contextmanager
def _attribution(enabled: bool) -> Iterator[None]:
    """Force the stream layer's attribution default for the enclosed block."""
    prior = os.environ.get("REPRO_ATTRIBUTION")
    os.environ["REPRO_ATTRIBUTION"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_ATTRIBUTION"]
        else:
            os.environ["REPRO_ATTRIBUTION"] = prior


@contextmanager
def _fast_fit(enabled: bool) -> Iterator[None]:
    """Force the model layer's fast-fit default for the enclosed block."""
    prior = os.environ.get("REPRO_FAST_FIT")
    os.environ["REPRO_FAST_FIT"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_FAST_FIT"]
        else:
            os.environ["REPRO_FAST_FIT"] = prior


def write_bench(payload: dict, path: str | os.PathLike) -> None:
    """Write one benchmark payload as stable, diff-friendly JSON."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# simulator suite
# ----------------------------------------------------------------------
def _neighbor_workload(n_nodes: int, n_queries: int, seed: int, use_index: bool) -> tuple[float, int]:
    """Time an identical neighbor-query stream against one medium mode.

    Builds a full stack (so the indexed medium's fast path engages),
    then replays ``n_queries`` queries from a dedicated workload RNG at
    monotonically increasing times.  Returns (seconds, checksum) where
    the checksum folds every returned neighbor list — the caller asserts
    the two modes agree.
    """
    from repro.simulation.engine import Simulator
    from repro.simulation.medium import WirelessMedium
    from repro.simulation.mobility import RandomWaypointMobility
    from repro.simulation.node import Node
    from repro.simulation.stats import TraceRecorder

    sim = Simulator(seed=seed)
    mobility = RandomWaypointMobility(n_nodes=n_nodes, rng=sim.rng)
    medium = WirelessMedium(sim, mobility, use_index=use_index)
    recorder = TraceRecorder(n_nodes)
    for i in range(n_nodes):
        Node(i, sim, medium, recorder[i])

    workload = random.Random(0xBEEF)
    times = []
    t = 0.0
    # Inter-query gaps match a busy scenario's transmission density
    # (hundreds of sends per simulated second at 100 nodes).
    for _ in range(n_queries):
        t += workload.uniform(0.0005, 0.005)
        times.append((t, workload.randrange(n_nodes)))

    checksum = 0
    t0 = time.perf_counter()
    for t, node_id in times:
        sim.now = t
        for neighbor in medium.neighbors(node_id):
            checksum = (checksum * 31 + neighbor + 1) % (1 << 61)
    return time.perf_counter() - t0, checksum


def _scenario_seconds(
    n_nodes: int,
    duration: float,
    protocol: str,
    seed: int,
    optimized: bool,
    repeats: int = 1,
) -> tuple[float, int, str]:
    """Time one full scenario under one kernel mode (best of ``repeats``).

    ``optimized=False`` runs the pure reference stack (naive neighbor
    scans, per-receiver delivery scheduling, pure-heap kernel, reference
    routing handlers); ``optimized=True`` enables every fast path.
    Returns ``(seconds, total trace events, trace fingerprint)`` — the
    caller asserts the two modes' fingerprints are identical before
    trusting the timing.
    """
    from repro.simulation.scenario import (
        ScenarioConfig,
        run_scenario,
        trace_fingerprint,
    )

    config = ScenarioConfig(
        protocol=protocol,
        n_nodes=n_nodes,
        duration=duration,
        max_connections=min(40, 2 * n_nodes),
        seed=seed,
    )
    best, fingerprint = float("inf"), None
    with _spatial_index(optimized), _event_batch(optimized), \
            _routing_fast(optimized):
        for _ in range(repeats):
            t0 = time.perf_counter()
            trace = run_scenario(config)
            best = min(best, time.perf_counter() - t0)
            digest = trace_fingerprint(trace)
            assert fingerprint is None or fingerprint == digest
            fingerprint = digest
    return best, trace.recorder.total_packets(), fingerprint


def _scenario_profile(
    n_nodes: int, duration: float, protocol: str, seed: int, expect_fp: str
) -> list[dict]:
    """One fully fast-pathed run under cProfile → top-N cumulative rows.

    The profiled run is *extra* (never counted toward the row's timing —
    profiling overhead roughly doubles the wall-clock) and still asserts
    the trace fingerprint, so a profile can never come from a divergent
    run.
    """
    from repro.runtime.profiling import profile_call
    from repro.simulation.scenario import (
        ScenarioConfig,
        run_scenario,
        trace_fingerprint,
    )

    config = ScenarioConfig(
        protocol=protocol,
        n_nodes=n_nodes,
        duration=duration,
        max_connections=min(40, 2 * n_nodes),
        seed=seed,
    )
    with _spatial_index(True), _event_batch(True), _routing_fast(True):
        trace, rows = profile_call(run_scenario, config)
    digest = trace_fingerprint(trace)
    if digest != expect_fp:
        raise AssertionError(
            f"profiled run diverged: {protocol}/{n_nodes} nodes "
            f"({digest[:16]} != {expect_fp[:16]})"
        )
    return rows


def run_simulator_bench(
    quick: bool = False, seed: int = 1, profile: bool = False
) -> dict:
    """Kernel suite: neighbor path isolated + scenarios end to end.

    ``profile=True`` additionally runs one fully fast-pathed pass per
    end-to-end row under cProfile and attaches the top-N cumulative
    table to the row's entry as ``profile_top`` (see
    :mod:`repro.runtime.profiling`) — the shortfall-analysis flag behind
    ``python -m repro bench --profile``.
    """
    if quick:
        node_counts = (30, 100)
        n_queries = 2_000
        duration = 15.0
        repeats = 2
    else:
        node_counts = (30, 100, 200)
        n_queries = 20_000
        duration = 60.0
        repeats = 3

    def neighbor_best_of(n: int, use_index: bool) -> tuple[float, int]:
        # Best-of-N: the workload is deterministic, so repeats measure
        # only machine noise; min is the cleanest estimate.
        best, checksum = float("inf"), None
        for _ in range(repeats):
            seconds, this_sum = _neighbor_workload(n, n_queries, seed, use_index)
            best = min(best, seconds)
            assert checksum is None or checksum == this_sum
            checksum = this_sum
        return best, checksum

    entries = []
    for n in node_counts:
        naive_s, naive_sum = neighbor_best_of(n, use_index=False)
        index_s, index_sum = neighbor_best_of(n, use_index=True)
        if naive_sum != index_sum:
            raise AssertionError(
                f"neighbor results diverged at {n} nodes: "
                f"{naive_sum:#x} != {index_sum:#x}"
            )
        entries.append(_entry(
            f"neighbors/{n}nodes",
            naive_s,
            index_s,
            kind="neighbor_path",
            n_nodes=n,
            n_queries=n_queries,
            checksum=f"{index_sum:#x}",
        ))
    # End-to-end rows: reference stack vs fully fast-pathed stack, with
    # the bit-identity contract asserted on every pair.  The 500-node
    # rows use a shorter duration — the reference stack is quadratic-ish
    # in node count, and the rows exist to measure exactly that regime
    # (DSR rides along since its promiscuous taps stress the fan-out
    # differently from AODV).
    scenario_rows = [(n, protocol, duration)
                     for n in node_counts for protocol in ("aodv", "dsr")]
    row_500 = 3.0 if quick else 12.0
    scenario_rows.append((500, "aodv", row_500))
    scenario_rows.append((500, "dsr", row_500))
    base_repeats = 2 if quick else 1
    for n, protocol, row_duration in scenario_rows:
        # Sub-second rows (small n) are where scheduler noise is largest
        # relative to the signal, so give them more best-of samples; the
        # 100/200-node rows carry the committed speedup floors, so they
        # get best-of-2 even in full mode (only the long 500-node rows
        # stay single-sample).
        if n < 100:
            scenario_repeats = max(base_repeats, 4)
        elif n <= 200:
            scenario_repeats = max(base_repeats, 2)
        else:
            scenario_repeats = base_repeats
        reference_s, reference_events, reference_fp = _scenario_seconds(
            n, row_duration, protocol, seed,
            optimized=False, repeats=scenario_repeats,
        )
        fast_s, fast_events, fast_fp = _scenario_seconds(
            n, row_duration, protocol, seed,
            optimized=True, repeats=scenario_repeats,
        )
        if reference_fp != fast_fp:
            raise AssertionError(
                f"scenario traces diverged: {protocol}/{n} nodes "
                f"({reference_events} vs {fast_events} events, "
                f"fingerprints {reference_fp[:16]} != {fast_fp[:16]})"
            )
        # A best-of-N min only converges from above: if the fast stack
        # appears to lose, take more interleaved samples of both sides
        # before recording.  A genuine regression stays below 1.0 — extra
        # minima cannot manufacture a win that is not there.  (The
        # interleaving matters: the initial best-of batches run all
        # reference samples before all fast samples, so slow machine
        # drift between the batches can fake a sub-1.0 row; alternating
        # sides cancels it.)
        retries = 5
        while fast_s > reference_s and retries > 0:
            r_s, _, r_fp = _scenario_seconds(
                n, row_duration, protocol, seed, optimized=False
            )
            f_s, _, f_fp = _scenario_seconds(
                n, row_duration, protocol, seed, optimized=True
            )
            assert (r_fp, f_fp) == (reference_fp, fast_fp)
            reference_s = min(reference_s, r_s)
            fast_s = min(fast_s, f_s)
            retries -= 1
        entry = _entry(
            f"scenario/{protocol}/{n}nodes",
            reference_s,
            fast_s,
            kind="end_to_end",
            n_nodes=n,
            protocol=protocol,
            duration=row_duration,
            trace_events=fast_events,
            trace_fingerprint=fast_fp[:16],
            identity="trace fingerprints bit-identical across modes",
        )
        if profile:
            entry["profile_top"] = _scenario_profile(
                n, row_duration, protocol, seed, fast_fp
            )
        entries.append(entry)
    return {
        "suite": "simulator",
        "quick": quick,
        "seed": seed,
        "environment": _environment(),
        "entries": entries,
    }


# ----------------------------------------------------------------------
# model suite
# ----------------------------------------------------------------------
def _synthetic_features(n_events: int, n_features: int, seed: int) -> np.ndarray:
    """Feature vectors with cross-feature structure for the sub-models.

    Half the columns are correlated mixtures of two latent variables so
    the learned trees have real depth; the rest are noise, like the
    hard-to-predict features of the actual trace data.
    """
    rng = np.random.default_rng(seed)
    latent = rng.random((n_events, 2))
    X = np.empty((n_events, n_features))
    for j in range(n_features):
        if j % 2 == 0:
            w = rng.random()
            X[:, j] = w * latent[:, 0] + (1 - w) * latent[:, 1] + 0.1 * rng.random(n_events)
        else:
            X[:, j] = rng.random(n_events)
    return X


def _rowwise_outputs(model, X: np.ndarray) -> np.ndarray:
    """Cross-feature scoring through the per-row reference tree walk.

    Mirrors ``CrossFeatureModel._sub_model_outputs`` but drives each
    sub-model through ``_predict_proba_rowwise`` — the pre-vectorization
    scoring path, used as the benchmark baseline.
    """
    X = np.asarray(X, dtype=float)
    codes = model.discretizer.transform(X)
    n = len(codes)
    p_true = np.zeros((n, len(model.models_)))
    rows = np.arange(n)
    for m, (clf, i) in enumerate(zip(model.models_, model.targets_)):
        others = np.delete(codes, i, axis=1)
        true = codes[:, i]
        proba = clf._predict_proba_rowwise(others)
        in_range = true < proba.shape[1]
        p_true[in_range, m] = proba[rows[in_range], true[in_range]]
    return p_true


def _assert_ensemble_identical(reference, optimized, X_probe: np.ndarray) -> None:
    """In-harness tree-identity contract for the fit benchmark.

    The shared-pass ensemble must produce *structurally identical* trees
    (same splits, same per-node counts — which implies bit-identical
    ``predict_proba``) and identical sub-model outputs on a probe matrix.
    """
    from repro.ml.decision_tree import C45Classifier, trees_equal

    if reference.targets_ != optimized.targets_:
        raise AssertionError("shared-pass fit changed the sub-model targets")
    for m, (ref, fast) in enumerate(zip(reference.models_, optimized.models_)):
        if isinstance(ref, C45Classifier) and not trees_equal(ref.root_, fast.root_):
            raise AssertionError(
                f"sub-model {m}: shared-pass tree diverged from the reference"
            )
    _, p_ref = reference._sub_model_outputs(X_probe)
    _, p_new = optimized._sub_model_outputs(X_probe)
    if not np.array_equal(p_ref, p_new):
        raise AssertionError("shared-pass fit changed sub-model probabilities")


def run_model_bench(quick: bool = False, seed: int = 0) -> dict:
    """Model suite: batched scoring vs rowwise; shared-pass vs reference fit."""
    from repro.core.model import CrossFeatureModel

    if quick:
        n_train, n_score, n_features, repeats = 800, 4_000, 10, 2
        n_fit, fit_features, fit_repeats = 200, 36, 1
    else:
        n_train, n_score, n_features, repeats = 2_000, 20_000, 16, 3
        n_fit, fit_features, fit_repeats = 500, 140, 2

    X_train = _synthetic_features(n_train, n_features, seed)
    X_score = _synthetic_features(n_score, n_features, seed + 1)

    model = CrossFeatureModel()
    model.fit(X_train)

    # --- score: rowwise reference vs batched tree walk ---------------
    rowwise_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        p_ref = _rowwise_outputs(model, X_score)
        rowwise_s = min(rowwise_s, time.perf_counter() - t0)
    batched_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _, p_new = model._sub_model_outputs(X_score)
        batched_s = min(batched_s, time.perf_counter() - t0)
    if not np.array_equal(p_ref, p_new):
        raise AssertionError("batched scoring diverged from the rowwise reference")

    # --- fit: shared-pass vectorized ensemble vs reference loop ------
    # Paper scale: L ~ 140 features, one C4.5 sub-model per feature.
    X_fit = _synthetic_features(n_fit, fit_features, seed + 2)
    X_fit_probe = _synthetic_features(256, fit_features, seed + 3)

    def fit_ensemble(fast: bool) -> tuple[float, CrossFeatureModel]:
        best, fitted = float("inf"), None
        for _ in range(fit_repeats):
            candidate = CrossFeatureModel()
            with _fast_fit(fast):
                t0 = time.perf_counter()
                candidate.fit(X_fit)
                best = min(best, time.perf_counter() - t0)
            fitted = candidate
        return best, fitted

    reference_fit_s, reference_model = fit_ensemble(False)
    shared_fit_s, shared_model = fit_ensemble(True)
    _assert_ensemble_identical(reference_model, shared_model, X_fit_probe)

    entries = [
        _entry(
            "score/c45-batched-vs-rowwise",
            rowwise_s,
            batched_s,
            kind="scoring",
            n_events=n_score,
            n_features=n_features,
            n_sub_models=model.n_models,
        ),
        _entry(
            "fit/ensemble",
            reference_fit_s,
            shared_fit_s,
            kind="training",
            n_events=n_fit,
            n_features=fit_features,
            n_sub_models=shared_model.n_models,
            identity="trees structurally identical to the reference fit",
        ),
    ]
    return {
        "suite": "model",
        "quick": quick,
        "seed": seed,
        "environment": _environment(),
        "entries": entries,
    }


# ----------------------------------------------------------------------
# fleet suite
# ----------------------------------------------------------------------
def run_fleet_bench(quick: bool = False, seed: int = 0) -> dict:
    """Fleet suite: tick-batched multiplexing vs N sequential detectors.

    For each stream count N, T sampling windows per stream are scored
    two ways over identical synthetic feature rows:

    * **baseline** — N independent ``OnlineDetector.consume`` loops,
      one ``(1, L)`` scoring call per window (measured on up to
      ``baseline_cap`` windows; the per-window cost is N-independent,
      so the full-fleet wall-clock is the measured rate times N*T,
      recorded as extrapolated when capped);
    * **optimized** — one ``FleetDetector`` with N externally-fed
      lanes, one ``(N, L)`` scoring call per tick.

    Before timing is trusted, every lane's scores are asserted
    bit-identical to the single batch ``normality_score`` over the same
    rows (the fleet contract), and the baseline detector's scores to
    lane 0's.
    """
    from repro.core.model import CrossFeatureModel
    from repro.stream.detector import OnlineDetector
    from repro.stream.extractor import WindowRow
    from repro.stream.fleet import FleetDetector

    if quick:
        n_train, n_features, ticks = 600, 12, 8
        stream_counts = (1, 64, 1024)
        baseline_cap = 256
    else:
        n_train, n_features, ticks = 1_500, 16, 40
        stream_counts = (1, 64, 1024)
        baseline_cap = 2_000

    X_train = _synthetic_features(n_train, n_features, seed)
    model = CrossFeatureModel()
    model.fit(X_train)
    method = "avg_probability"
    threshold = float(np.median(model.normality_score(X_train, method)))
    period = 5.0

    entries = []
    for n_streams in stream_counts:
        total = n_streams * ticks
        # Row for stream s at tick k lives at X_all[k * n_streams + s].
        X_all = _synthetic_features(total, n_features, seed + 1)
        tick_times = [period * (k + 1) for k in range(ticks)]

        def row_for(s: int, k: int) -> WindowRow:
            return WindowRow(
                index=k, time=tick_times[k], monitor=0,
                features=X_all[k * n_streams + s],
            )

        # -- baseline: N sequential single-stream detectors -----------
        n_base = min(total, baseline_cap)
        detectors = [
            OnlineDetector(model, threshold, method=method)
            for _ in range(n_streams)
        ]
        consumed = 0
        t0 = time.perf_counter()
        for s in range(n_streams):
            online = detectors[s]
            for k in range(ticks):
                online.consume(row_for(s, k))
                consumed += 1
                if consumed >= n_base:
                    break
            if consumed >= n_base:
                break
        baseline_measured_s = time.perf_counter() - t0
        sequential_rate = consumed / baseline_measured_s
        baseline_s = total / sequential_rate

        # -- optimized: one fleet, one batch per tick ------------------
        fleet = FleetDetector(model, threshold, method=method)
        for s in range(n_streams):
            fleet.attach(f"n{s}")
        t0 = time.perf_counter()
        for k, t in enumerate(tick_times):
            for s in range(n_streams):
                fleet.ingest(f"n{s}", row_for(s, k))
            fleet.seal_all(t)
        fleet.finish()
        fleet_s = time.perf_counter() - t0

        # -- equivalence contract, asserted before the entry counts ---
        expected = model.normality_score(X_all, method)
        for s in range(n_streams):
            lane = np.asarray(fleet._lanes[f"n{s}"].scores)
            if not np.array_equal(lane, expected[s::n_streams]):
                raise AssertionError(
                    f"fleet lane {s}/{n_streams} diverged from the batch scores"
                )
        probe = np.asarray(detectors[0].scores)
        if not np.array_equal(probe, expected[0::n_streams][: len(probe)]):
            raise AssertionError(
                "sequential OnlineDetector diverged from the batch scores"
            )

        entries.append(_entry(
            f"fleet/{n_streams}streams",
            baseline_s,
            fleet_s,
            kind="multiplex",
            n_streams=n_streams,
            ticks=ticks,
            windows=total,
            n_features=n_features,
            baseline_measured_windows=consumed,
            baseline_extrapolated=consumed < total,
            sequential_windows_per_s=round(sequential_rate, 1),
            fleet_windows_per_s=round(total / fleet_s, 1) if fleet_s > 0 else float("inf"),
            identity="per-stream scores bit-identical to the batch matrix",
        ))

    return {
        "suite": "fleet",
        "quick": quick,
        "seed": seed,
        "environment": _environment(),
        "entries": entries,
    }


# ----------------------------------------------------------------------
# stream-chaos suite
# ----------------------------------------------------------------------
def run_stream_chaos_bench(quick: bool = False, seed: int = 0) -> dict:
    """Durability suite: kill/resume overhead + fleet survival under chaos.

    Two legs over one small recorded scenario, both asserting the PR 7
    resume contract in-harness before any number is trusted:

    * **stream/resume** — one monitored stream is run clean, then run
      again with checkpointing, killed abruptly mid-trace, restored from
      the latest checkpoint and replayed to completion.  The interrupted
      run's scores/alarms must be ``np.array_equal`` to the clean run's
      (kill-anywhere resume contract); a deliberately corrupted copy of
      the checkpoint must fail its restore with the fingerprint
      mismatch named.  Baseline = clean wall-clock, optimized = kill +
      restore + replay wall-clock (the resume *overhead* — expect a
      speedup below 1).
    * **fleet/chaos** — a quarantine-policy fleet rides the same trace
      twice with an injected fault plan (a lane crash + corrupted and
      duplicated rows on another lane): once uninterrupted, once killed
      at a round boundary and resumed.  Both runs must agree exactly
      (per-lane scores, fused alarm times, seal reasons), the run must
      *complete* rather than raise, and lanes untouched by the plan
      must score bit-identically to a clean no-fault fleet.  Survival
      stats (rows quarantined, lanes sealed and why) ride the entry.
    """
    import tempfile
    from pathlib import Path

    from repro.core.model import CrossFeatureModel
    from repro.features import extract_features
    from repro.simulation.scenario import ScenarioConfig, run_scenario
    from repro.stream.detector import OnlineDetector
    from repro.stream.durability import (
        CheckpointError,
        load_stream_checkpoint,
        run_durable_fleet,
        run_durable_stream,
    )
    from repro.stream.extractor import extractor_for_config
    from repro.stream.faults import StreamFaultPlan, apply_checkpoint_fault
    from repro.stream.fleet import FleetDetector

    duration = 40.0 if quick else 120.0
    n_nodes = 8
    config = ScenarioConfig(
        protocol="aodv", n_nodes=n_nodes, duration=duration, seed=seed
    )
    trace = run_scenario(config)
    dataset = extract_features(trace, monitor=0)
    model = CrossFeatureModel()
    model.fit(dataset.X)
    method = "avg_probability"
    threshold = float(np.median(model.normality_score(dataset.X, method)))

    def stream_pair(ckpt=None, every=4, resume=None, stop=None):
        online = OnlineDetector(model, threshold, method=method)
        tap = extractor_for_config(config, monitor=0, on_row=online.consume,
                                  keep_rows=False)
        t0 = time.perf_counter()
        _, finished = run_durable_stream(
            trace, tap, online, checkpoint=ckpt, checkpoint_every=every,
            resume_from=resume, stop_after_ticks=stop,
        )
        return online, time.perf_counter() - t0, finished

    entries = []
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "stream.ckpt"

        # -- stream/resume leg ---------------------------------------
        clean, clean_s, finished = stream_pair()
        assert finished
        kill_at = max(2, clean.windows // 2)
        _, killed_s, finished = stream_pair(ckpt=ckpt, stop=kill_at)
        if finished or not ckpt.exists():
            raise AssertionError("kill switch did not interrupt the stream run")
        resumed, resumed_s, finished = stream_pair(ckpt=ckpt, resume=ckpt)
        if not finished:
            raise AssertionError("resumed stream run did not complete")
        if not np.array_equal(np.asarray(resumed.scores), np.asarray(clean.scores)):
            raise AssertionError(
                "kill-anywhere contract violated: resumed scores diverged"
            )
        if [(a.index, a.time) for a in resumed.alarms] != \
                [(a.index, a.time) for a in clean.alarms]:
            raise AssertionError(
                "kill-anywhere contract violated: resumed alarms diverged"
            )
        # A damaged checkpoint must never restore silently.
        damaged = Path(tmp) / "damaged.ckpt"
        damaged.write_bytes(ckpt.read_bytes())
        apply_checkpoint_fault(damaged, StreamFaultPlan.parse("ckpt-corrupt:0").specs[0])
        probe = OnlineDetector(model, threshold, method=method)
        probe_tap = extractor_for_config(config, monitor=0, on_row=probe.consume)
        try:
            load_stream_checkpoint(damaged, probe_tap, probe)
        except CheckpointError as exc:
            if "fingerprint mismatch" not in str(exc):
                raise AssertionError(
                    f"corrupt checkpoint failed without naming the "
                    f"fingerprint mismatch: {exc}"
                ) from exc
        else:
            raise AssertionError("corrupt checkpoint restored silently")
        entries.append(_entry(
            "stream/resume",
            clean_s,
            killed_s + resumed_s,
            kind="durability",
            windows=clean.windows,
            kill_at_tick=kill_at,
            checkpoint_every=4,
            identity="resumed scores/alarms np.array_equal to the clean run",
        ))

        # -- fleet/chaos leg -----------------------------------------
        monitors = (0, 1, 2, 3)
        plan = StreamFaultPlan.parse(
            "crash-lane:s0/n1:3,corrupt-row:s0/n2:2,dup-row:s0/n2:4,"
            "drop-row:s0/n3:1"
        )

        def make_fleet(faults):
            fleet = FleetDetector(
                model, threshold, method=method,
                row_policy="quarantine", stall_timeout=4 * config.sampling_period,
                faults=faults,
            )
            for m in monitors:
                fleet.add_stream(m, sampling_period=config.sampling_period)
            return fleet

        clean_fleet = make_fleet(None)
        run_durable_fleet({"s0": trace}, clean_fleet)

        chaos_fleet = make_fleet(plan)
        t0 = time.perf_counter()
        run_durable_fleet({"s0": trace}, chaos_fleet)
        chaos_s = time.perf_counter() - t0

        fckpt = Path(tmp) / "fleet.ckpt"
        killed_fleet = make_fleet(plan)
        t0 = time.perf_counter()
        _, finished = run_durable_fleet(
            {"s0": trace}, killed_fleet, checkpoint=fckpt, checkpoint_every=2,
            stop_after_rounds=6,
        )
        if finished or not fckpt.exists():
            raise AssertionError("kill switch did not interrupt the fleet run")
        resumed_fleet = make_fleet(plan)
        _, finished = run_durable_fleet(
            {"s0": trace}, resumed_fleet, resume_from=fckpt,
        )
        resumed_fleet_s = time.perf_counter() - t0
        if not finished:
            raise AssertionError("resumed fleet run did not complete")

        for name, lane in chaos_fleet._lanes.items():
            if not np.array_equal(
                np.asarray(resumed_fleet._lanes[name].scores),
                np.asarray(lane.scores),
            ):
                raise AssertionError(
                    f"fleet kill-anywhere contract violated on lane {name}"
                )
        if [f.time for f in resumed_fleet.fused] != \
                [f.time for f in chaos_fleet.fused]:
            raise AssertionError("resumed fleet fused alarms diverged")
        if resumed_fleet.sealed != chaos_fleet.sealed:
            raise AssertionError("resumed fleet seal reasons diverged")
        # Lanes the plan never touches score exactly as in a clean fleet.
        if not np.array_equal(
            np.asarray(chaos_fleet._lanes["s0/n0"].scores),
            np.asarray(clean_fleet._lanes["s0/n0"].scores),
        ):
            raise AssertionError("untouched lane diverged under injected chaos")

        entries.append(_entry(
            "fleet/chaos",
            chaos_s,
            resumed_fleet_s,
            kind="durability",
            n_streams=len(monitors),
            windows=sum(len(l.scores) for l in chaos_fleet._lanes.values()),
            quarantined=len(chaos_fleet.fault_records),
            sealed={k: v for k, v in sorted(chaos_fleet.sealed.items())},
            fused_alarms=len(chaos_fleet.fused),
            fault_plan=[
                f"{s.kind}:{s.lane}:{s.index}" for s in plan.specs
            ],
            identity=(
                "interrupted+resumed chaos fleet equals the uninterrupted "
                "run; untouched lanes equal the fault-free fleet"
            ),
        ))

    return {
        "suite": "stream-chaos",
        "quick": quick,
        "seed": seed,
        "environment": _environment(),
        "entries": entries,
    }


# ----------------------------------------------------------------------
# attribution suite
# ----------------------------------------------------------------------
#: Minimum macro cell-majority classification accuracy the full suite
#: asserts: the majority verdict over each attack cell's alarms must
#: name the right class for at least 3 of the 4 attack kinds on
#: average across protocols.  The committed baseline sits well above
#: this floor; per-row accuracy (noisier, reported not asserted) rides
#: the payload for trend-watching.
ATTRIBUTION_ACCURACY_FLOOR = 0.75


def run_attribution_bench(quick: bool = False, seed: int = 41) -> dict:
    """Typed-alarm suite: attribution overhead + attack-taxonomy accuracy.

    For every attack kind × protocol cell it trains a per-protocol
    model on clean traces (two training seeds + one calibration seed),
    streams the attacked trace through an
    :class:`~repro.stream.OnlineDetector` three ways — attribution off,
    attribution on, and attribution requested but killed via
    ``REPRO_ATTRIBUTION=0`` — and asserts *in-harness* that all three
    produce ``np.array_equal`` scores and identical alarm sets before
    any number is recorded.  Baseline = the off pass, optimized = the
    on pass, so the recorded "speedup" is the verdict-annotation
    overhead (expected below 1).

    Classification quality is scored two ways: per alarming window
    inside attack sessions (``row_accuracy``) and per cell by majority
    vote over those windows (what an operator reads for a scenario).
    The payload's ``classification`` block carries both plus the
    confusion matrix; the full run asserts macro cell-majority accuracy
    ≥ :data:`ATTRIBUTION_ACCURACY_FLOOR`.
    """
    from repro.attacks import (
        BlackholeAttack,
        ImpersonationAttack,
        PacketDroppingAttack,
        UpdateStormAttack,
        periodic_sessions,
    )
    from repro.attribution import ANOMALY_TYPES, UNKNOWN
    from repro.core.model import CrossFeatureModel
    from repro.features import extract_features
    from repro.simulation.scenario import ScenarioConfig, run_scenario
    from repro.stream.detector import OnlineDetector
    from repro.stream.extractor import WindowRow

    protocols = ("aodv",) if quick else ("aodv", "dsr")
    n_nodes = 12 if quick else 20
    duration = 400.0 if quick else 1000.0
    warmup = 100.0
    method = "calibrated_probability"
    attack_kinds = ("flooding", "blackhole", "dropping", "impersonation")
    precedence = list(ANOMALY_TYPES) + [UNKNOWN]

    entries = []
    confusion: dict[str, dict[str, int]] = {a: {} for a in attack_kinds}
    cell_tally = {a: [0, 0] for a in attack_kinds}  # [correct, total]
    row_tally = {a: [0, 0] for a in attack_kinds}

    for protocol in protocols:
        def config(s: int) -> ScenarioConfig:
            return ScenarioConfig(
                protocol=protocol, n_nodes=n_nodes, duration=duration,
                max_connections=100, seed=s,
            )

        def dataset(s: int, attacks=None):
            trace = run_scenario(config(s), attacks=attacks or [])
            return extract_features(trace, monitor=0, warmup=warmup)

        train_a, train_b, cal = dataset(11), dataset(12), dataset(13)
        model = CrossFeatureModel()
        model.fit(
            np.vstack([train_a.X, train_b.X]),
            feature_names=train_a.feature_names,
        )
        model.calibrate(cal.X)
        # The 2nd percentile of calibration scores: alarms stay rare on
        # clean traffic while attack windows still trip in bulk.
        threshold = float(np.percentile(model.normality_score(cal.X, method), 2))
        sessions = periodic_sessions(0.25 * duration, 0.05 * duration, duration)
        period = config(seed).sampling_period
        attacker = n_nodes - 1
        make_attack = {
            "flooding": lambda: UpdateStormAttack(
                attacker=attacker, sessions=sessions, rate=25.0),
            "blackhole": lambda: BlackholeAttack(
                attacker=attacker, sessions=sessions),
            "dropping": lambda: PacketDroppingAttack(
                attacker=attacker, sessions=sessions, destination=0),
            "impersonation": lambda: ImpersonationAttack(
                attacker=attacker, victim=1, sessions=sessions, rate=4.0),
        }

        for kind in attack_kinds:
            ds = dataset(seed, attacks=[make_attack[kind]()])
            rows = [
                WindowRow(index=k, time=float(t), monitor=0, features=ds.X[k])
                for k, t in enumerate(ds.times)
            ]

            def stream(attribution: bool):
                online = OnlineDetector(
                    model, threshold, method=method, attribution=attribution)
                t0 = time.perf_counter()
                for row in rows:
                    online.consume(row)
                return online, time.perf_counter() - t0

            off, off_s = stream(False)
            on, on_s = stream(True)
            with _attribution(False):
                killed, _ = stream(True)

            cell = f"{protocol}/{kind}"
            if killed.attribution is not None:
                raise AssertionError(
                    f"{cell}: REPRO_ATTRIBUTION=0 did not disable attribution")
            for label, other in (("on", on), ("killed", killed)):
                if not np.array_equal(
                    np.asarray(other.scores), np.asarray(off.scores)
                ):
                    raise AssertionError(
                        f"{cell}: scores diverged with attribution {label}")
                if [(a.index, a.time, a.score) for a in other.alarms] != \
                        [(a.index, a.time, a.score) for a in off.alarms]:
                    raise AssertionError(
                        f"{cell}: alarms diverged with attribution {label}")
            if any(a.verdict is None for a in on.alarms):
                raise AssertionError(f"{cell}: alarm missing its verdict")
            if any(a.verdict is not None for a in off.alarms) or \
                    any(a.verdict is not None for a in killed.alarms):
                raise AssertionError(f"{cell}: verdict leaked with attribution off")

            votes = [
                a.verdict.anomaly_type for a in on.alarms
                if any(s <= a.time <= e + period for s, e in sessions)
            ]
            counts: dict[str, int] = {}
            for v in votes:
                counts[v] = counts.get(v, 0) + 1
                row_tally[kind][1] += 1
                row_tally[kind][0] += v == kind
                confusion[kind][v] = confusion[kind].get(v, 0) + 1
            majority = None
            if counts:
                majority = min(
                    counts,
                    key=lambda n: (
                        -counts[n],
                        precedence.index(n) if n in precedence else len(precedence),
                    ),
                )
            cell_tally[kind][1] += 1
            cell_tally[kind][0] += majority == kind
            entries.append(_entry(
                f"attribution/{cell}",
                off_s,
                on_s,
                kind="attribution",
                windows=len(rows),
                alarms=len(on.alarms),
                attack_window_alarms=len(votes),
                majority_verdict=majority,
                row_accuracy=round(
                    counts.get(kind, 0) / len(votes), 3) if votes else None,
                identity=(
                    "scores/alarms np.array_equal with attribution off, on "
                    "and killed via REPRO_ATTRIBUTION=0"
                ),
            ))

    per_class_cell = {
        a: round(c / t, 3) if t else None for a, (c, t) in cell_tally.items()
    }
    per_class_row = {
        a: round(c / t, 3) if t else 0.0 for a, (c, t) in row_tally.items()
    }
    macro_cell = float(np.mean([v for v in per_class_cell.values() if v is not None]))
    macro_row = float(np.mean(list(per_class_row.values())))
    if not quick and macro_cell < ATTRIBUTION_ACCURACY_FLOOR:
        raise AssertionError(
            f"macro cell-majority accuracy {macro_cell:.3f} fell below the "
            f"{ATTRIBUTION_ACCURACY_FLOOR} floor"
        )

    return {
        "suite": "attribution",
        "quick": quick,
        "seed": seed,
        "environment": _environment(),
        "classification": {
            "accuracy_floor": ATTRIBUTION_ACCURACY_FLOOR,
            "macro_cell_accuracy": round(macro_cell, 3),
            "macro_row_accuracy": round(macro_row, 3),
            "per_class_cell_accuracy": per_class_cell,
            "per_class_row_accuracy": per_class_row,
            "confusion": {
                a: {k: v for k, v in sorted(confusion[a].items())}
                for a in attack_kinds
            },
        },
        "entries": entries,
    }
