"""Progress and timing instrumentation for the runtime layer.

A :class:`RuntimeMetrics` instance rides along with every
:class:`~repro.runtime.session.Session`: the executor reports per-trace
wall-clock plus every supervision decision (retries, timeouts, requeues,
pool respawns, permanent failures), the artifact cache reports hits /
misses / evictions / write failures, the resume journal reports traces
recovered from an interrupted sweep, and an optional callback hook
receives each :class:`TraceEvent` as it happens — the CLI uses it to
print live progress while traces simulate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class TraceEvent:
    """One observable runtime happening, delivered to the metrics hook.

    ``kind`` is one of:

    * ``"cache_hit"`` — an artifact was loaded from the on-disk cache;
    * ``"cache_miss"`` — an artifact was absent (or unreadable) on disk;
    * ``"simulated"`` — a trace finished simulating (``seconds`` holds its
      wall-clock);
    * ``"evicted"`` — a cache entry was removed by the eviction policy;
    * ``"fallback"`` — the process pool was unavailable (or its respawn
      budget ran out) and the executor fell back to serial execution
      (``label`` holds the reason);
    * ``"retry"`` — a failed or timed-out task was resubmitted
      (``seconds`` holds the backoff that preceded it);
    * ``"timeout"`` — a task overran the per-task timeout and its worker
      was cancelled (``seconds`` holds the limit);
    * ``"requeue"`` — an unfinished task was resubmitted after a pool
      respawn through no fault of its own (no retry budget charged);
    * ``"respawn"`` — a broken or deliberately killed process pool was
      replaced (``label`` holds the reason);
    * ``"resumed"`` — a journaled trace from an interrupted sweep was
      served from the cache instead of re-simulating;
    * ``"task_failed"`` — a task exhausted its retry budget (``label``
      holds the task label, the failure is in the final
      :class:`~repro.runtime.executor.FailureReport`);
    * ``"pool_failed"`` — pool infrastructure failed permanently
      (``label`` holds the reason);
    * ``"cache_write_failed"`` — an artifact-cache write was refused by
      the disk (``label`` holds the error);
    * ``"cache_off"`` — repeated write failures disabled cache writes for
      the rest of the run;
    * ``"alarm"`` — the online detector raised an anomaly alarm during a
      streaming run (``label`` describes it, ``seconds`` holds the
      scoring latency);
    * ``"fused_alarm"`` — a fleet run's cross-monitor quorum fused the
      per-stream alarms into a network-level verdict (``label``
      describes it, ``seconds`` holds the batch scoring latency);
    * ``"verdict"`` — attribution classified an alarm (``label`` holds
      the typed ``type=... features=...`` fragment; the alarm's own
      ``"alarm"``/``"fused_alarm"`` event carries the same fragment, so
      the CLI prints alarms once and this event stays count-only);
    * ``"fleet_batch"`` — the fleet scored one tick's window bucket in
      a single vectorized call (``label`` holds the batch size,
      ``seconds`` the call's wall-clock);
    * ``"stream_fault"`` — a quarantine-mode detector caught a degraded
      row (late / duplicate / NaN / out-of-range; ``label`` names the
      lane, kind and row);
    * ``"lane_sealed"`` — a fleet lane was abnormally sealed (``label``
      holds ``"<lane>: <reason>"`` — dropped / stalled / faulted /
      crashed);
    * ``"duplicate_seal"`` — a seal or drop hit an already-finished
      lane and was counted as an idempotent no-op;
    * ``"checkpoint"`` — a durable streaming run snapshot its state to
      disk (``label`` holds the replay position);
    * ``"restore"`` — a durable streaming run restored a checkpoint and
      resumed (``label`` holds the restored position);
    * ``"stage"`` — a pipeline stage finished (``label`` holds the stage
      name — ``simulate`` / ``extract`` / ``fit`` / ``score`` /
      ``stream`` / ``fleet`` — and ``seconds`` its wall-clock).
    """

    kind: str
    label: str = ""
    seconds: float = 0.0


class RuntimeMetrics:
    """Counters + timings for one runtime session.

    Parameters
    ----------
    on_event:
        Optional callback invoked with every :class:`TraceEvent` as it is
        recorded.  Exceptions raised by the callback propagate — it is a
        local hook, not a plugin boundary.
    """

    def __init__(self, on_event: Callable[[TraceEvent], None] | None = None):
        self.on_event = on_event
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0
        self.evictions = 0
        self.fallbacks = 0
        self.retries = 0
        self.timeouts = 0
        self.requeues = 0
        self.respawns = 0
        self.resumed = 0
        self.task_failures = 0
        self.pool_failures = 0
        self.cache_write_failures = 0
        self.alarms = 0
        self.fused_alarms = 0
        self.verdicts = 0
        self.fleet_batches = 0
        self.fleet_windows = 0
        self.stream_faults = 0
        self.lanes_sealed = 0
        self.duplicate_seals = 0
        self.checkpoints = 0
        self.restores = 0
        #: (label, wall-clock seconds) per simulated trace, completion order.
        self.trace_seconds: list[tuple[str, float]] = []
        #: Accumulated wall-clock per pipeline stage (``simulate`` /
        #: ``extract`` / ``fit`` / ``score``) — where a session's time goes.
        self.stage_seconds: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _emit(self, kind: str, label: str = "", seconds: float = 0.0) -> None:
        if self.on_event is not None:
            self.on_event(TraceEvent(kind=kind, label=label, seconds=seconds))

    def record_cache_hit(self, label: str = "") -> None:
        """An artifact was served from the on-disk cache."""
        self.cache_hits += 1
        self._emit("cache_hit", label)

    def record_cache_miss(self, label: str = "") -> None:
        """An artifact had to be (re)computed."""
        self.cache_misses += 1
        self._emit("cache_miss", label)

    def record_simulated(self, label: str, seconds: float) -> None:
        """One trace finished simulating."""
        self.simulations += 1
        self.trace_seconds.append((label, seconds))
        self._emit("simulated", label, seconds)

    def record_eviction(self, label: str = "") -> None:
        """The cache eviction policy removed an entry."""
        self.evictions += 1
        self._emit("evicted", label)

    def record_fallback(self, reason: str) -> None:
        """The parallel executor degraded to serial execution."""
        self.fallbacks += 1
        self._emit("fallback", reason)

    # -- supervision ---------------------------------------------------
    def record_retry(self, label: str, backoff: float = 0.0) -> None:
        """A failed or timed-out task was resubmitted (budget charged)."""
        self.retries += 1
        self._emit("retry", label, backoff)

    def record_timeout(self, label: str, limit: float = 0.0) -> None:
        """A task overran the per-task timeout and was cancelled."""
        self.timeouts += 1
        self._emit("timeout", label, limit)

    def record_requeue(self, label: str = "") -> None:
        """An innocent unfinished task was resubmitted after a respawn."""
        self.requeues += 1
        self._emit("requeue", label)

    def record_respawn(self, reason: str = "") -> None:
        """A broken/killed process pool was replaced with a fresh one."""
        self.respawns += 1
        self._emit("respawn", reason)

    def record_resumed(self, label: str = "") -> None:
        """A journaled trace from an interrupted sweep was reused."""
        self.resumed += 1
        self._emit("resumed", label)

    def record_task_failure(self, label: str, reason: str = "") -> None:
        """A task exhausted its retry budget and failed permanently."""
        self.task_failures += 1
        self._emit("task_failed", f"{label}: {reason}" if reason else label)

    def record_pool_failure(self, reason: str = "") -> None:
        """Pool infrastructure failed permanently (respawn budget spent)."""
        self.pool_failures += 1
        self._emit("pool_failed", reason)

    # -- cache resilience ----------------------------------------------
    def record_cache_write_failure(self, reason: str = "") -> None:
        """The disk refused an artifact-cache write (run continues)."""
        self.cache_write_failures += 1
        self._emit("cache_write_failed", reason)

    def record_cache_disabled(self, reason: str = "") -> None:
        """Repeated write failures switched the cache to read-only."""
        self._emit("cache_off", reason)

    # -- streaming -------------------------------------------------------
    def record_alarm(self, label: str = "", latency_s: float = 0.0) -> None:
        """The online detector raised an alarm during a streaming run."""
        self.alarms += 1
        self._emit("alarm", label, latency_s)

    def record_fused_alarm(self, label: str = "", latency_s: float = 0.0) -> None:
        """A fleet run's quorum fused stream alarms into a verdict."""
        self.fused_alarms += 1
        self._emit("fused_alarm", label, latency_s)

    def record_verdict(self, label: str = "") -> None:
        """Attribution attached a typed verdict to an alarm."""
        self.verdicts += 1
        self._emit("verdict", label)

    def record_fleet_batch(self, size: int, seconds: float = 0.0) -> None:
        """One vectorized fleet scoring call covered ``size`` windows."""
        self.fleet_batches += 1
        self.fleet_windows += int(size)
        self._emit("fleet_batch", str(int(size)), seconds)

    # -- durability ------------------------------------------------------
    def record_stream_fault(self, label: str = "") -> None:
        """A quarantine-mode detector caught and recorded a degraded row."""
        self.stream_faults += 1
        self._emit("stream_fault", label)

    def record_lane_sealed(self, label: str = "") -> None:
        """A fleet lane was abnormally sealed (dropped/stalled/faulted/crashed)."""
        self.lanes_sealed += 1
        self._emit("lane_sealed", label)

    def record_duplicate_seal(self, label: str = "") -> None:
        """A seal/drop hit an already-finished lane: counted, not raised."""
        self.duplicate_seals += 1
        self._emit("duplicate_seal", label)

    def record_checkpoint(self, label: str = "") -> None:
        """A durable streaming run snapshot its state to disk."""
        self.checkpoints += 1
        self._emit("checkpoint", label)

    def record_restore(self, label: str = "") -> None:
        """A durable streaming run restored a checkpoint and resumed."""
        self.restores += 1
        self._emit("restore", label)

    # -- stage timing ----------------------------------------------------
    def record_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock into a named pipeline stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self._emit("stage", stage, seconds)

    # ------------------------------------------------------------------
    @property
    def total_trace_seconds(self) -> float:
        """Summed wall-clock of every simulated trace (not elapsed time —
        parallel traces overlap)."""
        return sum(s for _, s in self.trace_seconds)

    def reset(self) -> None:
        """Zero every counter (the callback hook is kept)."""
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0
        self.evictions = 0
        self.fallbacks = 0
        self.retries = 0
        self.timeouts = 0
        self.requeues = 0
        self.respawns = 0
        self.resumed = 0
        self.task_failures = 0
        self.pool_failures = 0
        self.cache_write_failures = 0
        self.alarms = 0
        self.fused_alarms = 0
        self.verdicts = 0
        self.fleet_batches = 0
        self.fleet_windows = 0
        self.stream_faults = 0
        self.lanes_sealed = 0
        self.duplicate_seals = 0
        self.checkpoints = 0
        self.restores = 0
        self.trace_seconds = []
        self.stage_seconds = {}

    def summary(self) -> str:
        """One-line human-readable state, used by the CLI."""
        base = (
            f"{self.simulations} simulated ({self.total_trace_seconds:.1f}s "
            f"trace wall-clock), cache {self.cache_hits} hit / "
            f"{self.cache_misses} miss, {self.evictions} evicted"
        )
        extras = []
        if self.resumed:
            extras.append(f"{self.resumed} resumed")
        if self.retries:
            extras.append(f"{self.retries} retried")
        if self.timeouts:
            extras.append(f"{self.timeouts} timed out")
        if self.respawns:
            extras.append(f"{self.respawns} pool respawns")
        if self.task_failures:
            extras.append(f"{self.task_failures} failed")
        if self.cache_write_failures:
            extras.append(f"{self.cache_write_failures} cache write failures")
        if self.alarms:
            extras.append(f"{self.alarms} alarms")
        if self.fused_alarms:
            extras.append(f"{self.fused_alarms} fused alarms")
        if self.verdicts:
            extras.append(f"{self.verdicts} typed verdicts")
        if self.fleet_batches:
            extras.append(
                f"{self.fleet_windows} fleet windows in "
                f"{self.fleet_batches} batches"
            )
        if self.stream_faults:
            extras.append(f"{self.stream_faults} rows quarantined")
        if self.lanes_sealed:
            extras.append(f"{self.lanes_sealed} lanes sealed")
        if self.duplicate_seals:
            extras.append(f"{self.duplicate_seals} duplicate seals")
        if self.checkpoints:
            extras.append(f"{self.checkpoints} checkpoints")
        if self.restores:
            extras.append(f"{self.restores} restored")
        if self.stage_seconds:
            stages = " ".join(
                f"{k}={v:.1f}s" for k, v in sorted(self.stage_seconds.items())
            )
            extras.append(f"stages: {stages}")
        return base + (", " + ", ".join(extras) if extras else "")

    def __repr__(self) -> str:  # pragma: no cover
        return f"RuntimeMetrics({self.summary()})"
