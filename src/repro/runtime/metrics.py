"""Progress and timing instrumentation for the runtime layer.

A :class:`RuntimeMetrics` instance rides along with every
:class:`~repro.runtime.session.Session`: the executor reports per-trace
wall-clock, the artifact cache reports hits / misses / evictions, and an
optional callback hook receives each :class:`TraceEvent` as it happens —
the CLI uses it to print live progress while traces simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class TraceEvent:
    """One observable runtime happening, delivered to the metrics hook.

    ``kind`` is one of:

    * ``"cache_hit"`` — an artifact was loaded from the on-disk cache;
    * ``"cache_miss"`` — an artifact was absent (or unreadable) on disk;
    * ``"simulated"`` — a trace finished simulating (``seconds`` holds its
      wall-clock);
    * ``"evicted"`` — a cache entry was removed by the eviction policy;
    * ``"fallback"`` — the process pool was unavailable and the executor
      fell back to serial execution (``label`` holds the reason).
    """

    kind: str
    label: str = ""
    seconds: float = 0.0


class RuntimeMetrics:
    """Counters + timings for one runtime session.

    Parameters
    ----------
    on_event:
        Optional callback invoked with every :class:`TraceEvent` as it is
        recorded.  Exceptions raised by the callback propagate — it is a
        local hook, not a plugin boundary.
    """

    def __init__(self, on_event: Callable[[TraceEvent], None] | None = None):
        self.on_event = on_event
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0
        self.evictions = 0
        self.fallbacks = 0
        #: (label, wall-clock seconds) per simulated trace, completion order.
        self.trace_seconds: list[tuple[str, float]] = []

    # ------------------------------------------------------------------
    def _emit(self, kind: str, label: str = "", seconds: float = 0.0) -> None:
        if self.on_event is not None:
            self.on_event(TraceEvent(kind=kind, label=label, seconds=seconds))

    def record_cache_hit(self, label: str = "") -> None:
        """An artifact was served from the on-disk cache."""
        self.cache_hits += 1
        self._emit("cache_hit", label)

    def record_cache_miss(self, label: str = "") -> None:
        """An artifact had to be (re)computed."""
        self.cache_misses += 1
        self._emit("cache_miss", label)

    def record_simulated(self, label: str, seconds: float) -> None:
        """One trace finished simulating."""
        self.simulations += 1
        self.trace_seconds.append((label, seconds))
        self._emit("simulated", label, seconds)

    def record_eviction(self, label: str = "") -> None:
        """The cache eviction policy removed an entry."""
        self.evictions += 1
        self._emit("evicted", label)

    def record_fallback(self, reason: str) -> None:
        """The parallel executor degraded to serial execution."""
        self.fallbacks += 1
        self._emit("fallback", reason)

    # ------------------------------------------------------------------
    @property
    def total_trace_seconds(self) -> float:
        """Summed wall-clock of every simulated trace (not elapsed time —
        parallel traces overlap)."""
        return sum(s for _, s in self.trace_seconds)

    def reset(self) -> None:
        """Zero every counter (the callback hook is kept)."""
        self.cache_hits = 0
        self.cache_misses = 0
        self.simulations = 0
        self.evictions = 0
        self.fallbacks = 0
        self.trace_seconds = []

    def summary(self) -> str:
        """One-line human-readable state, used by the CLI."""
        return (
            f"{self.simulations} simulated ({self.total_trace_seconds:.1f}s "
            f"trace wall-clock), cache {self.cache_hits} hit / "
            f"{self.cache_misses} miss, {self.evictions} evicted"
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"RuntimeMetrics({self.summary()})"
