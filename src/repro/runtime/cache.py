"""Content-addressed on-disk artifact cache.

Simulated traces dominate every experiment's cost, yet they are pure
functions of (scenario configuration, attack composition, simulator code).
This module persists them across processes: each artifact is stored under a
key derived from a **stable hash** of its inputs plus a **code version**
digest of the simulation-relevant sources, so editing the simulator,
routing, traffic or attack code silently invalidates every stale entry.

Design points (see DESIGN.md §"Runtime layer"):

* **Keying** — :func:`stable_key` canonicalises dataclasses, enums and
  containers into JSON (floats via ``repr`` round-trip format) and hashes
  with SHA-256; :func:`code_version` hashes the source bytes of
  ``repro.simulation`` / ``repro.routing`` / ``repro.traffic`` /
  ``repro.attacks`` so detector-side edits do *not* invalidate traces.
* **Atomic writes** — artifacts are pickled to a temp file in the cache
  directory and ``os.replace``-d into place, so a crashed or concurrent
  writer can never leave a half-written entry under a live key.
* **Corruption tolerance** — an unreadable or unpicklable entry is treated
  as a miss and deleted; callers fall back to re-simulation.
* **Write degradation** — a full or read-only disk never crashes a run:
  each refused write is counted, and after a few consecutive failures the
  cache flips to read-only for the rest of the process (cache-off, not
  crash).
* **Eviction** — least-recently-used by file mtime (touched on every hit),
  bounded by ``max_entries`` and ``max_bytes``.

The module also hosts :class:`ResumeJournal` — the append-only record of
completed trace keys that :class:`~repro.runtime.session.Session` writes
next to the cache so an interrupted sweep resumes instead of restarting.
"""

from __future__ import annotations

import dataclasses
import errno
import hashlib
import json
import os
import pickle
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.faults import FaultPlan
    from repro.runtime.metrics import RuntimeMetrics

#: Packages whose source participates in the artifact code version — the
#: ones whose behaviour determines a simulated trace.  Detection-side code
#: (core/ml/features/eval) deliberately excluded: it consumes traces.
_VERSIONED_PACKAGES = ("simulation", "routing", "traffic", "attacks")

_KEY_SCHEMA = "v1"  #: bump to invalidate every existing cache entry


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serialisable form.

    Dataclasses become name-tagged field dicts, enums their values, floats
    a ``repr``-round-trip string (so ``0.1`` keys identically on every
    platform), and containers recurse.  Raises :class:`TypeError` for
    anything without a canonical form — cache keys must never silently
    depend on ``repr`` of arbitrary objects.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            **{
                f.name: canonicalize(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Enum):
        return canonicalize(obj.value)
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((canonicalize(x) for x in obj), key=json.dumps)
    if isinstance(obj, float):
        return format(obj, ".17g")
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for cache keying")


def attack_signature(attack: Any) -> dict:
    """Canonical description of an (uninstalled) attack's composition.

    Captures the class identity and every constructor-derived attribute;
    runtime wiring (``sim``, ``nodes``, ``active``) is excluded so the
    signature is stable whether or not the instance was ever installed.
    """
    state = {
        k: v
        for k, v in vars(attack).items()
        if k not in ("sim", "nodes", "active")
    }
    return {
        "__attack__": f"{type(attack).__module__}.{type(attack).__qualname__}",
        **{k: canonicalize(v) for k, v in sorted(state.items())},
    }


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the simulation-relevant package sources.

    Content-based (not mtime-based): reinstalling identical code keeps the
    cache warm, while any behavioural edit to the simulator, protocols,
    traffic agents or attacks produces fresh keys.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for package in _VERSIONED_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def stable_key(payload: Any, version: str | None = None) -> str:
    """SHA-256 content address for ``payload`` + the code version."""
    version = code_version() if version is None else version
    blob = json.dumps(
        {"schema": _KEY_SCHEMA, "code": version, "payload": canonicalize(payload)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably.

    Bytes land in a temp file in the *same directory* (same filesystem,
    so the rename is atomic), are fsync-ed, then ``os.replace``-d into
    place: a reader never observes a half-written file, and a crash
    between write and rename leaves the old content intact.  The cache
    and the stream checkpoint writer share this path.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - read-only dir refuses unlink too
            pass
        raise


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


class ArtifactCache:
    """A directory of pickled artifacts addressed by content hash.

    Parameters
    ----------
    cache_dir:
        Storage directory; ``None`` resolves via :func:`default_cache_dir`.
    max_entries, max_bytes:
        Eviction bounds — oldest (by mtime, i.e. least recently used)
        entries are removed after every write until both hold.
    metrics:
        Optional :class:`~repro.runtime.metrics.RuntimeMetrics` that
        receives eviction and write-failure events.  Hit/miss accounting
        stays with the caller, which knows what the artifact *is*.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan`; cache-kind
        specs are matched against this instance's put ordinal
        (deterministic fault injection for tests).
    """

    _SUFFIX = ".pkl"
    #: Consecutive refused writes before the cache degrades to read-only.
    _DISABLE_WRITES_AFTER = 3

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        max_entries: int = 512,
        max_bytes: int = 4 << 30,
        metrics: "RuntimeMetrics | None" = None,
        faults: "FaultPlan | None" = None,
    ):
        self.dir = Path(cache_dir).expanduser() if cache_dir is not None else default_cache_dir()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.metrics = metrics
        self.faults = faults
        self.writes_disabled = False
        self._put_ordinal = 0
        self._consecutive_write_failures = 0
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # Unwritable cache location: degrade to cache-off, never crash.
            self.writes_disabled = True
            if self.metrics is not None:
                self.metrics.record_cache_disabled(
                    f"cannot create cache dir {self.dir}: {exc}"
                )

    # ------------------------------------------------------------------
    def key(self, payload: Any) -> str:
        """Content address for an artifact description (see :func:`stable_key`)."""
        return stable_key(payload)

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}{self._SUFFIX}"

    def get(self, key: str) -> Any | None:
        """Load an artifact, or ``None`` on miss *or* corruption.

        A corrupt entry (truncated write from a killed process, disk
        damage, pickle from an incompatible interpreter) is deleted so the
        slot heals; the caller re-simulates exactly as for a plain miss.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            artifact = pickle.loads(data)
        except Exception:
            path.unlink(missing_ok=True)
            return None
        try:
            os.utime(path)  # refresh LRU position
        except OSError:
            pass
        return artifact

    def put(self, key: str, artifact: Any) -> bool:
        """Atomically store an artifact; returns False if the disk refused.

        Write failures (full/read-only filesystem) are non-fatal: the
        session simply keeps its in-memory copy.  After
        ``_DISABLE_WRITES_AFTER`` *consecutive* failures the cache stops
        attempting writes for the rest of the process — a dead disk is
        not hammered once per trace — while reads stay live.
        """
        fault = (
            self.faults.cache_fault(self._put_ordinal)
            if self.faults is not None else None
        )
        self._put_ordinal += 1
        if self.writes_disabled:
            return False
        path = self._path(key)
        try:
            if fault is not None and fault.kind == "cache-enospc":
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            if fault is not None and fault.kind == "cache-corrupt":
                # A torn write: bytes land on disk but are not a pickle.
                atomic_write_bytes(path, b"\x00injected corrupt artifact")
            else:
                atomic_write_bytes(
                    path, pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
                )
        except (OSError, pickle.PicklingError) as exc:
            self._consecutive_write_failures += 1
            if self.metrics is not None:
                self.metrics.record_cache_write_failure(
                    f"{type(exc).__name__}: {exc}"
                )
            if (not self.writes_disabled
                    and self._consecutive_write_failures >= self._DISABLE_WRITES_AFTER):
                self.writes_disabled = True
                if self.metrics is not None:
                    self.metrics.record_cache_disabled(
                        f"{self._consecutive_write_failures} consecutive "
                        f"write failures; cache is now read-only"
                    )
            return False
        self._consecutive_write_failures = 0
        self._evict()
        return True

    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) per live entry, oldest first."""
        entries = []
        for path in self.dir.glob(f"*{self._SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        return entries

    def _evict(self) -> None:
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        while entries and (len(entries) > self.max_entries or total > self.max_bytes):
            _, size, path = entries.pop(0)
            path.unlink(missing_ok=True)
            total -= size
            if self.metrics is not None:
                self.metrics.record_eviction(path.stem)

    # ------------------------------------------------------------------
    def stats(self) -> tuple[int, int]:
        """(entry count, total bytes) currently on disk."""
        entries = self._entries()
        return len(entries), sum(size for _, size, _ in entries)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        entries = self._entries()
        for _, _, path in entries:
            path.unlink(missing_ok=True)
        return len(entries)

    def __repr__(self) -> str:  # pragma: no cover
        n, size = self.stats()
        return f"ArtifactCache({str(self.dir)!r}, {n} entries, {size / 1e6:.1f} MB)"


class ResumeJournal:
    """Append-only, crash-tolerant record of completed trace keys.

    The session appends one line per trace the moment its artifact is
    safely in the cache, fsync-ing each append, so the journal is always
    a true lower bound on completed work: a run killed mid-sweep leaves
    a journal naming exactly the traces that need no re-simulation.  A
    torn final line (the process died mid-append) is ignored on load —
    losing one key costs one redundant simulation, never correctness.

    Format: one 64-hex content-address per line; ``#`` lines are
    comments.  Keys are content-addressed (they embed the code version),
    so a stale journal from an older simulator simply never matches.
    """

    _HEADER = "# repro sweep journal v1\n"

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)

    def load(self) -> frozenset[str]:
        """Every intact journaled key (unreadable journal = empty)."""
        try:
            text = self.path.read_text()
        except OSError:
            return frozenset()
        keys = set()
        for line in text.splitlines():
            line = line.strip()
            if len(line) == 64 and not line.startswith("#"):
                try:
                    int(line, 16)
                except ValueError:
                    continue
                keys.add(line)
        return frozenset(keys)

    def record(self, key: str) -> None:
        """Durably append one completed key (best-effort: an unwritable
        journal degrades resumability, never the run)."""
        try:
            new = not self.path.exists()
            with open(self.path, "a", encoding="utf-8") as fh:
                if new:
                    fh.write(self._HEADER)
                fh.write(key + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError:
            pass

    def clear(self) -> None:
        """Forget every journaled key (start the next sweep cold)."""
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ResumeJournal({str(self.path)!r}, {len(self.load())} keys)"
