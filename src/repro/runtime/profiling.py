"""Profiling observability: cProfile capture + compact top-N tables.

Two consumers (see DESIGN.md §Routing fast path — every shortfall
analysis in this repo's performance PRs started from exactly this
table):

* ``python -m repro bench --profile`` — the simulator bench suite
  profiles one optimized-mode run per end-to-end row and attaches the
  top-N cumulative table to the row's JSON entry (and the CLI prints
  it), so "where did the time go at aodv/200" is one flag away instead
  of an ad-hoc script;
* :class:`StageProfiler` — the :class:`~repro.runtime.session.Session`
  stage hook.  ``Session(profile_stages=True)`` (or
  ``$REPRO_PROFILE_STAGES=1``) wraps every timed pipeline stage
  (``simulate`` / ``extract`` / ``fit`` / ``stream`` / ``fleet``) in a
  profiler and keeps one table per stage name.

Tables are returned as plain data (list of per-function dicts) so they
can ride JSON payloads; :func:`render_profile` turns one into the
aligned text the CLI prints.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from typing import Callable, Iterator

#: Default number of functions per table — enough to see past the run
#: loop into the handler/medium/mobility split without scrolling.
DEFAULT_TOP = 15


def profile_top(profiler: cProfile.Profile, top: int = DEFAULT_TOP) -> list[dict]:
    """The ``top`` functions by cumulative time, as JSON-friendly rows.

    Each row carries the ``pstats`` per-function quadruple (primitive
    calls, total calls, self seconds, cumulative seconds) plus a short
    ``function`` label (``file:line(name)`` with the path reduced to its
    basename).
    """
    stats = pstats.Stats(profiler)
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        if filename == "~":  # builtins: pstats renders these as {name}
            label = name
        else:
            label = f"{filename.rpartition('/')[2]}:{line}({name})"
        rows.append({
            "function": label,
            "ncalls": nc,
            "primitive_calls": cc,
            "self_seconds": round(tt, 4),
            "cumulative_seconds": round(ct, 4),
        })
    rows.sort(key=lambda r: -r["cumulative_seconds"])
    return rows[:top]


def render_profile(rows: list[dict], indent: str = "  ") -> str:
    """One aligned text table for a :func:`profile_top` row list."""
    lines = [
        f"{indent}{'ncalls':>10s} {'self(s)':>9s} {'cum(s)':>9s}  function"
    ]
    for r in rows:
        calls = (
            str(r["ncalls"])
            if r["ncalls"] == r["primitive_calls"]
            else f"{r['ncalls']}/{r['primitive_calls']}"
        )
        lines.append(
            f"{indent}{calls:>10s} {r['self_seconds']:9.3f} "
            f"{r['cumulative_seconds']:9.3f}  {r['function']}"
        )
    return "\n".join(lines)


def profile_call(fn: Callable, *args, top: int = DEFAULT_TOP, **kwargs):
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, rows)`` where ``rows`` is the
    :func:`profile_top` table of the call.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    return result, profile_top(profiler, top)


class StageProfiler:
    """One cProfile table per named pipeline stage.

    Re-entering a stage name accumulates into the same profiler, so a
    sweep's many ``simulate`` batches land in one ``simulate`` table.
    """

    def __init__(self, top: int = DEFAULT_TOP):
        self.top = top
        self._profilers: dict[str, cProfile.Profile] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        profiler = self._profilers.get(name)
        if profiler is None:
            profiler = self._profilers[name] = cProfile.Profile()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()

    @property
    def stages(self) -> list[str]:
        return list(self._profilers)

    def table(self, name: str) -> list[dict]:
        """The top-N rows for one stage (empty if the stage never ran)."""
        profiler = self._profilers.get(name)
        if profiler is None:
            return []
        return profile_top(profiler, self.top)

    def render(self) -> str:
        """All stage tables as one printable report."""
        blocks = []
        for name in self._profilers:
            blocks.append(f"stage {name}:")
            blocks.append(render_profile(self.table(name)))
        return "\n".join(blocks) if blocks else "(no stages profiled)"
