"""Deterministic fault injection for the runtime layer.

The supervised executor and the artifact cache promise to survive worker
crashes, hung simulations, pickling failures and disk faults.  Those
recovery paths are worthless if they only run the day production breaks,
so this module makes every fault *injectable on demand*: a
:class:`FaultPlan` is a small, picklable script of :class:`FaultSpec`\\ s
("the 3rd task crashes its worker on its first submission", "the 2nd
cache write hits ENOSPC") threaded through ``Session(faults=...)`` and
the hidden ``--inject-faults`` CLI flag.  CI exercises each path
deterministically — same plan, same seed, same recovery — instead of
trusting it on faith.

Simulation faults (matched by **task index** within the executor batch
and **submission number**, so a fault can fire on the first attempt and
vanish on the retry):

* ``crash`` — the worker process dies mid-task (``os._exit``), breaking
  the pool exactly like a segfault or OOM kill; under serial execution it
  degrades to an :class:`InjectedFault` (a plain process can't survive
  killing itself).
* ``hang`` — the task sleeps ``seconds`` before simulating, tripping the
  supervisor's per-task timeout.
* ``error`` — the task raises :class:`InjectedFault`, a stand-in for any
  in-simulation exception.
* ``unpicklable`` — the task raises :class:`pickle.PicklingError`, the
  observable a worker produces when its payload refuses to serialise.

Cache faults (matched by **put ordinal** — the Nth ``ArtifactCache.put``
of the process):

* ``cache-corrupt`` — the entry is written as garbage bytes (a torn or
  bit-rotted artifact); a later read must treat it as a miss and heal.
* ``cache-enospc`` — the write raises ``OSError(ENOSPC)`` (full disk);
  the cache must degrade, never crash the run.
"""

from __future__ import annotations

import pickle
import random as _random
import time
from dataclasses import dataclass
from typing import Sequence

#: Fault kinds applied inside the simulation task itself.
SIM_KINDS = ("crash", "hang", "error", "unpicklable")
#: Fault kinds applied to artifact-cache writes.
CACHE_KINDS = ("cache-corrupt", "cache-enospc")
KINDS = SIM_KINDS + CACHE_KINDS


class InjectedFault(RuntimeError):
    """An exception raised on purpose by a tripped fault spec."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    ``index`` is the executor-batch task index for simulation kinds and
    the cache put ordinal for cache kinds.  ``submissions`` names which
    submissions of the task trip the fault (1-based; requeues after a
    pool respawn advance the submission number too), so the default
    ``(1,)`` produces a *transient* fault that the retry recovers from.
    """

    kind: str
    index: int = 0
    submissions: tuple[int, ...] = (1,)
    seconds: float = 3600.0  #: sleep length for ``hang`` faults

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (choose from {KINDS})")
        if self.index < 0:
            raise ValueError("fault index must be >= 0")
        object.__setattr__(self, "submissions", tuple(self.submissions))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic script of faults for one run.

    Plans are immutable and picklable: the executor ships the matched
    spec with the task into the worker process, so the fault fires at
    the same place whether the task runs in a pool or serially.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    # ------------------------------------------------------------------
    def sim_fault(self, index: int, submission: int) -> FaultSpec | None:
        """The fault (if any) tripping task ``index``'s Nth submission."""
        for spec in self.specs:
            if spec.kind in SIM_KINDS and spec.index == index \
                    and submission in spec.submissions:
                return spec
        return None

    def cache_fault(self, ordinal: int) -> FaultSpec | None:
        """The fault (if any) tripping the Nth cache write (0-based)."""
        for spec in self.specs:
            if spec.kind in CACHE_KINDS and spec.index == ordinal:
                return spec
        return None

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--inject-faults`` mini-language.

        Comma-separated ``kind:index[:submissions]`` clauses, where
        ``submissions`` is ``+``-joined 1-based submission numbers::

            crash:2             # task 2's worker dies on its 1st submission
            hang:0:1+2          # task 0 hangs on submissions 1 AND 2
            cache-enospc:1      # the 2nd cache write hits a full disk
        """
        specs = []
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            bits = clause.split(":")
            if len(bits) > 3:
                raise ValueError(f"malformed fault clause {clause!r}")
            kind = bits[0]
            try:
                index = int(bits[1]) if len(bits) > 1 else 0
                submissions = (
                    tuple(int(b) for b in bits[2].split("+"))
                    if len(bits) > 2 else (1,)
                )
            except ValueError as exc:
                raise ValueError(f"malformed fault clause {clause!r}") from exc
            specs.append(FaultSpec(kind, index, submissions))
        return cls(tuple(specs))

    @classmethod
    def random(
        cls,
        seed: int,
        n_tasks: int,
        kinds: Sequence[str] = ("crash", "error", "unpicklable"),
        count: int = 1,
    ) -> "FaultPlan":
        """A seed-driven plan: ``count`` transient faults over ``n_tasks``.

        The same seed always yields the same plan — chaos testing stays
        reproducible.  ``hang`` is excluded by default because it only
        terminates under a configured task timeout.
        """
        rng = _random.Random(seed)
        specs = tuple(
            FaultSpec(rng.choice(list(kinds)), rng.randrange(n_tasks))
            for _ in range(count)
        )
        return cls(specs)


def trip_sim_fault(spec: FaultSpec, in_pool: bool) -> None:
    """Apply a simulation fault inside the (worker) task.

    Called by the executor's task wrapper before the simulation runs;
    ``in_pool`` distinguishes a real worker process (where ``crash`` can
    genuinely die) from in-process serial execution.
    """
    if spec.kind == "hang":
        time.sleep(spec.seconds)
    elif spec.kind == "crash":
        if in_pool:
            import os

            os._exit(66)  # immediate death: no atexit, no cleanup — a real crash
        raise InjectedFault(
            f"injected worker crash on task {spec.index} (serial execution)"
        )
    elif spec.kind == "error":
        raise InjectedFault(f"injected task error on task {spec.index}")
    elif spec.kind == "unpicklable":
        raise pickle.PicklingError(
            f"injected pickling failure on task {spec.index}"
        )
