"""Runtime layer: supervised parallel execution + persistent artifact cache.

* :class:`~repro.runtime.session.Session` — the documented entry point:
  ``Session(jobs=4).detect(plan)``;
* :class:`~repro.runtime.executor.TraceExecutor` /
  :class:`~repro.runtime.executor.TraceTask` — process-pool fan-out of
  independent simulations, individually supervised
  (:class:`~repro.runtime.executor.SupervisionPolicy`: bounded retries
  with backoff, per-task timeouts, pool respawn on worker crash) with a
  structured failure taxonomy
  (:class:`~repro.runtime.executor.TaskFailure` /
  :class:`~repro.runtime.executor.PoolFailure` /
  :class:`~repro.runtime.executor.FailureReport`) and a graceful serial
  fallback;
* :class:`~repro.runtime.cache.ArtifactCache` — content-addressed on-disk
  trace cache with atomic writes, corruption-tolerant loads, write-failure
  degradation and LRU eviction;
* :class:`~repro.runtime.cache.ResumeJournal` — append-only record of
  completed trace keys, making interrupted sweeps resumable;
* :class:`~repro.runtime.faults.FaultPlan` /
  :class:`~repro.runtime.faults.FaultSpec` — deterministic fault
  injection (worker crashes, hangs, pickling failures, disk faults) so
  every recovery path above is exercised in CI;
* :class:`~repro.runtime.metrics.RuntimeMetrics` /
  :class:`~repro.runtime.metrics.TraceEvent` — timing, hit/miss and
  supervision counters plus the live progress hook;
* :func:`~repro.runtime.bench.run_simulator_bench` /
  :func:`~repro.runtime.bench.run_model_bench` /
  :func:`~repro.runtime.bench.run_fleet_bench` /
  :func:`~repro.runtime.bench.run_stream_chaos_bench` /
  :func:`~repro.runtime.bench.run_attribution_bench` — the benchmark
  harness behind ``python -m repro bench`` and the committed
  ``BENCH_*.json`` baselines.
"""

from repro.runtime.bench import (
    ATTRIBUTION_ACCURACY_FLOOR,
    run_attribution_bench,
    run_fleet_bench,
    run_model_bench,
    run_simulator_bench,
    run_stream_chaos_bench,
    write_bench,
)
from repro.runtime.cache import (
    ArtifactCache,
    ResumeJournal,
    code_version,
    default_cache_dir,
    stable_key,
)
from repro.runtime.executor import (
    FailureReport,
    PoolFailure,
    SupervisionPolicy,
    TaskFailure,
    TraceExecutor,
    TraceTask,
)
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFault
from repro.runtime.metrics import RuntimeMetrics, TraceEvent
from repro.runtime.session import Session, default_session, set_default_session

__all__ = [
    "ATTRIBUTION_ACCURACY_FLOOR",
    "ArtifactCache",
    "FailureReport",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "PoolFailure",
    "ResumeJournal",
    "RuntimeMetrics",
    "Session",
    "SupervisionPolicy",
    "TaskFailure",
    "TraceEvent",
    "TraceExecutor",
    "TraceTask",
    "code_version",
    "default_cache_dir",
    "default_session",
    "run_attribution_bench",
    "run_fleet_bench",
    "run_model_bench",
    "run_simulator_bench",
    "run_stream_chaos_bench",
    "set_default_session",
    "stable_key",
    "write_bench",
]
