"""Runtime layer: parallel trace execution + persistent artifact cache.

* :class:`~repro.runtime.session.Session` — the documented entry point:
  ``Session(jobs=4).detect(plan)``;
* :class:`~repro.runtime.executor.TraceExecutor` /
  :class:`~repro.runtime.executor.TraceTask` — process-pool fan-out of
  independent simulations with a graceful serial fallback;
* :class:`~repro.runtime.cache.ArtifactCache` — content-addressed on-disk
  trace cache with atomic writes, corruption-tolerant loads and LRU
  eviction;
* :class:`~repro.runtime.metrics.RuntimeMetrics` /
  :class:`~repro.runtime.metrics.TraceEvent` — timing, hit/miss counters
  and the live progress hook.
"""

from repro.runtime.cache import ArtifactCache, code_version, default_cache_dir, stable_key
from repro.runtime.executor import TraceExecutor, TraceTask
from repro.runtime.metrics import RuntimeMetrics, TraceEvent
from repro.runtime.session import Session, default_session, set_default_session

__all__ = [
    "ArtifactCache",
    "RuntimeMetrics",
    "Session",
    "TraceEvent",
    "TraceExecutor",
    "TraceTask",
    "code_version",
    "default_cache_dir",
    "default_session",
    "set_default_session",
    "stable_key",
]
