"""The :class:`Session` facade — the one documented pipeline entry point.

A session owns the three runtime services and threads every experiment
through them:

* a :class:`~repro.runtime.executor.TraceExecutor` that fans independent
  trace simulations out across worker processes (``jobs=``);
* an :class:`~repro.runtime.cache.ArtifactCache` that persists simulated
  traces on disk, content-addressed by scenario + attack composition +
  simulator code version (``cache_dir=``, ``cache=False`` to disable);
* a :class:`~repro.runtime.metrics.RuntimeMetrics` with per-trace timing,
  cache hit/miss counters and a live progress hook (``metrics=``).

Usage::

    from repro import ExperimentPlan, Session

    session = Session(jobs=4)
    bundle = session.bundle(ExperimentPlan(protocol="aodv"))
    result = session.detect(ExperimentPlan(protocol="dsr"), classifier="c45")
    results = session.sweep(four_scenarios())          # shares one fan-out
    stream = session.stream_detect(plan)               # one live monitor
    fleet = session.fleet_detect(plan, quorum=2)       # every node, fused

The pre-Session module-level helpers (``cached_bundle`` /
``cached_result`` / ``simulate_bundle``) have been removed; importing
them raises :class:`ImportError` with the migration hint.
"""

from __future__ import annotations

import os
import time
import warnings
from contextlib import contextmanager, nullcontext
from types import SimpleNamespace
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.eval.experiments import (
    DetectionResult,
    ExperimentPlan,
    RawTraces,
    TraceBundle,
    extract_bundle,
    plan_sim_key,
    run_detection_experiment,
)
from repro.runtime.cache import ArtifactCache, ResumeJournal, attack_signature
from repro.runtime.executor import SupervisionPolicy, TraceExecutor, TraceTask
from repro.runtime.faults import FaultPlan
from repro.runtime.metrics import RuntimeMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.attacks.base import Attack
    from repro.core.model import CrossFeatureDetector
    from repro.simulation.scenario import ScenarioConfig, SimulationTrace
    from repro.stream.detector import Alarm, StreamResult
    from repro.stream.faults import StreamFault, StreamFaultPlan
    from repro.stream.fleet import FleetAlarm, FleetResult

#: File name of the sweep resume journal inside the cache directory.
_JOURNAL_NAME = "sweep.journal"


def _env_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (defaults to 1 = serial).

    An unparsable or non-positive value warns loudly instead of silently
    serialising a deployment that believed it configured a pool.
    """
    raw = os.environ.get("REPRO_JOBS", "1")
    try:
        jobs = int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid $REPRO_JOBS value {raw!r} (not an integer); "
            f"running with 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    if jobs < 1:
        warnings.warn(
            f"ignoring invalid $REPRO_JOBS value {raw!r} (must be >= 1); "
            f"running with 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    return jobs


def _plan_tasks(plan: ExperimentPlan) -> list[TraceTask]:
    """The independent simulations of one test condition, in bundle order."""
    tasks = [
        TraceTask(plan.scenario_config(s), (), f"train[{s}]")
        for s in plan.train_seeds
    ]
    tasks.append(
        TraceTask(plan.scenario_config(plan.calibration_seed), (),
                  f"calibration[{plan.calibration_seed}]")
    )
    tasks.extend(
        TraceTask(plan.scenario_config(s), (), f"normal[{s}]")
        for s in plan.normal_seeds
    )
    tasks.extend(
        TraceTask(plan.scenario_config(s), tuple(plan.build_attacks()), f"attack[{s}]")
        for s in plan.attack_seeds
    )
    return tasks


def _assemble_raw(plan: ExperimentPlan, traces: "list[SimulationTrace]") -> RawTraces:
    """Rebuild a :class:`RawTraces` from the flat `_plan_tasks` order."""
    n_train = len(plan.train_seeds)
    n_normal = len(plan.normal_seeds)
    return RawTraces(
        plan=plan,
        train=traces[:n_train],
        calibration=traces[n_train],
        normal_evals=traces[n_train + 1:n_train + 1 + n_normal],
        abnormal_evals=traces[n_train + 1 + n_normal:],
    )


class Session:
    """Pipeline runtime: parallel simulation + persistent artifact cache.

    Parameters
    ----------
    cache_dir:
        Artifact cache directory (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro``).
    jobs:
        Worker processes for trace fan-out; ``None`` reads ``$REPRO_JOBS``
        (default 1 = serial).  Results are seed-deterministic regardless.
    metrics:
        A :class:`RuntimeMetrics` to account into (one is created
        otherwise); pass one with an ``on_event`` hook for live progress.
    cache:
        ``False`` disables the on-disk cache entirely (simulations still
        memoise in memory within the session).
    max_entries, max_bytes:
        Cache eviction bounds, forwarded to :class:`ArtifactCache`.
    policy:
        A :class:`~repro.runtime.executor.SupervisionPolicy` controlling
        per-task retries, timeout and pool respawns (defaults: 2 retries,
        no timeout, 2 respawns).
    task_timeout, max_retries:
        Convenience overrides applied on top of ``policy`` — the knobs
        the CLI exposes.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` injected into
        both the executor and the cache (deterministic chaos testing).
    profile_stages:
        ``True`` wraps every timed pipeline stage (``simulate`` /
        ``extract`` / ``fit`` / ``stream`` / ``fleet``) in a cProfile
        and collects one top-N cumulative table per stage on
        :attr:`profiler` (a :class:`~repro.runtime.profiling.
        StageProfiler`; ``session.profiler.render()`` prints them).
        ``None`` (default) reads ``$REPRO_PROFILE_STAGES``.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        jobs: int | None = None,
        metrics: RuntimeMetrics | None = None,
        cache: bool = True,
        max_entries: int = 512,
        max_bytes: int = 4 << 30,
        policy: SupervisionPolicy | None = None,
        task_timeout: float | None = None,
        max_retries: int | None = None,
        faults: FaultPlan | None = None,
        profile_stages: bool | None = None,
    ):
        self.jobs = _env_jobs() if jobs is None else max(1, int(jobs))
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        policy = policy if policy is not None else SupervisionPolicy()
        overrides = {}
        if task_timeout is not None:
            overrides["task_timeout"] = task_timeout
        if max_retries is not None:
            overrides["max_retries"] = max_retries
        if overrides:
            import dataclasses

            policy = dataclasses.replace(policy, **overrides)
        self.policy = policy
        self.faults = faults
        self.cache: ArtifactCache | None = (
            ArtifactCache(
                cache_dir=cache_dir,
                max_entries=max_entries,
                max_bytes=max_bytes,
                metrics=self.metrics,
                faults=faults,
            )
            if cache
            else None
        )
        self.executor = TraceExecutor(
            jobs=self.jobs, metrics=self.metrics, policy=self.policy, faults=faults
        )
        if self.cache is not None:
            self.journal = ResumeJournal(self.cache.dir / _JOURNAL_NAME)
            #: Keys completed by *previous* (possibly interrupted) runs;
            #: cache hits on these count as resumed work, not plain hits.
            self._journaled = self.journal.load()
        else:
            self.journal = None
            self._journaled = frozenset()
        if profile_stages is None:
            profile_stages = os.environ.get(
                "REPRO_PROFILE_STAGES", "0"
            ) not in ("0", "false", "")
        if profile_stages:
            from repro.runtime.profiling import StageProfiler

            self.profiler: "StageProfiler | None" = StageProfiler()
        else:
            self.profiler = None
        self._raw: dict[ExperimentPlan, RawTraces] = {}
        self._bundles: dict[ExperimentPlan, TraceBundle] = {}
        self._results: dict[tuple, DetectionResult] = {}
        self._detectors: dict[tuple, "CrossFeatureDetector"] = {}

    @contextmanager
    def _stage(self, name: str):
        """Time one pipeline stage (and profile it when enabled).

        Yields a namespace whose ``elapsed`` holds the stage seconds once
        the block exits; the duration is recorded via
        :meth:`RuntimeMetrics.record_stage` and, with ``profile_stages``
        on, the block's execution accumulates into ``profiler``'s table
        for ``name``.
        """
        ctx = self.profiler.stage(name) if self.profiler is not None \
            else nullcontext()
        timer = SimpleNamespace(elapsed=0.0)
        t0 = time.perf_counter()
        with ctx:
            yield timer
        timer.elapsed = time.perf_counter() - t0
        self.metrics.record_stage(name, timer.elapsed)

    # ------------------------------------------------------------------
    # Trace level
    # ------------------------------------------------------------------
    def _task_key(self, task: TraceTask) -> str:
        if self.cache is None:
            raise RuntimeError(
                "Session._task_key requires the artifact cache; "
                "this session was created with cache=False"
            )
        return self.cache.key(
            ("trace", task.config, [attack_signature(a) for a in task.attacks])
        )

    def _traces(self, tasks: Sequence[TraceTask]) -> "list[SimulationTrace]":
        """Resolve a batch of tasks through cache + executor, in order.

        Fresh traces are flushed to the cache (and the resume journal)
        *as they complete*, not at batch end — an interrupted or failed
        batch loses only its in-flight work, and the next run picks up
        from the journaled keys.
        """
        tasks = list(tasks)
        results: list["SimulationTrace | None"] = [None] * len(tasks)
        pending: list[tuple[int, str | None, TraceTask]] = []
        for i, task in enumerate(tasks):
            if self.cache is not None:
                key = self._task_key(task)
                hit = self.cache.get(key)
                if hit is not None:
                    if key in self._journaled:
                        self.metrics.record_resumed(task.label)
                    self.metrics.record_cache_hit(task.label)
                    results[i] = hit
                    continue
                self.metrics.record_cache_miss(task.label)
                pending.append((i, key, task))
            else:
                pending.append((i, None, task))
        if not pending:
            return results  # type: ignore[return-value]

        def flush(batch_index: int, trace: "SimulationTrace") -> None:
            i, key, _task = pending[batch_index]
            results[i] = trace
            if self.cache is not None and key is not None:
                if self.cache.put(key, trace) and self.journal is not None:
                    self.journal.record(key)

        with self._stage("simulate"):
            fresh = self.executor.run(
                [task for _, _, task in pending], on_result=flush
            )
        for (i, _key, _task), trace in zip(pending, fresh):
            if results[i] is None:  # pragma: no cover - flush already filled these
                results[i] = trace
        return results  # type: ignore[return-value]

    def trace(
        self,
        config: "ScenarioConfig",
        attacks: Sequence["Attack"] = (),
        label: str = "",
    ) -> "SimulationTrace":
        """Run (or load) one scenario through the cache + executor."""
        task = TraceTask(config, tuple(attacks), label or f"scenario[{config.seed}]")
        return self._traces([task])[0]

    # ------------------------------------------------------------------
    # Plan level
    # ------------------------------------------------------------------
    def prefetch(self, plans: Sequence[ExperimentPlan]) -> None:
        """Simulate every missing trace of several plans as ONE fan-out.

        With ``jobs > 1`` this is what makes sweeps scale: all plans'
        cache misses share a single process-pool batch instead of each
        plan draining its own 7-trace pool.
        """
        spans: list[tuple[ExperimentPlan, int, int]] = []
        seen: set[ExperimentPlan] = set()
        all_tasks: list[TraceTask] = []
        for plan in plans:
            sim_key = plan_sim_key(plan)
            if sim_key in self._raw or sim_key in seen:
                continue
            seen.add(sim_key)
            tasks = _plan_tasks(sim_key)
            spans.append((sim_key, len(all_tasks), len(tasks)))
            all_tasks.extend(tasks)
        if not all_tasks:
            return
        traces = self._traces(all_tasks)
        for sim_key, start, n in spans:
            self._raw[sim_key] = _assemble_raw(sim_key, traces[start:start + n])

    def raw_traces(self, plan: ExperimentPlan) -> RawTraces:
        """All simulated traces of a test condition (no feature extraction).

        Traces are shared across plans that differ only in extraction
        knobs (periods, warmup, labels, monitor), exactly like the legacy
        ``cached_raw_traces``.
        """
        sim_key = plan_sim_key(plan)
        if sim_key not in self._raw:
            self.prefetch([plan])
        raw = self._raw[sim_key]
        return RawTraces(
            plan=plan,
            train=raw.train,
            calibration=raw.calibration,
            normal_evals=raw.normal_evals,
            abnormal_evals=raw.abnormal_evals,
        )

    def bundle(self, plan: ExperimentPlan, monitor: int | None = None) -> TraceBundle:
        """Feature datasets of a test condition (simulate + extract).

        ``monitor`` overrides the plan's observation point without
        re-simulating (multi-monitor analyses); only the plan-default
        monitor is memoised.
        """
        if monitor is not None and monitor != plan.monitor:
            raw = self.raw_traces(plan)
            with self._stage("extract"):
                bundle = extract_bundle(raw, monitor=monitor)
            return bundle
        if plan not in self._bundles:
            raw = self.raw_traces(plan)
            with self._stage("extract"):
                self._bundles[plan] = extract_bundle(raw)
        return self._bundles[plan]

    def detect(
        self,
        plan: ExperimentPlan,
        classifier: str = "c45",
        method: str = "calibrated_probability",
        false_alarm_rate: float = 0.02,
        max_models: int | None = None,
        n_buckets: int = 5,
        n_jobs: int | None = 1,
    ) -> DetectionResult:
        """Full detection experiment on one plan (memoised per knob set).

        ``n_jobs`` threads the independent sub-model fits and scoring
        passes; it is deliberately absent from the memoisation key
        because results are identical for any value.
        """
        key = (plan, classifier, method, false_alarm_rate, max_models, n_buckets)
        if key not in self._results:
            self._results[key] = run_detection_experiment(
                self.bundle(plan),
                classifier=classifier,
                method=method,
                false_alarm_rate=false_alarm_rate,
                max_models=max_models,
                n_buckets=n_buckets,
                n_jobs=n_jobs,
                stage_hook=self.metrics.record_stage,
            )
        return self._results[key]

    def fitted_detector(
        self,
        plan: ExperimentPlan,
        classifier: str = "c45",
        method: str = "calibrated_probability",
        false_alarm_rate: float = 0.02,
        max_models: int | None = None,
        n_buckets: int = 5,
        n_jobs: int | None = 1,
    ) -> "CrossFeatureDetector":
        """A trained + calibrated detector for one plan (memoised per knob set).

        Trains on the plan's training traces and calibrates the decision
        threshold on its held-out calibration trace, exactly as
        :meth:`detect` does — but returns the fitted detector itself, for
        online deployment (``n_jobs`` is excluded from the memo key;
        results are identical for any value).
        """
        from repro.core.model import CrossFeatureDetector
        from repro.ml import CLASSIFIERS

        if classifier not in CLASSIFIERS:
            raise ValueError(
                f"unknown classifier {classifier!r}; have {sorted(CLASSIFIERS)}"
            )
        key = (plan, classifier, method, false_alarm_rate, max_models, n_buckets)
        if key not in self._detectors:
            bundle = self.bundle(plan)
            detector = CrossFeatureDetector(
                classifier_factory=CLASSIFIERS[classifier],
                method=method,
                false_alarm_rate=false_alarm_rate,
                max_models=max_models,
                n_buckets=n_buckets,
                n_jobs=n_jobs,
            )
            with self._stage("fit"):
                detector.fit(
                    bundle.train.X,
                    feature_names=bundle.train.feature_names,
                    calibration_X=bundle.calibration.X,
                )
            self._detectors[key] = detector
        return self._detectors[key]

    def stream_detect(
        self,
        plan: ExperimentPlan,
        classifier: str = "c45",
        method: str = "calibrated_probability",
        false_alarm_rate: float = 0.02,
        seed: int | None = None,
        attack: bool = True,
        monitor: int | None = None,
        warmup: float | None = None,
        threshold: float | None = None,
        max_models: int | None = None,
        n_buckets: int = 5,
        n_jobs: int | None = 1,
        on_alarm: "Callable[[Alarm], None] | None" = None,
        row_policy: str | None = None,
        attribution: bool = False,
        checkpoint: "str | os.PathLike | None" = None,
        checkpoint_every: int | None = None,
        resume_from: "str | os.PathLike | None" = None,
        stream_faults: "StreamFaultPlan | str | None" = None,
    ) -> "StreamResult":
        """Online detection: train offline, then score a *live* scenario.

        Trains (or reuses) the plan's detector via
        :meth:`fitted_detector` — the training/calibration traces go
        through the cache + executor as usual — then runs ONE fresh
        scenario with a :class:`~repro.stream.StreamingExtractor` tap
        wired into the monitor's recorder, scoring every sampling window
        the moment it closes and raising :class:`~repro.stream.Alarm`
        events (surfaced as ``"alarm"`` metrics events, so the CLI can
        print them live).  Per-window features and scores are
        bit-identical to the batch pipeline over the same trace.

        Parameters
        ----------
        seed:
            Mobility seed of the streamed trace (default: the plan's
            first attack seed, or first normal seed with
            ``attack=False``).
        attack:
            ``False`` streams an intrusion-free trace instead (expected
            alarm rate ≈ the calibrated false-alarm rate).
        monitor, warmup, threshold, on_alarm, row_policy, attribution:
            The shared construction keywords (see
            :mod:`repro.stream.config`); ``None`` defaults to the plan's
            monitor / warmup, the calibrated threshold and the shared
            row policy.  ``attribution=True`` attaches a typed
            :class:`~repro.attribution.Verdict` to every alarm — the
            ``"alarm"`` metrics events gain ``type=... features=...``
            fragments and each verdict is counted via
            :meth:`RuntimeMetrics.record_verdict` (scores and alarm
            decisions are unchanged).
        checkpoint, checkpoint_every, resume_from:
            Durable-run knobs (see :mod:`repro.stream.durability`):
            ``checkpoint`` snapshots the full streaming state every
            ``checkpoint_every`` sampling ticks; ``resume_from``
            restores such a snapshot and continues, with scores and
            alarms bit-identical to the uninterrupted run.
        stream_faults:
            A :class:`~repro.stream.faults.StreamFaultPlan` (or its
            mini-language string) of injected row / crash / checkpoint
            faults — the chaos-testing path.

        A plain live run (no durability knobs) bypasses the artifact
        cache: taps consume events as they happen, so the trace is
        simulated fresh (timed as the ``stream`` stage).  A *durable*
        run — any of ``checkpoint`` / ``resume_from`` /
        ``stream_faults`` set — instead records (or loads) the trace
        through the cache + executor and replays it, because the resume
        contract is anchored in the replay's deterministic dispatch
        order (the PR 4 live==replay contract keeps the scores
        bit-identical either way).  Ground-truth labels are attached
        post hoc from the completed trace under the plan's label policy.
        """
        import numpy as np

        from repro.simulation.scenario import run_scenario
        from repro.stream.detector import OnlineDetector
        from repro.stream.durability import run_durable_stream
        from repro.stream.extractor import extractor_for_config
        from repro.stream.faults import RowFaultInjector, StreamFaultPlan

        detector = self.fitted_detector(
            plan,
            classifier=classifier,
            method=method,
            false_alarm_rate=false_alarm_rate,
            max_models=max_models,
            n_buckets=n_buckets,
            n_jobs=n_jobs,
        )

        monitor = plan.monitor if monitor is None else int(monitor)
        if monitor == plan.attacker:
            raise ValueError("monitor must differ from the attacker")
        warmup = plan.warmup if warmup is None else float(warmup)
        if seed is None:
            seed = plan.attack_seeds[0] if attack else plan.normal_seeds[0]
        config = plan.scenario_config(seed)
        attacks = plan.build_attacks() if attack else []
        if isinstance(stream_faults, str):
            stream_faults = StreamFaultPlan.parse(stream_faults)
        durable = (
            checkpoint is not None
            or resume_from is not None
            or stream_faults is not None
        )

        def relay(alarm: "Alarm") -> None:
            label = (
                f"window t={alarm.time:g}s score={alarm.score:.4f} "
                f"< {alarm.threshold:.4f}"
            )
            if alarm.verdict is not None:
                label += f" {alarm.verdict.summary()}"
                self.metrics.record_verdict(
                    f"t={alarm.time:g}s {alarm.verdict.summary()}"
                )
            self.metrics.record_alarm(label, alarm.latency_s)
            if on_alarm is not None:
                on_alarm(alarm)

        def relay_fault(fault: "StreamFault") -> None:
            self.metrics.record_stream_fault(
                f"{fault.stream or f'n{monitor}'} {fault.kind} "
                f"row {fault.index} t={fault.time:g}: {fault.detail}"
            )

        online = OnlineDetector.from_detector(
            detector, threshold=threshold, monitor=monitor, on_alarm=relay,
            row_policy=row_policy, on_fault=relay_fault,
            attribution=attribution,
        )
        injector = (
            RowFaultInjector(stream_faults, f"n{monitor}", deliver=online.consume)
            if stream_faults else None
        )
        tap = extractor_for_config(
            config,
            monitor=monitor,
            periods=plan.periods,
            warmup=warmup,
            on_row=injector if injector is not None else online.consume,
            keep_rows=False,
        )
        if durable:
            trace = self.trace(config, attacks, label=f"stream[{seed}]")
            with self._stage("stream") as timer:
                run_durable_stream(
                    trace,
                    tap,
                    online,
                    injector,
                    checkpoint=checkpoint,
                    checkpoint_every=checkpoint_every,
                    resume_from=resume_from,
                    faults=stream_faults,
                    on_checkpoint=lambda p: self.metrics.record_checkpoint(str(p)),
                    on_restore=lambda p: self.metrics.record_restore(str(p)),
                )
        else:
            with self._stage("stream") as timer:
                trace = run_scenario(config, attacks=attacks, taps=[tap])
        elapsed = timer.elapsed

        ticks = np.asarray(trace.tick_times, dtype=float)
        labels = np.asarray(trace.window_labels(plan.label_policy), dtype=bool)
        if warmup > 0:
            labels = labels[ticks >= warmup]
        if len(labels) != len(online.scores):
            # Quarantined / dropped / crashed rows leave fewer scored
            # windows than trace ticks; ground truth no longer aligns.
            labels = np.zeros(len(online.scores), dtype=bool)
        return online.result(labels=labels, elapsed_s=elapsed)

    def fleet_detect(
        self,
        plan: ExperimentPlan,
        classifier: str = "c45",
        method: str = "calibrated_probability",
        false_alarm_rate: float = 0.02,
        seeds: Sequence[int] | None = None,
        attack: bool = True,
        monitors: Sequence[int] | None = None,
        warmup: float | None = None,
        threshold: float | None = None,
        quorum: int | float = 1,
        max_models: int | None = None,
        n_buckets: int = 5,
        n_jobs: int | None = 1,
        on_alarm: "Callable[[Alarm], None] | None" = None,
        on_fused: "Callable[[FleetAlarm], None] | None" = None,
        row_policy: str | None = None,
        attribution: bool = False,
        max_consecutive_faults: int | None = None,
        stall_timeout: float | None = None,
        checkpoint: "str | os.PathLike | None" = None,
        checkpoint_every: int | None = None,
        resume_from: "str | os.PathLike | None" = None,
        stream_faults: "StreamFaultPlan | str | None" = None,
    ) -> "FleetResult":
        """Fleet detection: one detector watching every node at once.

        Trains (or reuses) the plan's detector via
        :meth:`fitted_detector`, registers one streaming lane per
        (scenario, monitor) through
        :meth:`~repro.stream.FleetDetector.from_session`, then runs one
        fresh scenario per seed with all of that scenario's taps riding
        it.  Windows closing on the same tick — across every monitored
        node and every scenario — are scored in one vectorized batch;
        per-stream scores are bit-identical to independent
        :meth:`stream_detect` runs over the same traces.

        Per-stream alarms surface as ``"alarm"`` metrics events, fused
        network-level verdicts as ``"fused_alarm"`` events (the CLI
        prints them live), and every scoring batch is accounted via
        :meth:`RuntimeMetrics.record_fleet_batch`.

        Parameters
        ----------
        seeds:
            Mobility seeds, one fresh scenario each (default: the plan's
            first attack seed, or first normal seed with
            ``attack=False``).
        attack:
            ``False`` streams intrusion-free scenarios instead.
        monitors, warmup, threshold, quorum, on_alarm, on_fused:
            The shared construction keywords (see
            :mod:`repro.stream.config`); ``monitors=None`` watches every
            node except the plan's attacker.
        attribution:
            ``True`` attaches typed verdicts per lane alarm and a fused
            verdict (majority vote over the alarming lanes) per
            :class:`~repro.stream.FleetAlarm`; the ``"alarm"`` /
            ``"fused_alarm"`` metrics events gain ``type=...``
            fragments and verdicts are counted via
            :meth:`RuntimeMetrics.record_verdict`.  Scores, alarm sets
            and fused timing are unchanged.
        row_policy, max_consecutive_faults, stall_timeout:
            Degraded-input handling (see :mod:`repro.stream.config`);
            ``None`` takes the shared defaults.  Quarantined rows,
            auto-sealed lanes and duplicate seals surface as
            ``"stream_fault"`` / ``"lane_sealed"`` /
            ``"duplicate_seal"`` metrics events and ride the
            :class:`~repro.stream.FleetResult`.
        checkpoint, checkpoint_every, resume_from:
            Durable-run knobs (see :mod:`repro.stream.durability`).
        stream_faults:
            Injected chaos — a :class:`~repro.stream.faults.StreamFaultPlan`
            or its mini-language string.

        Plain live runs bypass the artifact cache (timed as the
        ``fleet`` stage); durable runs (any of ``checkpoint`` /
        ``resume_from`` / ``stream_faults`` set) record the traces
        through the cache and replay them round-robin (see
        :func:`~repro.stream.durability.run_durable_fleet`).
        Ground-truth labels are attached post hoc per scenario under the
        plan's label policy.
        """
        import numpy as np

        from repro.simulation.scenario import run_scenario
        from repro.stream.config import DEFAULT_MAX_FAULTS
        from repro.stream.durability import run_durable_fleet
        from repro.stream.faults import StreamFaultPlan
        from repro.stream.fleet import FleetDetector

        def relay_alarm(alarm: "Alarm") -> None:
            label = (
                f"{alarm.stream} t={alarm.time:g}s score={alarm.score:.4f} "
                f"< {alarm.threshold:.4f}"
            )
            if alarm.verdict is not None:
                label += f" {alarm.verdict.summary()}"
                self.metrics.record_verdict(
                    f"{alarm.stream} t={alarm.time:g}s {alarm.verdict.summary()}"
                )
            self.metrics.record_alarm(label, alarm.latency_s)
            if on_alarm is not None:
                on_alarm(alarm)

        def relay_fused(fused: "FleetAlarm") -> None:
            label = (
                f"t={fused.time:g}s {len(fused.streams)}/{fused.reporting} "
                f"streams below {fused.threshold:.4f} "
                f"(quorum {fused.needed})"
            )
            if fused.verdict is not None:
                label += f" {fused.verdict.summary()}"
                self.metrics.record_verdict(
                    f"fused t={fused.time:g}s {fused.verdict.summary()}"
                )
            self.metrics.record_fused_alarm(label, fused.latency_s)
            if on_fused is not None:
                on_fused(fused)

        def relay_fault(fault: "StreamFault") -> None:
            self.metrics.record_stream_fault(
                f"{fault.stream} {fault.kind} row {fault.index} "
                f"t={fault.time:g}: {fault.detail}"
            )

        def relay_seal(name: str, reason: str) -> None:
            if reason == "duplicate":
                self.metrics.record_duplicate_seal(name)
            else:
                self.metrics.record_lane_sealed(f"{name}: {reason}")

        if seeds is None:
            seeds = (plan.attack_seeds[0],) if attack else (plan.normal_seeds[0],)
        seeds = tuple(seeds)
        scenario_names = tuple(f"s{k}" for k in range(len(seeds)))
        warmup = plan.warmup if warmup is None else float(warmup)
        if isinstance(stream_faults, str):
            stream_faults = StreamFaultPlan.parse(stream_faults)
        durable = (
            checkpoint is not None
            or resume_from is not None
            or stream_faults is not None
        )

        fleet = FleetDetector.from_session(
            self,
            plan,
            monitors=monitors,
            scenarios=scenario_names,
            warmup=warmup,
            threshold=threshold,
            quorum=quorum,
            classifier=classifier,
            method=method,
            false_alarm_rate=false_alarm_rate,
            max_models=max_models,
            n_buckets=n_buckets,
            n_jobs=n_jobs,
            on_alarm=relay_alarm,
            on_fused=relay_fused,
            on_batch=self.metrics.record_fleet_batch,
            row_policy=row_policy,
            max_consecutive_faults=(
                DEFAULT_MAX_FAULTS if max_consecutive_faults is None
                else max_consecutive_faults
            ),
            stall_timeout=stall_timeout,
            faults=stream_faults,
            on_fault=relay_fault,
            on_seal=relay_seal,
            attribution=attribution,
        )

        attacks = plan.build_attacks() if attack else []
        labels: dict[str, np.ndarray] = {}

        def scenario_truth(trace) -> np.ndarray:
            ticks = np.asarray(trace.tick_times, dtype=float)
            truth = np.asarray(trace.window_labels(plan.label_policy), dtype=bool)
            return truth[ticks >= warmup] if warmup > 0 else truth

        if durable:
            traces: dict[str, "SimulationTrace"] = {}
            for name, seed in zip(scenario_names, seeds):
                config = plan.scenario_config(seed)
                traces[name] = self.trace(config, attacks, label=f"fleet[{name}]")
            with self._stage("fleet") as timer:
                run_durable_fleet(
                    traces,
                    fleet,
                    checkpoint=checkpoint,
                    checkpoint_every=checkpoint_every,
                    resume_from=resume_from,
                    faults=stream_faults,
                    on_checkpoint=lambda r: self.metrics.record_checkpoint(str(r)),
                    on_restore=lambda r: self.metrics.record_restore(str(r)),
                )
            for name, trace in traces.items():
                truth = scenario_truth(trace)
                for tap in fleet.taps(name):
                    labels[tap.name] = truth
        else:
            with self._stage("fleet") as timer:
                for name, seed in zip(scenario_names, seeds):
                    config = plan.scenario_config(seed)
                    taps = fleet.taps(name)
                    trace = run_scenario(config, attacks=attacks, taps=taps)
                    truth = scenario_truth(trace)
                    for tap in taps:
                        labels[tap.name] = truth
                fleet.finish()
        elapsed = timer.elapsed
        # Lanes that crashed, were sealed or quarantined rows hold fewer
        # scored windows than trace ticks; drop misaligned ground truth.
        for name, lane_labels in list(labels.items()):
            stream_result = fleet._lanes.get(name)
            if stream_result is not None and \
                    len(lane_labels) != len(stream_result.scores):
                del labels[name]
        return fleet.result(labels=labels, elapsed_s=elapsed)

    def sweep(
        self,
        plans: Mapping[str, ExperimentPlan] | Sequence[ExperimentPlan],
        classifier: str = "c45",
        method: str = "calibrated_probability",
        **knobs,
    ):
        """Detection experiments over several plans, sharing one fan-out.

        Accepts a name→plan mapping (returns a name→result dict, e.g. the
        output of :func:`~repro.eval.experiments.four_scenarios`) or a
        plain sequence of plans (returns a list of results in order).
        """
        if isinstance(plans, Mapping):
            self.prefetch(list(plans.values()))
            return {
                name: self.detect(plan, classifier=classifier, method=method, **knobs)
                for name, plan in plans.items()
            }
        plans = list(plans)
        self.prefetch(plans)
        return [
            self.detect(plan, classifier=classifier, method=method, **knobs)
            for plan in plans
        ]

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover
        where = str(self.cache.dir) if self.cache is not None else "disabled"
        return f"Session(jobs={self.jobs}, cache={where!r})"


# ----------------------------------------------------------------------
# Process-wide default session (backs the legacy module-level helpers).
# ----------------------------------------------------------------------
_default_session: Session | None = None


def default_session() -> Session:
    """The lazily-created session behind the legacy module-level API."""
    global _default_session
    if _default_session is None:
        _default_session = Session()
    return _default_session


def set_default_session(session: Session | None) -> None:
    """Replace (or with ``None``, reset) the process-wide default session."""
    global _default_session
    _default_session = session
