"""Per-node trace logging — the simulator's substitute for ns-2 trace files.

Everything the detection pipeline consumes is recorded here:

* **packet events** — a timestamp stream per (packet type, flow direction)
  pair, from which Feature Set II's counts and inter-packet-interval
  statistics are computed over 5 s / 60 s / 900 s windows;
* **route events** — timestamp streams for the five route-fabric event kinds
  of Feature Set I (add, removal, find, notice, repair);
* **route length samples** — (time, hop count) pairs for the *average route
  length* feature.

The conventions for which node logs which event are:

* ``SENT`` at the originator of a packet,
* ``RECEIVED`` at its final destination (each processing recipient for
  broadcasts),
* ``FORWARDED`` at intermediate routers that retransmit it,
* ``DROPPED`` wherever it is discarded (no route, TTL expiry, interface
  queue overflow, malicious drop).
"""

from __future__ import annotations

import bisect
from enum import IntEnum

from repro.simulation.packet import Direction, PacketType


class RouteEventKind(IntEnum):
    """Route-fabric events of Feature Set I (Table 4)."""

    ADD = 0       #: route newly added by route discovery
    REMOVAL = 1   #: stale route being removed
    FIND = 2      #: route found in table/cache, no re-discovery needed
    NOTICE = 3    #: route learned by eavesdropping someone else's discovery
    REPAIR = 4    #: broken route under repair / salvage


class _PacketChannel:
    """A swappable appender for one ``(ptype, direction)`` event stream.

    ``append(time)`` is the only interface.  With no listeners subscribed
    it *is* the raw ``list.append`` of the batch log — one C call per
    event, no Python frame.  When listeners attach, :class:`NodeStats`
    swaps in a notifying closure, so hot-path callers never check."""

    __slots__ = ("append",)


class NodeStats:
    """Trace log of one node.

    Besides accumulating the batch trace, a ``NodeStats`` can publish each
    event to subscribed listeners as it is logged — the tap the streaming
    feature extractor (:mod:`repro.stream`) hangs off.  Listeners are pure
    observers: they receive the exact ``(time, ...)`` tuples the batch log
    stores, in the same order, and cannot alter the trace.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        # Timestamp streams keyed by (PacketType, Direction).  Appended in
        # simulation-time order, so each list is sorted.
        self.packet_times: dict[tuple[int, int], list[float]] = {
            (ptype, direction): []
            for ptype in PacketType
            for direction in Direction
        }
        self.route_times: dict[int, list[float]] = {kind: [] for kind in RouteEventKind}
        self.route_length_samples: list[tuple[float, int]] = []
        self._listeners: list = []
        self._channels: dict[tuple[int, int], _PacketChannel] = {}

    # ------------------------------------------------------------------
    # Streaming taps
    # ------------------------------------------------------------------
    def subscribe(self, listener) -> None:
        """Attach a live event listener.

        A listener provides ``on_packet(time, ptype, direction)``,
        ``on_route_event(time, kind)`` and ``on_route_length(time, hops)``;
        each is invoked synchronously from the matching ``log_*`` call,
        *after* the event is appended to the batch log.
        """
        self._listeners.append(listener)
        self._rebind_channels()

    def unsubscribe(self, listener) -> None:
        """Detach a previously subscribed listener."""
        self._listeners.remove(listener)
        self._rebind_channels()

    def packet_channel(self, ptype: PacketType, direction: Direction) -> _PacketChannel:
        """A persistent fast appender for one packet-event stream.

        Hot logging sites (the flood-handler entry points) bind one of
        these at protocol construction and call ``channel.append(now)``
        per event — equivalent to :meth:`log_packet` for that fixed
        ``(ptype, direction)`` pair, including listener notification,
        but without the dict lookup and method frame.
        """
        key = (ptype, direction)
        channel = self._channels.get(key)
        if channel is None:
            channel = _PacketChannel()
            self._channels[key] = channel
            self._bind_channel(key, channel)
        return channel

    def _bind_channel(self, key: tuple[int, int], channel: _PacketChannel) -> None:
        raw = self.packet_times[key].append
        if not self._listeners:
            channel.append = raw
        else:
            ptype, direction = key
            listeners = self._listeners

            def notify(time: float, _raw=raw, _pt=ptype, _dr=direction) -> None:
                _raw(time)
                for listener in listeners:
                    listener.on_packet(time, _pt, _dr)

            channel.append = notify

    def _rebind_channels(self) -> None:
        for key, channel in self._channels.items():
            self._bind_channel(key, channel)

    def __getstate__(self) -> dict:
        # Listeners are live-session objects (they may hold models or
        # callbacks) and channels capture bound methods; never persist
        # either with a cached trace.
        state = self.__dict__.copy()
        state["_listeners"] = []
        state["_channels"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_listeners", [])
        self.__dict__.setdefault("_channels", {})

    # ------------------------------------------------------------------
    # Logging
    # ------------------------------------------------------------------
    def log_packet(self, time: float, ptype: PacketType, direction: Direction) -> None:
        """Record one packet event."""
        # IntEnum members hash/compare equal to their int values, so enum
        # lookup keys hit the same entries without the int() conversions
        # (the dict's key *objects* stay enums either way).
        self.packet_times[ptype, direction].append(time)
        if self._listeners:
            for listener in self._listeners:
                listener.on_packet(time, ptype, direction)

    def log_route_event(self, time: float, kind: RouteEventKind) -> None:
        """Record one route-fabric event."""
        self.route_times[kind].append(time)
        if self._listeners:
            for listener in self._listeners:
                listener.on_route_event(time, kind)

    def log_route_length(self, time: float, hops: int) -> None:
        """Record the hop count of a route used for a data transmission."""
        self.route_length_samples.append((time, hops))
        if self._listeners:
            for listener in self._listeners:
                listener.on_route_length(time, hops)

    # ------------------------------------------------------------------
    # Queries (used by tests and the feature extractor)
    # ------------------------------------------------------------------
    def packet_count(
        self,
        ptype: PacketType | None = None,
        direction: Direction | None = None,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> int:
        """Count packet events, optionally filtered by type/direction/window.

        ``None`` for ``ptype`` or ``direction`` means "all".  The window is
        the half-open interval ``(start, end]`` — the same convention the
        feature extractor uses for sampling windows.
        """
        total = 0
        for (pt, dr), times in self.packet_times.items():
            if ptype is not None and pt != int(ptype):
                continue
            if direction is not None and dr != int(direction):
                continue
            lo = bisect.bisect_right(times, start)
            hi = bisect.bisect_right(times, end)
            total += hi - lo
        return total

    def route_event_count(
        self,
        kind: RouteEventKind,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> int:
        """Count route events of one kind inside ``(start, end]``."""
        times = self.route_times[int(kind)]
        return bisect.bisect_right(times, end) - bisect.bisect_right(times, start)


class TraceRecorder:
    """The collection of :class:`NodeStats` for one simulation run."""

    def __init__(self, n_nodes: int):
        self.nodes = [NodeStats(i) for i in range(n_nodes)]

    def __getitem__(self, node_id: int) -> NodeStats:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def total_packets(self) -> int:
        """Total packet events across all nodes (sanity metric for tests)."""
        return sum(
            len(times) for stats in self.nodes for times in stats.packet_times.values()
        )
