"""A mobile node: the junction between medium, routing, traffic and attacks.

The node itself is thin.  It owns no protocol logic — it wires the wireless
medium to a routing protocol instance, demultiplexes delivered data packets
to traffic agents, and exposes the two hooks the attack modules use:

* ``drop_filter`` — a predicate consulted by the routing protocol before
  relaying a packet; packet-dropping attacks (and a black hole's absorb
  phase) install one on the compromised node;
* direct access to ``self.routing`` — black hole scripts call into the
  protocol to emit forged control messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.simulation.engine import Simulator
from repro.simulation.medium import FailureCallback, WirelessMedium
from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.stats import NodeStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.base import RoutingProtocol


class TrafficAgent(Protocol):
    """What the node expects from a traffic agent (see ``repro.traffic``)."""

    def on_receive(self, packet: Packet) -> None:
        """Handle a data packet delivered for this agent's flow."""


DropFilter = Callable[[Packet], bool]


class Node:
    """One mobile host with its protocol stack."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        medium: WirelessMedium,
        stats: NodeStats,
        promiscuous: bool = False,
    ):
        self.node_id = node_id
        self.sim = sim
        self.medium = medium
        self.stats = stats
        self._promiscuous = bool(promiscuous)
        self.routing: "RoutingProtocol | None" = None
        self.agents: dict[int, TrafficAgent] = {}
        self.drop_filter: DropFilter | None = None
        self.data_delivered = 0
        self.data_originated = 0
        medium.attach(self)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def promiscuous(self) -> bool:
        """Whether this node taps unicasts it overhears (DSR sets this)."""
        return self._promiscuous

    @promiscuous.setter
    def promiscuous(self, value: bool) -> None:
        self._promiscuous = bool(value)
        # Keep the medium's listener registry in sync so unicast delivery
        # can skip the bystander sweep when nobody is listening.
        nodes = self.medium.nodes
        if self.node_id < len(nodes) and nodes[self.node_id] is self:
            self.medium._note_promiscuous(self.node_id, self._promiscuous)

    def set_routing(self, protocol: "RoutingProtocol") -> None:
        """Install the routing protocol (exactly once)."""
        if self.routing is not None:
            raise RuntimeError(f"node {self.node_id} already has a routing protocol")
        self.routing = protocol
        self.refresh_dispatch()

    def refresh_dispatch(self) -> None:
        """(Re-)point the medium's dispatch tables at the protocol handlers.

        Called on protocol install and again after a protocol swaps in its
        flattened fast-path handlers (which happens after ``set_routing``,
        at the end of the protocol's own ``__init__``).  Batched delivery
        then skips the on_receive/on_overhear trampolines, and broadcast
        fan-out can bind per-packet-type handlers from ``typed_handlers``.
        """
        protocol = self.routing
        if protocol is None:
            return
        nodes = self.medium.nodes
        if self.node_id < len(nodes) and nodes[self.node_id] is self:
            self.medium._note_handlers(
                self.node_id,
                protocol.handle_packet,
                protocol.handle_overhear,
                protocol.typed_handlers,
            )

    def register_agent(self, flow_id: int, agent: TrafficAgent) -> None:
        """Register a traffic agent to receive data packets for ``flow_id``."""
        self.agents[flow_id] = agent

    # ------------------------------------------------------------------
    # Position (convenience passthroughs)
    # ------------------------------------------------------------------
    @property
    def position(self) -> tuple[float, float]:
        return self.medium.mobility.position(self.node_id, self.sim.now)

    @property
    def speed(self) -> float:
        return self.medium.mobility.speed(self.node_id, self.sim.now)

    # ------------------------------------------------------------------
    # Transmit API used by the routing protocol
    # ------------------------------------------------------------------
    def broadcast(self, packet: Packet) -> bool:
        """Transmit to all neighbours (returns False on queue drop)."""
        return self.medium.broadcast(self.node_id, packet)

    def unicast(self, packet: Packet, next_hop: int, on_fail: FailureCallback | None = None) -> bool:
        """Transmit to one neighbour with link-failure feedback."""
        return self.medium.unicast(self.node_id, packet, next_hop, on_fail)

    # ------------------------------------------------------------------
    # Traffic API
    # ------------------------------------------------------------------
    def send_data(
        self,
        dest: int,
        size: int = 512,
        flow_id: int | None = None,
        info: dict | None = None,
    ) -> None:
        """Originate a data packet (called by traffic agents).

        ``info`` carries transport-level header fields (e.g. TCP sequence
        numbers); routing protocols add their own keys alongside.
        """
        if self.routing is None:
            raise RuntimeError(f"node {self.node_id} has no routing protocol")
        packet = Packet(
            ptype=PacketType.DATA,
            origin=self.node_id,
            dest=dest,
            size=size,
            flow_id=flow_id,
            info=dict(info) if info else {},
        )
        self.data_originated += 1
        self.stats.log_packet(self.sim.now, PacketType.DATA, Direction.SENT)
        self.routing.send_data(packet)

    def deliver(self, packet: Packet) -> None:
        """Data packet reached its final destination (called by routing)."""
        self.data_delivered += 1
        self.stats.log_packet(self.sim.now, PacketType.DATA, Direction.RECEIVED)
        if packet.flow_id is not None:
            agent = self.agents.get(packet.flow_id)
            if agent is not None:
                agent.on_receive(packet)

    # ------------------------------------------------------------------
    # Medium callbacks
    # ------------------------------------------------------------------
    def on_receive(self, packet: Packet, from_id: int) -> None:
        """Medium callback: hand an arriving packet to the routing layer."""
        if self.routing is not None:
            self.routing.handle_packet(packet, from_id)

    def on_overhear(self, packet: Packet, from_id: int) -> None:
        """Medium callback: promiscuous tap of a bystander transmission."""
        if self.routing is not None:
            self.routing.handle_overhear(packet, from_id)

    # ------------------------------------------------------------------
    # Attack hook
    # ------------------------------------------------------------------
    def should_drop(self, packet: Packet) -> bool:
        """Consulted by the routing protocol before relaying ``packet``."""
        return self.drop_filter is not None and self.drop_filter(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id})"
