"""Discrete-event MANET simulation substrate.

This subpackage is the reproduction's substitute for ns-2: a from-scratch
discrete-event simulator with random-waypoint mobility, a unit-disc wireless
medium with transmission serialization, per-node protocol stacks and trace
logging.  The cross-feature detection models only consume the trace
statistics produced here (route events and per-direction packet streams), so
the simulator's job is to generate those streams with realistic inter-feature
correlations under the paper's scenario parameters.
"""

from repro.simulation.engine import Event, Simulator
from repro.simulation.medium import WirelessMedium
from repro.simulation.mobility import RandomWaypointMobility
from repro.simulation.node import Node
from repro.simulation.packet import Direction, Packet, PacketType
from repro.simulation.scenario import ScenarioConfig, SimulationTrace, run_scenario
from repro.simulation.stats import NodeStats, TraceRecorder

__all__ = [
    "Direction",
    "Event",
    "Node",
    "NodeStats",
    "Packet",
    "PacketType",
    "RandomWaypointMobility",
    "ScenarioConfig",
    "SimulationTrace",
    "Simulator",
    "TraceRecorder",
    "WirelessMedium",
    "run_scenario",
]
