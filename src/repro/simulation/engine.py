"""Discrete-event simulation kernel.

A minimal, deterministic event scheduler: events are (time, sequence) ordered
callbacks kept in a binary heap.  Ties on time break by insertion order so a
run is fully reproducible for a fixed seed.  Cancellation is lazy — cancelled
events stay in the queue and are skipped when popped — which keeps both
``schedule`` and ``cancel`` O(log n) / O(1).

Two execution modes share that contract (see DESIGN.md §Event kernel):

* **reference** (``event_batch=False`` / ``REPRO_EVENT_BATCH=0``) — the
  pre-optimization loop: peek the heap top, pop, dispatch, one event at a
  time.  Kept verbatim as the behavioural baseline the bucketed mode is
  tested against.
* **bucketed** (the default) — a calendar-queue-style near-future lane.
  The run loop drains every heap entry within ``lane_quantum`` of the next
  event time into a sorted bucket (heap pops already yield sorted order)
  and dispatches the bucket sequentially by plain list indexing.  Events
  scheduled *into* the open bucket window are placed by binary insertion
  into the unconsumed tail, so the executed order is exactly the total
  ``(time, seq)`` order of the heap — only the data structure differs.

The kernel also exposes a transient-event fast path
(:meth:`Simulator.schedule_transient_at`) for callers that never keep the
returned handle (the wireless medium's per-delivery events): those events
are pooled and reused after dispatch, eliminating the dominant allocation
churn of broadcast fan-out.
"""

from __future__ import annotations

import gc
import heapq
import os
import random
from bisect import insort
from typing import Any, Callable

_NO_ARGS: tuple = ()

#: Width of the near-future bucket lane in seconds.  Sized to cover the
#: medium's delivery-jitter span (2 ms) plus a typical transmission time so
#: a broadcast's fan-out and its immediate rebroadcasts land in one bucket.
DEFAULT_LANE_QUANTUM = 0.004

#: Upper bound on pooled transient events / recycled handles.
_EVENT_POOL_CAP = 512


def _default_event_batch() -> bool:
    """Batched kernel default: on, unless ``REPRO_EVENT_BATCH=0``."""
    return os.environ.get("REPRO_EVENT_BATCH", "1") not in ("0", "false", "no")


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Instances are handles: hold one to :meth:`cancel` the event later.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim",
                 "_queued", "_transient")

    #: Class flag: True only for :class:`MacroEvent` (read on the hot path,
    #: so a class attribute rather than an isinstance check).
    _macro = False

    def __init__(self, time: float, seq: int, callback: Callable[..., Any],
                 args: tuple, sim: "Simulator | None" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._queued = False
        self._transient = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._queued:
            self._queued = False
            if self._sim is not None:
                self._sim._pending -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class MacroEvent(Event):
    """A batch of same-origin deliveries executed as one queue entry.

    ``entries`` is a sorted list of ``(time, seq, handler)`` triples whose
    seqs were reserved from the simulator's counter at fan-out time, so the
    batch occupies exactly the ``(time, seq)`` keys the equivalent
    per-receiver events would have.  ``handler(*shared_args)`` is called for
    each entry; the run loop dispatches consecutive entries inline while the
    next entry still precedes every other queued event, and otherwise parks
    the batch back in the queue at the next entry's reserved key.
    """

    __slots__ = ("entries", "cursor", "shared_args")

    _macro = True

    def __init__(self, sim: "Simulator"):
        super().__init__(0.0, 0, sim._run_macro, (), sim)
        self.args = (self,)
        self.entries: list[tuple[float, int, Callable[..., Any]]] = []
        self.cursor = 0
        self.shared_args: tuple = ()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All stochastic
        components (mobility, medium jitter, traffic, attacks) draw from this
        generator so a scenario is reproducible from its seed alone.
    event_batch:
        Use the bucketed near-future event lane.  ``None`` (default) reads
        ``$REPRO_EVENT_BATCH``; ``False`` forces the pure-heap reference
        loop.  Execution order is identical either way.
    lane_quantum:
        Width of the bucket window in seconds (bucketed mode only).
    """

    def __init__(self, seed: int = 0, event_batch: bool | None = None,
                 lane_quantum: float = DEFAULT_LANE_QUANTUM):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self.event_batch: bool = (
            _default_event_batch() if event_batch is None else bool(event_batch)
        )
        self.lane_quantum = lane_quantum
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self._processed = 0
        self._pending = 0
        # Bucket lane state.  The bucket list object is never rebound (only
        # mutated in place) so the medium's macro-events can cache a
        # reference to it.  Invariant while a bucket is open: every
        # unconsumed bucket entry key <= _bucket_horizon < every heap key;
        # outside run(), the bucket is empty and the horizon is -inf so
        # schedule_at always routes to the heap.
        self._bucket: list[tuple[float, int, Event]] = []
        self._bucket_pos = 0
        self._bucket_horizon = float("-inf")
        # Parked delivery batches with an in-window next entry.  A macro
        # parking into the open bucket would memmove the bucket tail on
        # every park (the dominant kernel cost at scale: most deliveries
        # park); a dedicated heap makes that O(log live-macros) instead.
        # Invariant: every entry here is <= _bucket_horizon, so the run
        # loop's two-way min (bucket head vs this heap's top) preserves
        # the exact total (time, seq) order.  Empty outside run().
        self._macro_heap: list[tuple[float, int, Event]] = []
        self._until: float | None = None
        self._event_pool: list[Event] = []
        self._macro_pool: list[MacroEvent] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args, self)
        event._queued = True
        self._pending += 1
        # Queue entries are (time, seq, event) tuples: the (time, seq) pair
        # is unique, so ordering is identical to comparing Event objects,
        # but tuple comparisons run at C speed instead of Event.__lt__.
        if time <= self._bucket_horizon:
            insort(self._bucket, (time, seq, event), lo=self._bucket_pos)
        else:
            heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_transient_at(self, time: float, callback: Callable[..., Any],
                              *args: Any) -> None:
        """Schedule a fire-and-forget callback at an absolute time.

        Contract: the caller never needs a handle (so the event cannot be
        cancelled from outside) and ``time >= now``.  The event object is
        recycled after dispatch; used by the medium's delivery fan-out.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, 0, callback, args, self)
            event._transient = True
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        event._queued = True
        self._pending += 1
        if time <= self._bucket_horizon:
            insort(self._bucket, (time, seq, event), lo=self._bucket_pos)
        else:
            heapq.heappush(self._heap, (time, seq, event))

    def schedule_transient(self, delay: float, callback: Callable[..., Any],
                           *args: Any) -> None:
        """Relative-delay form of :meth:`schedule_transient_at`."""
        self.schedule_transient_at(self.now + delay, callback, *args)

    def _requeue(self, time: float, seq: int, event: Event) -> None:
        """Re-insert a macro-event at an already-reserved ``(time, seq)`` key.

        Used by the medium's delivery batches: the batch reserved one seq
        per receiver at fan-out time, so re-queuing at the next entry's key
        lands the batch exactly where the per-receiver event would have sat.
        """
        event.time = time
        event.seq = seq
        event._queued = True
        self._pending += 1
        if time <= self._bucket_horizon:
            if event._macro:
                heapq.heappush(self._macro_heap, (time, seq, event))
            else:
                insort(self._bucket, (time, seq, event), lo=self._bucket_pos)
        else:
            heapq.heappush(self._heap, (time, seq, event))

    def alloc_macro(self) -> MacroEvent:
        """Get a pooled (or fresh) :class:`MacroEvent` for a delivery batch.

        The caller fills ``entries`` with sorted ``(time, seq, handler)``
        triples (reserving seqs from ``_seq`` itself), sets ``shared_args``
        and ``cursor = 0``, then queues the batch with :meth:`_requeue` at
        the head entry's key.
        """
        pool = self._macro_pool
        if pool:
            macro = pool.pop()
            macro.cancelled = False
            return macro
        return MacroEvent(self)

    def _run_macro(self, macro: MacroEvent) -> None:
        """Dispatch a macro-event (fallback used by the reference loop).

        The bucketed loop inlines this logic; this method keeps macro-events
        executable under any loop.  The engine has already advanced ``now``
        and ``_processed`` for the entry at ``cursor``.
        """
        entries = macro.entries
        args = macro.shared_args
        i = macro.cursor
        n = len(entries)
        until = self._until
        while True:
            entries[i][2](*args)
            i += 1
            if i == n:
                break
            me = entries[i]
            if self._running and (until is None or me[0] <= until):
                nxt = self._next_key()
                if nxt is None or me < nxt:
                    self.now = me[0]
                    self._processed += 1
                    continue
            macro.cursor = i
            self._requeue(me[0], me[1], macro)
            return
        entries.clear()
        macro.shared_args = _NO_ARGS
        if len(self._macro_pool) < _EVENT_POOL_CAP:
            self._macro_pool.append(macro)

    def _next_key(self) -> tuple[float, int, Event] | None:
        """The queue entry that would execute next.

        Minimum of the bucket head and the parked-macro heap (both within
        the open window, so both precede everything on the main heap),
        falling back to the main heap top.
        """
        pos = self._bucket_pos
        bucket = self._bucket
        nxt = bucket[pos] if pos < len(bucket) else None
        mheap = self._macro_heap
        if mheap and (nxt is None or mheap[0] < nxt):
            nxt = mheap[0]
        if nxt is not None:
            return nxt
        heap = self._heap
        if heap:
            return heap[0]
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Runs until the queue is empty, or until simulation time would exceed
        ``until``.  When stopped by ``until``, ``now`` is advanced to exactly
        ``until`` so periodic processes restarted afterwards stay aligned.
        """
        self._running = True
        self._until = until
        try:
            if self.event_batch:
                self._run_bucketed(until)
            else:
                self._run_reference(until)
        finally:
            # Return any unconsumed bucket tail and parked macros to the
            # heap so state is consistent after stop()/until/exceptions,
            # then close the lane.
            bucket = self._bucket
            if self._bucket_pos < len(bucket):
                heap = self._heap
                for entry in bucket[self._bucket_pos:]:
                    heapq.heappush(heap, entry)
            mheap = self._macro_heap
            if mheap:
                heap = self._heap
                for entry in mheap:
                    heapq.heappush(heap, entry)
                del mheap[:]
            del bucket[:]
            self._bucket_pos = 0
            self._bucket_horizon = float("-inf")
            self._until = None
            self._running = False
        if until is not None and until > self.now:
            self.now = until

    def _run_reference(self, until: float | None) -> None:
        """Pre-optimization loop: peek top, pop, dispatch one event at a time."""
        heap = self._heap
        pool = self._event_pool
        while self._running and heap:
            event = heap[0][2]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            event._queued = False
            self._pending -= 1
            self.now = event.time
            self._processed += 1
            event.callback(*event.args)
            if event._transient and not event._queued:
                event.callback = None
                event.args = _NO_ARGS
                if len(pool) < _EVENT_POOL_CAP:
                    pool.append(event)

    def _run_bucketed(self, until: float | None) -> None:
        """Bucketed near-future lane; identical ``(time, seq)`` order.

        Repeatedly drains every heap entry within ``lane_quantum`` of the
        next event into a sorted list (heap pops come out sorted) and walks
        it by index.  Events scheduled into the open window during dispatch
        are insorted into the unconsumed tail, so total order is preserved.
        """
        # The bucketed kernel recycles its events and packets from pools
        # and frees everything else by refcount, so cyclic-GC generation
        # scans are pure overhead at millions of dispatches — pause the
        # collector for the duration of the run.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._run_bucketed_loop(until)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run_bucketed_loop(self, until: float | None) -> None:
        heap = self._heap
        bucket = self._bucket
        mheap = self._macro_heap
        pool = self._event_pool
        macro_pool = self._macro_pool
        quantum = self.lane_quantum
        heappop = heapq.heappop
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace
        while self._running:
            pos = self._bucket_pos
            if pos < len(bucket):
                entry = bucket[pos]
                if mheap and mheap[0] < entry:
                    entry = heappop(mheap)
                else:
                    self._bucket_pos = pos + 1
            elif mheap:
                entry = heappop(mheap)
            else:
                # Refill: open a new bucket window at the next event time.
                del bucket[:]
                self._bucket_pos = 0
                if not heap:
                    self._bucket_horizon = float("-inf")
                    return
                t0 = heap[0][0]
                if until is not None and t0 > until:
                    self._bucket_horizon = float("-inf")
                    return
                horizon = t0 + quantum
                if until is not None and horizon > until:
                    horizon = until
                self._bucket_horizon = horizon
                while heap and heap[0][0] <= horizon:
                    bucket.append(heappop(heap))
                continue
            event = entry[2]
            if event.cancelled:
                continue
            event._queued = False
            self._pending -= 1
            self.now = entry[0]
            self._processed += 1
            if event._macro:
                # Inline macro dispatch: run consecutive batch entries while
                # the next one still precedes every other queued event.  When
                # another *parked macro* precedes instead, swap to it right
                # here (heapreplace keeps the total order) — delivery-heavy
                # workloads interleave many concurrent fan-outs, and the
                # macro-to-macro hop skips the generic iteration entirely
                # (the park's queued/pending updates and the adoption's
                # cancel out, so neither is touched).  Only a non-macro
                # event (or exhaustion) falls back to the outer loop.
                m_entries = event.entries
                pkt, snd = event.shared_args
                mi = event.cursor
                mn = len(m_entries)
                # Loop-invariant hoists.  _bucket_pos and _bucket_horizon
                # only change in the outer loop (in-window schedules insort
                # at lo=_bucket_pos without moving it), and every mutation
                # of the bucket or heap during dispatch comes from a
                # schedule_* call, which bumps _seq — so the boundary `nxt`
                # can be cached and revalidated against _seq alone.  (The
                # swap paths' own heap pushes reset `sv` explicitly.)
                bpos = self._bucket_pos
                bhor = self._bucket_horizon
                no_until = until is None
                nxt = None
                sv = -1
                proc = 0
                while True:
                    m_entries[mi][2](pkt, snd)
                    mi += 1
                    if mi == mn:
                        m_entries.clear()
                        event.shared_args = _NO_ARGS
                        if len(macro_pool) < _EVENT_POOL_CAP:
                            macro_pool.append(event)
                        if mheap and self._running:
                            # Adopt the earliest parked macro if it still
                            # precedes every non-macro event.
                            if self._seq != sv:
                                sv = self._seq
                                if bpos < len(bucket):
                                    nxt = bucket[bpos]
                                elif heap:
                                    nxt = heap[0]
                                else:
                                    nxt = None
                            head = mheap[0]
                            if (nxt is None or head < nxt) and (
                                no_until or head[0] <= until
                            ):
                                heappop(mheap)
                                event = head[2]
                                event._queued = False
                                self._pending -= 1
                                self.now = head[0]
                                proc += 1
                                m_entries = event.entries
                                pkt, snd = event.shared_args
                                mi = event.cursor
                                mn = len(m_entries)
                                continue
                        break
                    me = m_entries[mi]
                    if self._running and (no_until or me[0] <= until):
                        if self._seq != sv:
                            sv = self._seq
                            if bpos < len(bucket):
                                nxt = bucket[bpos]
                            elif heap:
                                nxt = heap[0]
                            else:
                                nxt = None
                        if nxt is None or me < nxt:
                            if mheap:
                                head = mheap[0]
                                if head < me:
                                    # Park here, adopt the earlier macro:
                                    # one C-level sift, no outer-loop trip.
                                    # Entries past the horizon belong on
                                    # the main heap (mheap invariant).
                                    event.cursor = mi
                                    event.time = me[0]
                                    event.seq = me[1]
                                    if me[0] <= bhor:
                                        heapreplace(mheap, (me[0], me[1], event))
                                    else:
                                        heappop(mheap)
                                        heappush(heap, (me[0], me[1], event))
                                        sv = -1
                                    event = head[2]
                                    self.now = head[0]
                                    proc += 1
                                    m_entries = event.entries
                                    pkt, snd = event.shared_args
                                    mi = event.cursor
                                    mn = len(m_entries)
                                    continue
                            self.now = me[0]
                            proc += 1
                            continue
                        if mheap and mheap[0] < nxt:
                            # A parked macro precedes the non-macro head:
                            # swap with it and keep dispatching inline.
                            head = mheap[0]
                            event.cursor = mi
                            event.time = me[0]
                            event.seq = me[1]
                            if me[0] <= bhor:
                                heapreplace(mheap, (me[0], me[1], event))
                            else:
                                heappop(mheap)
                                heappush(heap, (me[0], me[1], event))
                                sv = -1
                            event = head[2]
                            self.now = head[0]
                            proc += 1
                            m_entries = event.entries
                            pkt, snd = event.shared_args
                            mi = event.cursor
                            mn = len(m_entries)
                            continue
                    event.cursor = mi
                    event.time = me[0]
                    event.seq = me[1]
                    event._queued = True
                    self._pending += 1
                    if me[0] <= bhor:
                        heappush(mheap, (me[0], me[1], event))
                    else:
                        heappush(heap, (me[0], me[1], event))
                    break
                if proc:
                    self._processed += proc
                continue
            event.callback(*event.args)
            if event._transient and not event._queued:
                event.callback = None
                event.args = _NO_ARGS
                if len(pool) < _EVENT_POOL_CAP:
                    pool.append(event)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._running = False

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled queue entries still pending.

        Maintained as a live counter (O(1)): incremented on schedule,
        decremented on cancel and on dispatch.  In bucketed mode a
        macro-event (one delivery batch) counts as one entry.
        """
        return self._pending

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far (deliveries included)."""
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self._pending})"
