"""Discrete-event simulation kernel.

A minimal, deterministic event scheduler: events are (time, sequence) ordered
callbacks kept in a binary heap.  Ties on time break by insertion order so a
run is fully reproducible for a fixed seed.  Cancellation is lazy — cancelled
events stay in the heap and are skipped when popped — which keeps both
``schedule`` and ``cancel`` O(log n) / O(1).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Instances are handles: hold one to :meth:`cancel` the event later.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when its time comes."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  All stochastic
        components (mobility, medium jitter, traffic, attacks) draw from this
        generator so a scenario is reproducible from its seed alone.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        # Heap entries are (time, seq, event) tuples: the (time, seq) pair
        # is unique, so ordering is identical to comparing Event objects,
        # but tuple comparisons run at C speed instead of Event.__lt__.
        heapq.heappush(self._heap, (time, self._seq - 1, event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Runs until the heap is empty, or until simulation time would exceed
        ``until``.  When stopped by ``until``, ``now`` is advanced to exactly
        ``until`` so periodic processes restarted afterwards stay aligned.
        """
        self._running = True
        heap = self._heap
        while self._running and heap:
            event = heap[0][2]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(heap)
            self.now = event.time
            self._processed += 1
            event.callback(*event.args)
        if until is not None and until > self.now:
            self.now = until
        self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._running = False

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={len(self._heap)})"
