"""Shared wireless medium: unit-disc connectivity, serialization, loss.

The model is deliberately simple — the paper's detector consumes traffic
*statistics*, not radio physics — but keeps the properties that shape those
statistics:

* **unit-disc connectivity** — nodes hear each other iff within
  ``tx_range`` metres (ns-2's default 250 m two-ray-ground range);
* **transmission serialization** — each node owns a half-duplex transmitter;
  back-to-back sends queue behind each other and overflow drops occur under
  congestion (this is what makes an update-storm attack visible);
* **per-delivery jitter** — a small random delay de-synchronizes broadcast
  storms, standing in for CSMA backoff;
* **link failure detection** — a failed unicast (receiver out of range or a
  random loss on every retry) invokes the sender's failure callback after a
  retry delay, standing in for missing 802.11 ACKs.  This is what triggers
  route maintenance in AODV and DSR;
* **promiscuous overhearing** — nodes in range of a unicast they are not
  party to can tap it, which DSR's route-cache eavesdropping (the paper's
  *route notice count* feature) relies on.

Connectivity queries normally go through a
:class:`~repro.simulation.spatial.SpatialNeighborIndex` (grid-pruned
candidates + exact unit-disc post-filter); the naive O(N) scan is kept both
as the automatic fallback for partially-attached node sets and as the
reference implementation the trace-equivalence suite compares against
(``use_index=False`` / ``REPRO_SPATIAL_INDEX=0``).  Below
``small_n_cutoff`` nodes the env-default resolution also falls back to the
scan: per-query numpy overhead exceeds a 30-iteration Python loop, which is
what made small scenarios *slower* with the index.  Either path produces
bit-identical traces — see DESIGN.md §Performance for the invariants.

Delivery fan-out likewise has two modes (see DESIGN.md §Event kernel).  The
reference mode schedules one kernel event per receiver per broadcast.  The
batched mode (``event_batch`` / ``REPRO_EVENT_BATCH``) folds a broadcast's
whole fan-out into one kernel :class:`~repro.simulation.engine.MacroEvent`:
all loss and jitter draws happen in a single pass (same RNG order as the
per-receiver loop), one engine seq is reserved per surviving receiver (the
exact seqs the reference would have allocated), arrivals are sorted, and
each entry carries the receiver's pre-bound protocol handler so the kernel
dispatches deliveries inline for as long as the batch's next entry is
globally next in ``(time, seq)`` order — parking the batch back in the
queue whenever any other event interleaves.  Traces are bit-identical by
construction.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.simulation.engine import Simulator
from repro.simulation.mobility import RandomWaypointMobility
from repro.simulation.packet import Packet
from repro.simulation.spatial import SpatialNeighborIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.node import Node

FailureCallback = Callable[[Packet, int], None]

_EMPTY_IDS = np.empty(0, dtype=np.int64)

#: Below this node count the env-default spatial index resolution falls
#: back to the naive scan (grid bookkeeping costs more than it saves).
SMALL_N_CUTOFF = 48


def _default_use_index() -> bool:
    """Spatial index default: on, unless ``REPRO_SPATIAL_INDEX=0``."""
    return os.environ.get("REPRO_SPATIAL_INDEX", "1") not in ("0", "false", "no")


class WirelessMedium:
    """The shared radio channel connecting all nodes.

    Parameters
    ----------
    sim, mobility:
        The event kernel and the mobility model giving node positions.
    tx_range:
        Transmission/interference radius in metres.
    bandwidth_bps:
        Link rate used to serialize transmissions (2 Mb/s, the classic
        802.11 figure used in the ns-2 MANET studies).
    mac_overhead:
        Fixed per-transmission time covering MAC framing and backoff.
    loss_rate:
        Independent per-delivery loss probability.
    max_queue_delay:
        A transmission that would have to wait longer than this in the
        interface queue is dropped (congestion drop).
    retry_delay:
        Time after which a failed unicast is reported to the sender.
    use_index:
        Route neighbor queries through the spatial grid index.  ``None``
        (default) reads ``$REPRO_SPATIAL_INDEX`` and additionally bypasses
        the index below ``small_n_cutoff`` nodes; an explicit ``True`` /
        ``False`` forces the choice.  Traces are bit-identical either way.
    rebuild_quantum:
        Index snapshot lifetime, forwarded to
        :class:`~repro.simulation.spatial.SpatialNeighborIndex`.
    event_batch:
        Use macro-event delivery fan-out.  ``None`` (default) follows the
        simulator's ``event_batch`` resolution but — like the spatial
        index — falls back to per-receiver reference scheduling below
        ``small_n_cutoff`` nodes, where fan-outs are too small to
        amortize the batch machinery; an explicit ``True`` / ``False``
        forces the choice.  Traces are bit-identical either way.
    small_n_cutoff:
        Node-count floor for the env-default spatial index (see above).
    """

    def __init__(
        self,
        sim: Simulator,
        mobility: RandomWaypointMobility,
        tx_range: float = 250.0,
        bandwidth_bps: float = 2e6,
        mac_overhead: float = 0.0008,
        loss_rate: float = 0.0,
        max_queue_delay: float = 0.5,
        retry_delay: float = 0.05,
        use_index: bool | None = None,
        rebuild_quantum: float = 0.25,
        event_batch: bool | None = None,
        small_n_cutoff: int = SMALL_N_CUTOFF,
    ):
        self.sim = sim
        self.mobility = mobility
        self.tx_range = tx_range
        self.bandwidth_bps = bandwidth_bps
        self.mac_overhead = mac_overhead
        self.loss_rate = loss_rate
        self.max_queue_delay = max_queue_delay
        self.retry_delay = retry_delay
        self.nodes: list["Node"] = []
        self._busy_until: list[float] = []
        self._promiscuous: set[int] = set()
        self._promiscuous_ids = _EMPTY_IDS
        self.small_n_cutoff = small_n_cutoff
        if use_index is None:
            want_index = _default_use_index() and mobility.n_nodes >= small_n_cutoff
        else:
            want_index = bool(use_index)
        self.index: SpatialNeighborIndex | None = (
            SpatialNeighborIndex(mobility, tx_range, rebuild_quantum=rebuild_quantum)
            if want_index
            else None
        )
        # Macro fan-out amortizes per-broadcast costs (macro alloc, entry
        # sort, batch parking) over the receiver count; below the same
        # small-n cutoff the typical fan-out is too small to pay for it,
        # so the env-default resolution keeps the per-receiver reference
        # scheduling (the bucketed run loop still applies — it wins at
        # every scale).  An explicit ``event_batch=True`` forces batching.
        if event_batch is None:
            want_batch = sim.event_batch and mobility.n_nodes >= small_n_cutoff
        else:
            want_batch = bool(event_batch)
        self.event_batch: bool = want_batch
        # Per-node dispatch tables: medium delivery jumps straight to the
        # routing protocol's handler once one is installed (see
        # Node.set_routing), skipping the on_receive trampoline.
        self._handlers: list[Callable[[Packet, int], None]] = []
        self._overhear_handlers: list[Callable[[Packet, int], None]] = []
        # Typed dispatch: per-node {ptype: flattened handler} maps published
        # by fast-path protocols (see RoutingProtocol.typed_handlers), and
        # the per-ptype rows derived from them.  A broadcast fan-out knows
        # its packet type once, so each batch entry can bind the receiver's
        # type-specific handler instead of re-dispatching per delivery.
        # With no fast handlers registered a row degenerates to _handlers'
        # contents, so the reference configuration pays one dict lookup per
        # fan-out and nothing else.
        self._typed_handlers: list[dict | None] = []
        self._typed_rows: dict[int, list[Callable[[Packet, int], None]]] = {}
        self._tx_times: dict[int, float] = {}
        # Counters for tests / diagnostics.
        self.congestion_drops = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    def attach(self, node: "Node") -> None:
        """Register a node; ids must be attached in order 0..n-1."""
        if node.node_id != len(self.nodes):
            raise ValueError(
                f"nodes must be attached in id order: got {node.node_id}, "
                f"expected {len(self.nodes)}"
            )
        self.nodes.append(node)
        self._busy_until.append(0.0)
        self._handlers.append(node.on_receive)
        self._overhear_handlers.append(node.on_overhear)
        self._typed_handlers.append(None)
        self._typed_rows.clear()
        if node.promiscuous:
            self._note_promiscuous(node.node_id, True)

    def _note_promiscuous(self, node_id: int, enabled: bool) -> None:
        """Keep the promiscuous-listener registry in sync (see ``Node``)."""
        if enabled:
            self._promiscuous.add(node_id)
        else:
            self._promiscuous.discard(node_id)
        self._promiscuous_ids = np.array(sorted(self._promiscuous), dtype=np.int64)

    def _note_handlers(
        self,
        node_id: int,
        receive: Callable[[Packet, int], None],
        overhear: Callable[[Packet, int], None],
        typed: dict | None = None,
    ) -> None:
        """Point the dispatch tables at the node's installed protocol."""
        self._handlers[node_id] = receive
        self._overhear_handlers[node_id] = overhear
        self._typed_handlers[node_id] = typed
        self._typed_rows.clear()

    def _typed_row(self, ptype: int) -> list[Callable[[Packet, int], None]]:
        """Per-receiver handler row for one packet type (built lazily).

        Row ``i`` is node ``i``'s flattened handler for ``ptype`` when its
        protocol published one, else its generic receive handler.  Rows are
        invalidated whenever a node attaches or swaps handlers.
        """
        row = [
            typed[ptype] if typed is not None and ptype in typed else generic
            for typed, generic in zip(self._typed_handlers, self._handlers)
        ]
        self._typed_rows[ptype] = row
        return row

    def _index_usable(self) -> bool:
        """The fast paths assume the medium sees every mobility node.

        When fewer nodes are attached than the mobility model knows (some
        unit tests build partial stacks), advancing *all* mobility nodes
        would consume RNG draws the naive scan never makes — so fall back.
        """
        return self.index is not None and len(self.nodes) == self.mobility.n_nodes

    def in_range(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` can currently hear each other."""
        if self.index is not None:
            return self.index.in_range(a, b, self.sim.now)
        return self.mobility.distance(a, b, self.sim.now) <= self.tx_range

    def neighbors(self, node_id: int) -> list[int]:
        """Ids of all nodes currently within range of ``node_id``."""
        t = self.sim.now
        if self._index_usable():
            return self.index.neighbors(node_id, t, n_nodes=len(self.nodes))
        return self._neighbors_scan(node_id, t)

    def _neighbors_scan(self, node_id: int, t: float) -> list[int]:
        """Reference O(N) scan (pre-index behaviour, bit-exact)."""
        x, y = self.mobility.position(node_id, t)
        result = []
        for other in range(len(self.nodes)):
            if other == node_id:
                continue
            ox, oy = self.mobility.position(other, t)
            if math.hypot(ox - x, oy - y) <= self.tx_range:
                result.append(other)
        return result

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _tx_time(self, packet: Packet) -> float:
        # Memoized by size: the arithmetic is deterministic, so the cached
        # float is bit-identical to recomputing it.
        tx = self._tx_times.get(packet.size)
        if tx is None:
            tx = packet.size * 8.0 / self.bandwidth_bps + self.mac_overhead
            self._tx_times[packet.size] = tx
        return tx

    def _acquire_transmitter(self, sender: int, tx_time: float) -> float | None:
        """Reserve the sender's transmitter; return the airtime start.

        Returns ``None`` (congestion drop) when the interface queue is too
        long.  ``tx_time`` is computed once per transmission by the caller
        and shared with the arrival schedule.
        """
        now = self.sim.now
        start = max(now, self._busy_until[sender])
        if start - now > self.max_queue_delay:
            self.congestion_drops += 1
            return None
        self._busy_until[sender] = start + tx_time
        return start

    def broadcast(self, sender: int, packet: Packet) -> bool:
        """Transmit to every node currently in range.

        Returns False if the transmission was dropped at the interface
        queue.  Individual receivers may still miss the packet through
        ``loss_rate``.
        """
        tx_time = self._tx_time(packet)
        start = self._acquire_transmitter(sender, tx_time)
        if start is None:
            return False
        arrival = start + tx_time
        if self.event_batch:
            self.sim.schedule_transient_at(
                arrival, self._deliver_broadcast_batched, sender, packet
            )
        else:
            self.sim.schedule_at(arrival, self._deliver_broadcast, sender, packet)
        return True

    def _deliver_broadcast(self, sender: int, packet: Packet) -> None:
        """Reference fan-out: one kernel event per surviving receiver."""
        rng = self.sim.rng
        for receiver in self.neighbors(sender):
            if self.loss_rate and rng.random() < self.loss_rate:
                continue
            jitter = rng.uniform(0.0, 0.002)
            self.sim.schedule(jitter, self._hand_to_node, receiver, packet, sender)

    def _deliver_broadcast_batched(self, sender: int, packet: Packet) -> None:
        """Macro-event fan-out: all draws in one pass, one queued event.

        Draw order matches :meth:`_deliver_broadcast` exactly: per
        receiver, an optional loss draw then a jitter draw
        (``now + 0.002 * random()`` is bit-identical to
        ``now + rng.uniform(0.0, 0.002)``).  One engine seq is reserved
        per surviving receiver — precisely the seqs the reference loop's
        ``schedule`` calls would have consumed — so the batch entries
        carry the same global ``(time, seq)`` keys either way.  Entries
        hold the receiver's pre-bound handler; the kernel dispatches them
        (see ``Simulator._run_bucketed`` / ``_run_macro``).
        """
        receivers = self.neighbors(sender)
        if not receivers:
            return
        sim = self.sim
        rng_random = sim.rng.random
        now = sim.now
        loss = self.loss_rate
        # Receiver pre-classification: the packet type is fixed for the
        # whole fan-out, so resolve each receiver's type-specific flattened
        # handler here — per batch, not per delivery.
        ptype = packet.ptype
        handlers = self._typed_rows.get(ptype)
        if handlers is None:
            handlers = self._typed_row(ptype)
        batch = sim.alloc_macro()
        entries = batch.entries
        seq = sim._seq
        if loss:
            for receiver in receivers:
                if rng_random() < loss:
                    continue
                entries.append((now + 0.002 * rng_random(), seq, handlers[receiver]))
                seq += 1
            sim._seq = seq
        else:
            # Lossless fast form: the comprehension draws one jitter per
            # receiver in the same ascending order as the loop above.
            entries += [
                (now + 0.002 * rng_random(), s, handlers[receiver])
                for s, receiver in enumerate(receivers, seq)
            ]
            sim._seq = seq + len(receivers)
        if not entries:
            sim._macro_pool.append(batch)
            return
        # Counted at fan-out (diagnostic only): every entry is a delivery.
        self.delivered += len(entries)
        entries.sort()
        batch.cursor = 0
        batch.shared_args = (packet, sender)
        head = entries[0]
        sim._requeue(head[0], head[1], batch)

    def unicast(
        self,
        sender: int,
        packet: Packet,
        next_hop: int,
        on_fail: FailureCallback | None = None,
    ) -> bool:
        """Transmit to one specific neighbor with link-failure feedback.

        If the receiver is out of range at delivery time (or the delivery
        is lost), ``on_fail(packet, next_hop)`` fires after ``retry_delay``
        — the MAC-feedback signal AODV and DSR route maintenance rely on.

        Returns False on an interface-queue drop (``on_fail`` is *not*
        invoked in that case; the caller already knows).
        """
        tx_time = self._tx_time(packet)
        start = self._acquire_transmitter(sender, tx_time)
        if start is None:
            return False
        arrival = start + tx_time
        if self.event_batch:
            self.sim.schedule_transient_at(
                arrival, self._deliver_unicast, sender, packet, next_hop, on_fail
            )
        else:
            self.sim.schedule_at(
                arrival, self._deliver_unicast, sender, packet, next_hop, on_fail
            )
        return True

    def _deliver_unicast(
        self,
        sender: int,
        packet: Packet,
        next_hop: int,
        on_fail: FailureCallback | None,
    ) -> None:
        rng = self.sim.rng
        ok = (
            0 <= next_hop < len(self.nodes)
            and self.in_range(sender, next_hop)
            and not (self.loss_rate and rng.random() < self.loss_rate)
        )
        if ok:
            if self.event_batch:
                # Bit-identical jitter: uniform(0, b) == b * random().
                self.sim.schedule_transient(
                    0.001 * rng.random(), self._hand_fast, next_hop, packet, sender
                )
            else:
                self.sim.schedule(
                    rng.uniform(0.0, 0.001), self._hand_to_node, next_hop, packet, sender
                )
            self._deliver_taps(sender, packet, next_hop, rng)
        elif on_fail is not None:
            self.sim.schedule(self.retry_delay, on_fail, packet, next_hop)

    def _deliver_taps(self, sender: int, packet: Packet, next_hop: int, rng) -> None:
        """Promiscuous taps: bystanders in range overhear the exchange.

        Fast path: when no registered node listens promiscuously (AODV
        scenarios), the geometric sweep is skipped entirely.  The naive
        sweep's side effect of lazily advancing every node's mobility —
        which consumes shared-RNG waypoint draws — is replicated by an
        explicit advance, keeping traces bit-identical.  When listeners
        exist, only *their* distances are tested (ascending id order, the
        same order the naive neighbor sweep would visit them in).
        """
        if not self._index_usable():
            # Reference path: full neighbor sweep, pre-index behaviour.
            for bystander in self.neighbors(sender):
                if bystander == next_hop:
                    continue
                node = self.nodes[bystander]
                if node.promiscuous:
                    self.sim.schedule(
                        rng.uniform(0.0, 0.001), node.on_overhear, packet, sender
                    )
            return
        t = self.sim.now
        mobility = self.mobility
        # Draw-order parity with the naive sweep: sender first, then all.
        x, y = mobility.position(sender, t)
        mobility.advance_all(t)
        ids = self._promiscuous_ids
        if ids.size == 0:
            return
        # Prune listeners to the grid block around the sender (a strict
        # superset of the in-range set — DSR marks *every* node
        # promiscuous, so this is what keeps taps sub-O(N)).
        block = self.index.candidates_near(x, y, t)
        if block.size < ids.size:
            ids = np.intersect1d(ids, block, assume_unique=True)
        ids = ids[(ids != sender) & (ids != next_hop)]
        if ids.size == 0:
            return
        # Ascending order, exact unit-disc decisions — identical to the
        # naive sweep's visit order and predicate.
        if self.event_batch:
            overhear = self._overhear_handlers
            schedule_transient = self.sim.schedule_transient
            for bystander in self.index.filter_in_range(ids, x, y, t).tolist():
                schedule_transient(
                    0.001 * rng.random(), overhear[bystander], packet, sender
                )
        else:
            for bystander in self.index.filter_in_range(ids, x, y, t).tolist():
                self.sim.schedule(
                    rng.uniform(0.0, 0.001),
                    self.nodes[bystander].on_overhear,
                    packet,
                    sender,
                )

    def _hand_to_node(self, receiver: int, packet: Packet, sender: int) -> None:
        """Reference hand-off: through the node's on_receive trampoline."""
        self.delivered += 1
        self.nodes[receiver].on_receive(packet, sender)

    def _hand_fast(self, receiver: int, packet: Packet, sender: int) -> None:
        """Batched hand-off: straight to the dispatch-table handler."""
        self.delivered += 1
        self._handlers[receiver](packet, sender)
