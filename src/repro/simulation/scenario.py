"""Scenario assembly and execution — the ns-2 script layer.

:class:`ScenarioConfig` captures the paper's §4.1 parameter selection
(1000 m × 1000 m random way-point field, up to 100 connections at rate
0.25 pkt/s, 10 s pause time, 20 m/s maximum speed, statistics logged every
5 s) with everything overridable so tests and benchmarks can scale down.

:func:`run_scenario` builds the full stack — kernel, mobility, medium,
per-node protocol instances, traffic agents, attack sessions — runs it, and
returns a :class:`SimulationTrace` bundling the per-node trace logs, the
velocity samples and the attack ground truth.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.simulation.engine import Simulator
from repro.simulation.medium import WirelessMedium
from repro.simulation.mobility import RandomWaypointMobility
from repro.simulation.node import Node
from repro.simulation.stats import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.attacks.base import Attack


@dataclass
class ScenarioConfig:
    """Parameters of one simulated MANET scenario (paper §4.1 defaults).

    ``duration`` defaults to a laptop-friendly 1000 s rather than the
    paper's 10 000 s; all detection logic is duration-agnostic.
    """

    protocol: str = "aodv"          #: "aodv" or "dsr"
    transport: str = "udp"          #: "udp" (CBR) or "tcp"
    n_nodes: int = 20
    area: tuple[float, float] = (1000.0, 1000.0)
    duration: float = 1000.0
    max_connections: int = 100
    traffic_rate: float = 0.25      #: packets per second per CBR flow
    packet_size: int = 512
    pause_time: float = 10.0
    max_speed: float = 20.0
    tx_range: float = 250.0
    loss_rate: float = 0.0
    seed: int = 1
    #: Separate seed for the connection pattern (ns-2 keeps scenario and
    #: connection files independent).  None = derive from ``seed``, giving
    #: every run its own traffic; fixing it across runs varies only
    #: mobility, which is what makes normal profiles transfer between a
    #: training trace and evaluation traces.
    traffic_seed: int | None = None
    sampling_period: float = 5.0    #: paper: route statistics every 5 s
    traffic_start_window: float = 180.0
    tcp_app_rate: float = 2.0       #: per-flow application rate for TCP flows

    def __post_init__(self) -> None:
        if self.protocol not in ("aodv", "dsr", "olsr"):
            raise ValueError(f"unknown protocol: {self.protocol!r}")
        if self.transport not in ("udp", "tcp"):
            raise ValueError(f"unknown transport: {self.transport!r}")
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass
class SimulationTrace:
    """Everything one simulation run produced.

    Attributes
    ----------
    recorder:
        Per-node trace logs (packet/route event streams).
    tick_times:
        Sampling instants (every ``sampling_period``; the feature windows
        end at these times).
    speeds:
        ``speeds[k][node]`` — scalar node velocity at ``tick_times[k]``
        (the *absolute velocity* feature is read from here).
    attack_intervals:
        Merged ground-truth intrusion intervals.
    """

    config: ScenarioConfig
    recorder: TraceRecorder
    tick_times: list[float]
    speeds: list[list[float]]
    attack_intervals: list[tuple[float, float]] = field(default_factory=list)
    data_originated: int = 0
    data_delivered: int = 0

    @property
    def n_nodes(self) -> int:
        return len(self.recorder)

    def delivery_ratio(self) -> float:
        """Fraction of originated data packets that reached a destination."""
        if self.data_originated == 0:
            return 0.0
        return self.data_delivered / self.data_originated

    def is_attack_time(self, t: float) -> bool:
        """Ground-truth label for an instant."""
        return any(s <= t < e for s, e in self.attack_intervals)

    def window_labels(self, policy: str = "session") -> list[bool]:
        """Ground-truth label per sampling window.

        Policies:

        * ``"session"`` — a window ``(t - sampling_period, t]`` is
          intrusive when it overlaps an active attack session;
        * ``"post_attack"`` — every window from the first session start
          onward is intrusive.  This reflects the paper's §4.2
          observation that the implemented intrusions are not self-healed
          (the black hole's maximum sequence number is never displaced),
          so "there is no way to figure out exactly when the intrusion
          actions have ended and the observed anomalies are just the
          lasting damages".
        """
        period = self.config.sampling_period
        if policy == "post_attack" and self.attack_intervals:
            first = self.attack_intervals[0][0]
            return [t > first for t in self.tick_times]
        if policy not in ("session", "post_attack"):
            raise ValueError(f"unknown label policy: {policy!r}")
        labels = []
        for t in self.tick_times:
            start, end = t - period, t
            labels.append(
                any(s < end and e > start for s, e in self.attack_intervals)
            )
        return labels


def trace_fingerprint(trace: SimulationTrace) -> str:
    """Digest of everything observable about a trace, bit for bit.

    Serializes every per-node packet/route event stream, the sampling
    ticks, the velocity samples, the attack ground truth and the
    delivery counters, and hashes the pickle.  Two runs agree on this
    digest iff they produced byte-identical traces — the equivalence
    tests *and* the benchmark harness both assert on it, so the
    fast-path kill switches (``REPRO_SPATIAL_INDEX``,
    ``REPRO_EVENT_BATCH``) are checked against the same contract
    everywhere.
    """
    recorder_state = [
        (node.packet_times, node.route_times, node.route_length_samples)
        for node in trace.recorder.nodes
    ]
    payload = pickle.dumps((
        recorder_state,
        trace.tick_times,
        trace.speeds,
        trace.attack_intervals,
        trace.data_originated,
        trace.data_delivered,
    ))
    return hashlib.sha256(payload).hexdigest()


def build_protocol(node: Node, config: ScenarioConfig):
    """Instantiate the configured routing protocol on a node."""
    # Imported here to keep repro.simulation importable without repro.routing.
    from repro.routing.aodv import AodvProtocol
    from repro.routing.dsr import DsrProtocol
    from repro.routing.olsr import OlsrProtocol

    if config.protocol == "aodv":
        return AodvProtocol(node)
    if config.protocol == "olsr":
        return OlsrProtocol(node)
    return DsrProtocol(node)


def run_scenario(
    config: ScenarioConfig,
    attacks: Sequence["Attack"] = (),
    taps: Sequence = (),
) -> SimulationTrace:
    """Run one complete MANET scenario and return its trace.

    ``taps`` are live window observers (e.g.
    :class:`repro.stream.StreamingExtractor`): each exposes a ``monitor``
    node id plus ``bind(stats)``, ``on_tick(time, speed)`` and
    ``finish()``.  A tap is bound to its monitor's
    :class:`~repro.simulation.stats.NodeStats` before the run, receives
    every sampling tick as the clock crosses it (the same instant the
    batch trace records it), and is finalised when the run ends.  Taps
    are pure observers — a run with taps produces a bit-identical
    :class:`SimulationTrace` to the same run without them.
    """
    from repro.attacks.base import merge_intervals
    from repro.traffic.cbr import CbrSink, CbrSource
    from repro.traffic.connections import generate_connections
    from repro.traffic.tcp import TcpSink, TcpSource

    sim = Simulator(seed=config.seed)
    mobility = RandomWaypointMobility(
        n_nodes=config.n_nodes,
        area=config.area,
        max_speed=config.max_speed,
        pause_time=config.pause_time,
        rng=sim.rng,
    )
    medium = WirelessMedium(
        sim, mobility, tx_range=config.tx_range, loss_rate=config.loss_rate
    )
    recorder = TraceRecorder(config.n_nodes)
    nodes = [Node(i, sim, medium, recorder[i]) for i in range(config.n_nodes)]
    for node in nodes:
        build_protocol(node, config)

    import random as _random

    traffic_rng = (
        sim.rng
        if config.traffic_seed is None
        else _random.Random(config.traffic_seed)
    )
    connections = generate_connections(
        config.n_nodes,
        config.max_connections,
        traffic_rng,
        start_window=min(config.traffic_start_window, config.duration / 2),
    )
    for conn in connections:
        if config.transport == "udp":
            CbrSource(
                nodes[conn.src],
                conn.dst,
                conn.flow_id,
                rate=config.traffic_rate,
                packet_size=config.packet_size,
                start=conn.start,
                stop=config.duration,
            )
            CbrSink(nodes[conn.dst], conn.flow_id)
        else:
            TcpSource(
                nodes[conn.src],
                conn.dst,
                conn.flow_id,
                packet_size=config.packet_size,
                start=conn.start,
                stop=config.duration,
                app_rate=config.tcp_app_rate,
            )
            TcpSink(nodes[conn.dst], conn.src, conn.flow_id)

    for attack in attacks:
        attack.install(sim, nodes)

    taps = list(taps)
    for tap in taps:
        if not 0 <= tap.monitor < config.n_nodes:
            raise ValueError(f"tap monitor {tap.monitor} out of range")
        tap.bind(recorder[tap.monitor])

    tick_times: list[float] = []
    speeds: list[list[float]] = []

    def sample_tick() -> None:
        t = sim.now
        tick_times.append(t)
        # Vectorized; value- and RNG-draw-identical to per-node speed().
        row = mobility.speeds_at(t)
        speeds.append(row)
        for tap in taps:
            tap.on_tick(t, row[tap.monitor])
        if t + config.sampling_period <= config.duration:
            sim.schedule(config.sampling_period, sample_tick)

    sim.schedule_at(config.sampling_period, sample_tick)
    sim.run(until=config.duration)
    for tap in taps:
        tap.finish()

    intervals = merge_intervals(
        [iv for attack in attacks for iv in attack.sessions]
    )
    return SimulationTrace(
        config=config,
        recorder=recorder,
        tick_times=tick_times,
        speeds=speeds,
        attack_intervals=intervals,
        data_originated=sum(n.data_originated for n in nodes),
        data_delivered=sum(n.data_delivered for n in nodes),
    )
