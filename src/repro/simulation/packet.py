"""Packet model shared by the routing protocols and the traffic agents.

The packet-type vocabulary deliberately matches the paper's Feature Set II
(Table 5): data, ROUTE REQUEST, ROUTE REPLY, ROUTE ERROR and HELLO messages,
plus the derived "route (all)" aggregate computed at feature-extraction time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

BROADCAST = -1
"""Destination id meaning 'all nodes within transmission range'."""


class PacketType(IntEnum):
    """Concrete on-air packet types (Table 5 'packet type' dimension).

    ``TC`` (topology control) exists for the OLSR extension; the Table 5
    feature grid keeps the paper's six packet types, with TC traffic
    folded into the "route (all)" aggregate.
    """

    DATA = 0
    RREQ = 1
    RREP = 2
    RERR = 3
    HELLO = 4
    TC = 5


class Direction(IntEnum):
    """Flow directions from Table 5.

    The semantics follow the paper: *received* is observed at the packet's
    final destination, *sent* at its originator, *forwarded* at intermediate
    routers and *dropped* wherever the packet is discarded (no route, TTL
    expiry, queue overflow or malicious drop).
    """

    RECEIVED = 0
    SENT = 1
    FORWARDED = 2
    DROPPED = 3


_uid_counter = itertools.count()


@dataclass
class Packet:
    """A network packet.

    Attributes
    ----------
    ptype:
        On-air type.  Data packets keep ``ptype == DATA`` end to end; the
        feature extractor folds in-transit data activity into the
        "route (all)" aggregate exactly as the paper describes (routing
        protocols encapsulate data, so transit events "only involve route
        packets").
    origin / dest:
        End-to-end endpoints.  ``dest`` may be :data:`BROADCAST`.
    size:
        Bytes, used for transmission-time serialization on the medium.
    ttl:
        Remaining hop budget; decremented per forward.
    hops:
        Hops travelled so far.
    flow_id:
        Traffic-agent demultiplexing key for data packets.
    info:
        Protocol-specific header fields (sequence numbers, source routes,
        request ids ...).
    """

    ptype: PacketType
    origin: int
    dest: int
    size: int = 64
    ttl: int = 32
    hops: int = 0
    flow_id: int | None = None
    info: dict[str, Any] = field(default_factory=dict)
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def copy(self) -> "Packet":
        """Shallow copy with a fresh uid and a copied header dict.

        Used when a broadcast is re-originated per receiver or a packet is
        salvaged onto a new route: the payload identity changes on air.
        Built via ``__new__`` + direct attribute assignment: this runs once
        per flood relay, and skipping the dataclass ``__init__`` machinery
        is measurably cheaper.
        """
        clone = object.__new__(Packet)
        clone.ptype = self.ptype
        clone.origin = self.origin
        clone.dest = self.dest
        clone.size = self.size
        clone.ttl = self.ttl
        clone.hops = self.hops
        clone.flow_id = self.flow_id
        clone.info = dict(self.info)
        clone.uid = next(_uid_counter)
        return clone

    @property
    def is_control(self) -> bool:
        """True for routing-control packets (everything except DATA)."""
        return self.ptype != PacketType.DATA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.ptype.name}, {self.origin}->{self.dest}, "
            f"uid={self.uid}, ttl={self.ttl}, info={self.info})"
        )
