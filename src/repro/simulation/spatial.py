"""Spatial neighbor index: a numpy-backed uniform grid over node positions.

The naive :meth:`~repro.simulation.medium.WirelessMedium.neighbors` scan
computes a Python-level position + distance for every node on every
transmission — O(N) per query, which makes large scenarios quadratic-ish
in node count.  This index bins nodes into square cells, prunes each query
to the candidates in the cell block around the querying node (3x3 blocks
of reach-sized cells), and finishes with an exact unit-disc check evaluated
vectorized over the candidates.

Determinism invariants (see DESIGN.md §Performance):

* **Exact-distance post-filter** — the grid only prunes candidates; every
  surviving candidate passes the *same* unit-disc predicate the naive
  scan uses.  The vectorized filter compares squared distances against a
  conservatively narrowed/widened ``tx_range`` band; only candidates
  whose squared distance falls within one part in 10^12 of the boundary
  (where ``sqrt`` rounding could disagree with ``math.hypot``) are
  re-tested with the naive scan's literal ``math.hypot(dx, dy) <=
  tx_range``, so the decision is bit-identical for every input.
* **Id-ordered iteration** — candidates are visited in ascending node-id
  order, so the returned *list* (and therefore every downstream RNG draw
  for per-receiver loss/jitter) is identical to the naive scan's.
* **Draw-order preservation** — the naive scan lazily advances the query
  node first and then every node in ascending id order, consuming
  waypoint draws from the shared simulator RNG.  :meth:`neighbors`
  replicates exactly that advance order before touching the grid.
* **Rebuild quantum** — the grid is rebuilt lazily once its snapshot is
  older than ``rebuild_quantum`` (or the mobility model reports a
  teleport via ``version``).  Staleness is safe because the block reach
  is padded by ``max_speed * rebuild_quantum``: a node within
  ``tx_range`` at query time has drifted at most that far since the
  snapshot, so its snapshot cell is always inside the query block.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.mobility import RandomWaypointMobility

#: Relative half-width of the squared-distance band around ``tx_range``
#: inside which the exact ``math.hypot`` predicate is consulted.  Well
#: above accumulated float64 rounding (~1e-16 relative), well below any
#: physically meaningful distance difference.
_BOUNDARY_REL = 1e-12

_EMPTY = np.empty(0, dtype=np.int64)


class SpatialNeighborIndex:
    """Uniform-grid index over one mobility model's node positions.

    Parameters
    ----------
    mobility:
        Position source; must expose ``positions_at`` / ``positions_of`` /
        ``advance_all`` / ``version`` (both mobility classes do).
    tx_range:
        The unit-disc radius queries test against.
    rebuild_quantum:
        Maximum snapshot age in simulation seconds before a query forces
        a rebuild.  Larger values amortize rebuilds over more queries at
        the cost of a wider (padded) cell; the default suits the paper's
        20 m/s scenarios (pad = 5 m on a 250 m range).
    """

    def __init__(
        self,
        mobility: "RandomWaypointMobility",
        tx_range: float,
        rebuild_quantum: float = 0.25,
    ):
        if tx_range <= 0:
            raise ValueError("tx_range must be positive")
        if rebuild_quantum < 0:
            raise ValueError("rebuild_quantum must be non-negative")
        self.mobility = mobility
        self.tx_range = tx_range
        self.rebuild_quantum = rebuild_quantum
        #: The coverage radius a query block must extend beyond its centre
        #: cell: the unit-disc radius padded by the worst-case drift
        #: between a snapshot and the latest query it may serve.
        reach = tx_range + mobility.max_speed * rebuild_quantum
        #: Queries merge the (2r+1)x(2r+1) cell block around the centre
        #: cell; cells are sized so the block extends one full reach
        #: beyond it.  r=1 (reach-sized cells) measures fastest at the
        #: paper's densities: finer splits trim the candidate superset
        #: (~30% at r=2) but pay more per-query block merges, and the
        #: numpy fixed overhead per filter dominates element count.
        self._block_radius = 1
        self.cell_size = reach / self._block_radius
        #: Squared-distance thresholds bracketing the rounding-ambiguous
        #: band around the range boundary (see module docstring).
        self._definitely_in = (tx_range * (1.0 - _BOUNDARY_REL)) ** 2
        self._maybe_in = (tx_range * (1.0 + _BOUNDARY_REL)) ** 2
        self._built_at: float | None = None
        self._built_version: int | None = None
        self._cells: dict[tuple[int, int], np.ndarray] = {}
        #: Memo of merged-and-sorted candidate blocks, keyed by the
        #: centre cell; valid for the lifetime of one grid snapshot.
        self._blocks: dict[tuple[int, int], np.ndarray] = {}
        self.rebuilds = 0  #: diagnostic counter

    # ------------------------------------------------------------------
    def _ensure_built(self, t: float) -> None:
        if (
            self._built_at is not None
            and t - self._built_at <= self.rebuild_quantum
            and self._built_version == self.mobility.version
        ):
            return
        xs, ys = self.mobility.positions_at(t)
        cell = self.cell_size
        cx = np.floor_divide(xs, cell).astype(np.int64)
        cy = np.floor_divide(ys, cell).astype(np.int64)
        cells: dict[tuple[int, int], list[int]] = {}
        for i, key in enumerate(zip(cx.tolist(), cy.tolist())):
            ids = cells.get(key)
            if ids is None:
                cells[key] = [i]
            else:
                ids.append(i)  # ascending ids for free: i is increasing
        self._cells = {k: np.array(v, dtype=np.int64) for k, v in cells.items()}
        self._blocks = {}
        self._built_at = t
        self._built_version = self.mobility.version
        self.rebuilds += 1

    # ------------------------------------------------------------------
    def filter_in_range(
        self, ids: np.ndarray, x: float, y: float, t: float
    ) -> np.ndarray:
        """Ids from ``ids`` within ``tx_range`` of ``(x, y)`` at ``t``.

        Exact: decisions match ``math.hypot(dx, dy) <= tx_range`` bit for
        bit (boundary-band candidates are re-tested with that literal
        predicate).  ``ids`` order is preserved.
        """
        oxs, oys = self.mobility.positions_of(ids, t)
        dx = oxs - x
        dy = oys - y
        dx *= dx
        dy *= dy
        dx += dy  # dx now holds squared distances
        inside = dx <= self._definitely_in
        band = np.nonzero(inside != (dx <= self._maybe_in))[0]
        for k in band:  # pragma: no cover - ~1e-12 probability per pair
            inside[k] = math.hypot(oxs[k] - x, oys[k] - y) <= self.tx_range
        return ids[inside]

    def neighbors(self, node_id: int, t: float, n_nodes: int | None = None) -> list[int]:
        """Ids within ``tx_range`` of ``node_id`` at ``t``, ascending.

        ``n_nodes`` restricts the result to ids below it (the medium
        passes its attached-node count; the mobility model may know more
        nodes than are attached).
        """
        mob = self.mobility
        # Replicate the naive scan's lazy-advance order exactly: query
        # node first, then everyone in ascending id order.
        x, y = mob.position(node_id, t)
        mob.advance_all(t)
        candidates = self.candidates_near(x, y, t)
        size = candidates.size
        if size == 0:
            return []
        if n_nodes is not None and int(candidates[size - 1]) >= n_nodes:
            # Rare (partial stacks only): the medium normally attaches all
            # mobility nodes, so the sorted tail check short-circuits.
            candidates = candidates[candidates < n_nodes]
            size = candidates.size
            if size == 0:
                return []
        # Fused in-place distance filter (same decisions as
        # filter_in_range, fewer temporaries on this hottest path).
        oxs, oys = mob.positions_of(candidates, t)
        dx = oxs - x
        dy = oys - y
        dx *= dx
        dy *= dy
        dx += dy  # dx now holds squared distances
        inside = dx <= self._definitely_in
        band = np.nonzero(inside != (dx <= self._maybe_in))[0]
        for k in band:  # pragma: no cover - ~1e-12 probability per pair
            inside[k] = math.hypot(oxs[k] - x, oys[k] - y) <= self.tx_range
        # Self-exclusion: candidates is sorted, so locate by bisection
        # (ndarray method call: skips np.searchsorted's dispatch wrapper).
        pos = int(candidates.searchsorted(node_id))
        if pos < size and candidates[pos] == node_id:
            inside[pos] = False
        return candidates[inside].tolist()

    def candidates_near(self, x: float, y: float, t: float) -> np.ndarray:
        """All ids whose snapshot cell touches the block around (x, y).

        A conservative superset of the ids within ``tx_range`` of the
        point (the cell pad covers any drift since the snapshot), sorted
        ascending.  Callers must treat the array as read-only and finish
        with :meth:`filter_in_range`.
        """
        self._ensure_built(t)
        key = (int(x // self.cell_size), int(y // self.cell_size))
        candidates = self._blocks.get(key)
        if candidates is None:
            cx, cy = key
            cells = self._cells
            r = self._block_radius
            blocks = [
                ids
                for kx in range(cx - r, cx + r + 1)
                for ky in range(cy - r, cy + r + 1)
                if (ids := cells.get((kx, ky))) is not None
            ]
            if not blocks:
                candidates = _EMPTY
            elif len(blocks) > 1:
                candidates = np.sort(np.concatenate(blocks))
            else:
                candidates = blocks[0]
            self._blocks[key] = candidates
        return candidates

    def in_range(self, a: int, b: int, t: float) -> bool:
        """Exact unit-disc test — identical to the naive medium's.

        A pair test needs no grid walk; this exists so the medium can
        route every connectivity decision through one object.
        """
        return self.mobility.distance(a, b, t) <= self.tx_range

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpatialNeighborIndex(cell={self.cell_size:.1f}m, "
            f"quantum={self.rebuild_quantum}s, rebuilds={self.rebuilds})"
        )
