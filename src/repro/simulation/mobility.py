"""Random-waypoint mobility model.

The paper's scenarios use ns-2's ``setdest`` random way-point model on a
1000 m x 1000 m field with a 10 s pause time and a 20 m/s maximum speed.
This module reproduces that model with *lazy* position evaluation: each node
keeps its current leg (origin, destination, speed, departure time) and is
advanced on demand, so the mobility model adds no events to the simulator
heap no matter how often positions are queried.

``speed()`` exposes the node's current scalar velocity — the paper's
*absolute velocity* feature (Feature Set I, Table 4) reads it at every
sampling tick.

Motion state is kept as parallel numpy arrays (struct-of-arrays) so whole
batches of positions can be evaluated in single vector expressions:
:meth:`RandomWaypointMobility.positions_at` (all nodes, memoized per
timestamp — the spatial grid rebuilds from it) and
:meth:`RandomWaypointMobility.positions_of` (an id subset — neighbor-query
candidates).

Determinism contract
--------------------
Waypoint draws come lazily from the *shared* simulator RNG, so the byte
content of a trace depends on the exact order in which nodes are advanced.
Two invariants keep the vectorized fast paths bit-identical to the naive
per-node scans:

* :meth:`advance_all` advances stale nodes in **ascending node-id order** —
  the same order the naive ``for other in range(n)`` scans used;
* the vectorized evaluators use the **same IEEE-754 expressions** as the
  scalar :meth:`position` (``frac = (t - depart) / (arrive - depart)``;
  ``x = x0 + frac * (x1 - x0)``), so vectorized coordinates are bit-equal
  to scalar ones.
"""

from __future__ import annotations

import math
import random

import numpy as np


class RandomWaypointMobility:
    """Random-waypoint mobility for a set of nodes.

    Parameters
    ----------
    n_nodes:
        Number of nodes placed uniformly at random in the field.
    area:
        Field dimensions in metres, ``(width, height)``.
    max_speed / min_speed:
        Speeds for each leg are drawn uniformly from ``[min_speed,
        max_speed]``.  ``min_speed`` is kept strictly positive (as in
        ``setdest``) so legs always terminate.
    pause_time:
        Pause at each waypoint before choosing the next one.
    rng:
        Random source; pass the simulator's ``rng`` for reproducibility.
    """

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float] = (1000.0, 1000.0),
        max_speed: float = 20.0,
        min_speed: float = 0.5,
        pause_time: float = 10.0,
        rng: random.Random | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("require 0 < min_speed <= max_speed")
        self.n_nodes = n_nodes
        self.area = area
        self.max_speed = max_speed
        self.min_speed = min_speed
        self.pause_time = pause_time
        self._rng = rng if rng is not None else random.Random(0)
        # Struct-of-arrays motion state: one leg of travel plus the pause
        # after it, per node.  Kept as separate contiguous 1-D arrays —
        # per-candidate-subset gathers from them beat a fused (6, n)
        # fancy-index at the subset sizes neighbor queries produce.
        self._x0 = np.empty(n_nodes)
        self._y0 = np.empty(n_nodes)
        self._x1 = np.empty(n_nodes)
        self._y1 = np.empty(n_nodes)
        self._depart = np.zeros(n_nodes)
        self._arrive = np.zeros(n_nodes)
        self._speed = np.zeros(n_nodes)
        self._pause_until = np.zeros(n_nodes)
        #: Lower bound on min(_pause_until): advance_all returns instantly
        #: while t stays below it.  _advance only ever raises pause times,
        #: so a stale value is conservative (never skips a due advance).
        self._next_wake = 0.0
        for i in range(n_nodes):
            # Draw order (x then y, node by node) matches the historical
            # per-node constructor so seeds reproduce identical layouts.
            x = self._rng.uniform(0, area[0])
            y = self._rng.uniform(0, area[1])
            self._x0[i] = x
            self._y0[i] = y
            self._x1[i] = x
            self._y1[i] = y
        #: Bumped whenever positions change other than by time passing
        #: (teleports in :class:`StaticMobility`); spatial indexes watch it.
        self._version = 0
        #: Single-entry memo of the last all-nodes position evaluation.
        self._pos_cache: tuple[float, int, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Counter bumped on any non-kinematic position change."""
        return self._version

    def _advance(self, node_id: int, t: float) -> None:
        """Advance a node's motion state up to time ``t`` (lazy stepping)."""
        while t >= self._pause_until[node_id]:
            # The node has finished its pause at (x1, y1): start a new leg.
            x0 = float(self._x1[node_id])
            y0 = float(self._y1[node_id])
            self._x0[node_id] = x0
            self._y0[node_id] = y0
            x1 = self._rng.uniform(0, self.area[0])
            y1 = self._rng.uniform(0, self.area[1])
            speed = self._rng.uniform(self.min_speed, self.max_speed)
            self._x1[node_id] = x1
            self._y1[node_id] = y1
            self._speed[node_id] = speed
            depart = float(self._pause_until[node_id])
            self._depart[node_id] = depart
            arrive = depart + math.hypot(x1 - x0, y1 - y0) / speed
            self._arrive[node_id] = arrive
            self._pause_until[node_id] = arrive + self.pause_time

    def advance_all(self, t: float) -> None:
        """Advance every stale node to ``t``, in ascending node-id order.

        The common case (no node due) costs one scalar comparison against
        the cached ``_next_wake`` bound.  The ascending order replicates
        the draw sequence of the naive ``for other in range(n):
        position(other, t)`` scans, so the shared-RNG stream is unchanged
        — see the module docstring.
        """
        if t < self._next_wake:
            return
        stale = self._pause_until <= t
        if stale.any():
            for node_id in np.nonzero(stale)[0]:
                self._advance(int(node_id), t)
        self._next_wake = float(self._pause_until.min())

    def position(self, node_id: int, t: float) -> tuple[float, float]:
        """Position of ``node_id`` at simulation time ``t``."""
        self._advance(node_id, t)
        arrive = self._arrive[node_id]
        depart = self._depart[node_id]
        if t >= arrive or arrive == depart:
            return (float(self._x1[node_id]), float(self._y1[node_id]))
        frac = (t - depart) / (arrive - depart)
        x0 = self._x0[node_id]
        y0 = self._y0[node_id]
        return (
            float(x0 + frac * (self._x1[node_id] - x0)),
            float(y0 + frac * (self._y1[node_id] - y0)),
        )

    def _interpolate(self, idx, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized position evaluation over ``idx`` (slice or id array).

        Callers must have advanced the selected nodes to ``t`` already.
        Expression-identical to :meth:`position`, so results are bit-equal.
        """
        if isinstance(idx, slice):
            x0 = self._x0
            y0 = self._y0
            x1 = self._x1
            y1 = self._y1
            depart = self._depart
            arrive = self._arrive
        else:
            # Six 1-D gathers from the contiguous row views: measurably
            # faster than one (6, n)[:, idx] fancy-index for the ~100-200
            # element candidate subsets a neighbor query produces.  `take`
            # skips the general fancy-indexing machinery.
            x0 = self._x0.take(idx)
            y0 = self._y0.take(idx)
            x1 = self._x1.take(idx)
            y1 = self._y1.take(idx)
            depart = self._depart.take(idx)
            arrive = self._arrive.take(idx)
        # Advanced nodes always satisfy depart <= t, so a zero-length leg
        # (arrive == depart, only when the waypoint draw repeats the
        # current position) already fails `t < arrive` — the reference
        # scalar's `arrive == depart` guard needs no separate term.
        moving = t < arrive
        frac = (t - depart) / np.where(moving, arrive - depart, 1.0)
        xs = np.where(moving, x0 + frac * (x1 - x0), x1)
        ys = np.where(moving, y0 + frac * (y1 - y0), y1)
        return xs, ys

    def positions_at(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized positions of *all* nodes at time ``t``.

        Returns ``(xs, ys)`` float64 arrays, bit-equal to calling
        :meth:`position` per node.  Memoized per timestamp (and mobility
        version).  Callers must treat the arrays as read-only.
        """
        cache = self._pos_cache
        if cache is not None and cache[0] == t and cache[1] == self._version:
            return cache[2], cache[3]
        self.advance_all(t)
        xs, ys = self._interpolate(slice(None), t)
        self._pos_cache = (t, self._version, xs, ys)
        return xs, ys

    def positions_of(self, ids: np.ndarray, t: float) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized positions of an id subset at time ``t``.

        Assumes :meth:`advance_all` (or equivalent) already ran for ``t``
        — this is the inner call of a neighbor query, after the advance.
        """
        return self._interpolate(ids, t)

    def speed(self, node_id: int, t: float) -> float:
        """Current scalar speed: the leg speed while moving, 0 while paused."""
        self._advance(node_id, t)
        if t >= self._arrive[node_id]:
            return 0.0
        return float(self._speed[node_id])

    def speeds_at(self, t: float) -> list[float]:
        """Vectorized scalar speeds of all nodes at time ``t``.

        Equivalent to ``[speed(i, t) for i in range(n_nodes)]`` — both in
        values and in shared-RNG draw order.
        """
        self.advance_all(t)
        return np.where(t < self._arrive, self._speed, 0.0).tolist()

    def distance(self, a: int, b: int, t: float) -> float:
        """Euclidean distance between two nodes at time ``t``."""
        xa, ya = self.position(a, t)
        xb, yb = self.position(b, t)
        return math.hypot(xb - xa, yb - ya)


class StaticMobility(RandomWaypointMobility):
    """Fixed node placement — useful for deterministic unit tests.

    Nodes never move; ``speed()`` is always zero.
    """

    def __init__(self, positions: list[tuple[float, float]]):
        if not positions:
            raise ValueError("positions must be non-empty")
        self.n_nodes = len(positions)
        width = max(x for x, _ in positions) + 1.0
        height = max(y for _, y in positions) + 1.0
        self.area = (width, height)
        self.max_speed = 0.0
        self.min_speed = 0.0
        self.pause_time = math.inf
        self._positions = list(positions)
        self._version = 0
        self._pos_cache = None

    def advance_all(self, t: float) -> None:
        pass

    def position(self, node_id: int, t: float) -> tuple[float, float]:
        return self._positions[node_id]

    def positions_at(self, t: float) -> tuple[np.ndarray, np.ndarray]:
        cache = self._pos_cache
        if cache is not None and cache[1] == self._version:
            return cache[2], cache[3]
        xs = np.array([x for x, _ in self._positions])
        ys = np.array([y for _, y in self._positions])
        self._pos_cache = (0.0, self._version, xs, ys)
        return xs, ys

    def positions_of(self, ids: np.ndarray, t: float) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = self.positions_at(t)
        return xs[ids], ys[ids]

    def speed(self, node_id: int, t: float) -> float:
        return 0.0

    def speeds_at(self, t: float) -> list[float]:
        return [0.0] * self.n_nodes

    def move(self, node_id: int, position: tuple[float, float]) -> None:
        """Teleport a node (tests use this to break and form links)."""
        self._positions[node_id] = position
        self._version += 1
