"""Random-waypoint mobility model.

The paper's scenarios use ns-2's ``setdest`` random way-point model on a
1000 m x 1000 m field with a 10 s pause time and a 20 m/s maximum speed.
This module reproduces that model with *lazy* position evaluation: each node
keeps its current leg (origin, destination, speed, departure time) and is
advanced on demand, so the mobility model adds no events to the simulator
heap no matter how often positions are queried.

``speed()`` exposes the node's current scalar velocity — the paper's
*absolute velocity* feature (Feature Set I, Table 4) reads it at every
sampling tick.
"""

from __future__ import annotations

import math
import random


class _NodeMotion:
    """Per-node motion state: one leg of travel plus the pause after it."""

    __slots__ = ("x0", "y0", "x1", "y1", "speed", "depart", "arrive", "pause_until")

    def __init__(self, x: float, y: float, now: float):
        self.x0 = x
        self.y0 = y
        self.x1 = x
        self.y1 = y
        self.speed = 0.0
        self.depart = now
        self.arrive = now
        self.pause_until = now


class RandomWaypointMobility:
    """Random-waypoint mobility for a set of nodes.

    Parameters
    ----------
    n_nodes:
        Number of nodes placed uniformly at random in the field.
    area:
        Field dimensions in metres, ``(width, height)``.
    max_speed / min_speed:
        Speeds for each leg are drawn uniformly from ``[min_speed,
        max_speed]``.  ``min_speed`` is kept strictly positive (as in
        ``setdest``) so legs always terminate.
    pause_time:
        Pause at each waypoint before choosing the next one.
    rng:
        Random source; pass the simulator's ``rng`` for reproducibility.
    """

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float] = (1000.0, 1000.0),
        max_speed: float = 20.0,
        min_speed: float = 0.5,
        pause_time: float = 10.0,
        rng: random.Random | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("require 0 < min_speed <= max_speed")
        self.n_nodes = n_nodes
        self.area = area
        self.max_speed = max_speed
        self.min_speed = min_speed
        self.pause_time = pause_time
        self._rng = rng if rng is not None else random.Random(0)
        self._motion = [
            _NodeMotion(self._rng.uniform(0, area[0]), self._rng.uniform(0, area[1]), 0.0)
            for _ in range(n_nodes)
        ]

    # ------------------------------------------------------------------
    def _advance(self, node_id: int, t: float) -> _NodeMotion:
        """Advance a node's motion state up to time ``t`` (lazy stepping)."""
        m = self._motion[node_id]
        while t >= m.pause_until:
            # The node has finished its pause at (x1, y1): start a new leg.
            m.x0, m.y0 = m.x1, m.y1
            m.x1 = self._rng.uniform(0, self.area[0])
            m.y1 = self._rng.uniform(0, self.area[1])
            m.speed = self._rng.uniform(self.min_speed, self.max_speed)
            m.depart = m.pause_until
            dist = math.hypot(m.x1 - m.x0, m.y1 - m.y0)
            m.arrive = m.depart + dist / m.speed
            m.pause_until = m.arrive + self.pause_time
        return m

    def position(self, node_id: int, t: float) -> tuple[float, float]:
        """Position of ``node_id`` at simulation time ``t``."""
        m = self._advance(node_id, t)
        if t >= m.arrive:
            return (m.x1, m.y1)
        if m.arrive == m.depart:
            return (m.x1, m.y1)
        frac = (t - m.depart) / (m.arrive - m.depart)
        return (m.x0 + frac * (m.x1 - m.x0), m.y0 + frac * (m.y1 - m.y0))

    def speed(self, node_id: int, t: float) -> float:
        """Current scalar speed: the leg speed while moving, 0 while paused."""
        m = self._advance(node_id, t)
        if t >= m.arrive:
            return 0.0
        return m.speed

    def distance(self, a: int, b: int, t: float) -> float:
        """Euclidean distance between two nodes at time ``t``."""
        xa, ya = self.position(a, t)
        xb, yb = self.position(b, t)
        return math.hypot(xb - xa, yb - ya)


class StaticMobility(RandomWaypointMobility):
    """Fixed node placement — useful for deterministic unit tests.

    Nodes never move; ``speed()`` is always zero.
    """

    def __init__(self, positions: list[tuple[float, float]]):
        if not positions:
            raise ValueError("positions must be non-empty")
        self.n_nodes = len(positions)
        width = max(x for x, _ in positions) + 1.0
        height = max(y for _, y in positions) + 1.0
        self.area = (width, height)
        self.max_speed = 0.0
        self.min_speed = 0.0
        self.pause_time = math.inf
        self._positions = list(positions)

    def position(self, node_id: int, t: float) -> tuple[float, float]:
        return self._positions[node_id]

    def speed(self, node_id: int, t: float) -> float:
        return 0.0

    def move(self, node_id: int, position: tuple[float, float]) -> None:
        """Teleport a node (tests use this to break and form links)."""
        self._positions[node_id] = position
